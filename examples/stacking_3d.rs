//! 3D-integration case study (§VI-E): is stacking separately fabricated
//! SRAM dice on the accelerator worth its embodied carbon?
//!
//! Simulates the SR(512x512) super-resolution kernel on the 2D baseline and
//! six 3D-stacked configurations, and evaluates tCDP at embodied-dominant
//! and operational-dominant operational times.
//!
//! Run with: `cargo run --example stacking_3d`

use cordoba::prelude::*;
use cordoba_accel::sim::simulate;
use cordoba_accel::stacking::study_configs;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::CarbonError;
use cordoba_workloads::kernel::KernelId;

fn main() -> Result<(), CarbonError> {
    let model = EmbodiedModel::default();
    let kernel = KernelId::Sr512.descriptor();

    println!("SR(512x512) on the Fig. 11 configurations:\n");
    let mut points = Vec::new();
    for cfg in study_configs() {
        let sim = simulate(&cfg, &kernel);
        let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
        let embodied = cfg.embodied_carbon(&model)?;
        println!(
            "  {:14} latency {:7.2} ms | energy {:6.2} mJ | DRAM {:7.1} MiB | embodied {:6.1} g{}",
            cfg.name(),
            sim.latency.value() * 1e3,
            energy.value() * 1e3,
            sim.dram_traffic.to_mebibytes(),
            embodied.value(),
            if sim.is_memory_bound() {
                "  [memory-bound]"
            } else {
                ""
            }
        );
        points.push(DesignPoint::new(
            cfg.name(),
            sim.latency,
            energy,
            embodied,
            cfg.total_area(),
        )?);
    }

    // Embodied-dominant vs operational-dominant cases (80% / 8% embodied).
    for (label, share) in [("embodied-dominant", 0.80), ("operational-dominant", 0.08)] {
        let ctx = context_for_embodied_share(
            &points,
            cordoba_carbon::intensity::grids::US_AVERAGE,
            share,
        )?;
        let best = argmin(&points, MetricKind::Tcdp, &ctx).expect("non-empty");
        let baseline = &points[0];
        println!(
            "\n{label} case ({:.1e} inferences): winner {} with {:.2}x tCDP improvement over {}",
            ctx.tasks,
            best.name,
            baseline.tcdp(&ctx).value() / best.tcdp(&ctx).value(),
            baseline.name
        );
    }
    println!(
        "\nPaper: 3D_2K_4M wins the embodied case (1.08x), 3D_2K_8M the operational case (6.9x)."
    );
    Ok(())
}
