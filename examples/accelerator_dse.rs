//! Design-space exploration over the paper's 121 accelerator
//! configurations (§VI-B): find the tCDP-optimal accelerator for an XR
//! workload at every operational time, and see how much of the space can
//! be eliminated outright.
//!
//! Run with: `cargo run --release --example accelerator_dse`

use cordoba::prelude::*;
use cordoba_accel::space::{config_by_name, design_space};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;

fn main() -> Result<(), CoreError> {
    let task = Task::xr_10_kernels();
    println!("Workload: {task}");

    // Characterize all 121 MACs x SRAM configurations for this task.
    let points = evaluate_space(&design_space(), &task, &EmbodiedModel::default())?;
    println!("Characterized {} design points.\n", points.len());

    // Sweep operational time from 1e4 to 1e11 inferences.
    let sweep = OpTimeSweep::new(points, log_sweep(4, 11, 2), grids::US_AVERAGE)?;

    println!("operational time -> tCDP-optimal accelerator");
    let mut last = String::new();
    for n in 0..sweep.task_counts.len() {
        let best = &sweep.points[sweep.optimal_at(n)];
        if best.name != last {
            let cfg = config_by_name(&best.name).expect("space names decode");
            println!(
                "  from {:>8.1e} inferences: {:5} ({:4} MAC units, {:4.0} MiB SRAM, {:.2} cm^2)",
                sweep.task_counts[n],
                best.name,
                cfg.mac_units(),
                cfg.sram().to_mebibytes(),
                best.area.value()
            );
            last = best.name.clone();
        }
    }

    let survivors = sweep.ever_optimal();
    println!(
        "\n{} of 121 designs are ever optimal; {:.1}% of the space is eliminated",
        survivors.len(),
        sweep.elimination_fraction() * 100.0
    );
    println!("(the paper eliminates 96.7-98.3% per task)");

    // Robust choice under usage uncertainty (Fig. 9).
    let robust = sweep.robust_choice();
    println!(
        "\nRobust choice (best average normalized tCDP): {} (score {:.2}; 1.0 = optimal everywhere)",
        sweep.points[robust].name,
        sweep.robustness_score(robust)
    );
    Ok(())
}
