//! Hardware-provisioning case study (§VI-D): how many CPU cores should a
//! VR headset SoC ship with, per workload?
//!
//! Replays synthetic Quest-2-style thread-activity traces on 4- to 8-core
//! SoC variants and reports tCDP. Media workloads (low TLP) want fewer
//! cores; browser workloads (high TLP) keep them.
//!
//! Run with: `cargo run --example vr_provisioning`

use cordoba_carbon::CarbonError;
use cordoba_soc::prelude::*;

fn main() -> Result<(), CarbonError> {
    let deployment = Deployment::default();
    let mut apps = VrApp::studied_tasks();
    apps.push(VrApp::all_tasks());

    for app in &apps {
        let rows = sweep(app, &deployment)?;
        println!(
            "{:10} (TLP {:.2}, {:.1} h/day):",
            app.name,
            app.tlp(),
            app.daily_hours
        );
        for r in &rows {
            let marker = if r.cores == optimal_cores(&rows) {
                " <== optimal"
            } else {
                ""
            };
            println!(
                "  {} cores: D {:6.2} s | E {:5.1} J | C_emb {:7.1} g | C_op {:8.1} g | tCDP {:9.3e}{}",
                r.cores,
                r.delay.value(),
                r.energy.value(),
                r.embodied.value(),
                r.operational.value(),
                r.tcdp.value(),
                marker
            );
        }
        println!(
            "  -> optimal provisioning: {} cores, {:.2}x better tCDP than 8 cores\n",
            optimal_cores(&rows),
            improvement_over_8core(&rows)
        );
    }
    println!("Paper: M-1 improves 1.25x at 4 cores; All Tasks 1.08x at 5 cores.");
    Ok(())
}
