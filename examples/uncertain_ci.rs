//! Optimizing carbon efficiency when `CI_use(t)` is unknown (§IV-B).
//!
//! Even without knowing the future grid mix, designs that are off the
//! Pareto curve of `E·D` versus `C_embodied·D` can never be tCDP-optimal
//! and are safely eliminated; the Lagrange-multiplier β-sweep then shows
//! which survivor wins once a scenario is committed.
//!
//! Run with: `cargo run --example uncertain_ci`

use cordoba::prelude::*;
use cordoba_carbon::intensity::{ConstantCi, TrendCi};
use cordoba_carbon::prelude::*;

fn main() -> Result<(), CarbonError> {
    // Five candidate systems with different energy/embodied trade-offs.
    let mk = |name: &str, d: f64, e: f64, emb: f64| {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        )
    };
    let candidates = vec![
        mk("lean", 1.6, 1.0, 90.0)?,
        mk("balanced", 0.9, 1.8, 160.0)?,
        mk("beefy", 0.5, 4.0, 420.0)?,
        mk("wasteful", 1.6, 3.0, 300.0)?, // dominated on both axes
        mk("extreme", 0.45, 12.0, 2_000.0)?,
    ];

    // 1. Eliminate without knowing CI_use(t).
    let sweep = BetaSweep::run(&candidates);
    println!("E*D vs C_emb*D objective space:");
    for p in &sweep.points {
        println!("  {:9} C_emb*D = {:8.1}   E*D = {:6.2}", p.name, p.x, p.y);
    }
    println!(
        "\nEliminated for ANY CI_use(t): {:?}",
        sweep.eliminated_names()
    );
    println!("Survivors (X*): {:?}", sweep.surviving_names());

    // 2. Commit to concrete scenarios and watch the winner move along the
    //    Pareto curve as beta = N * CI / 3.6e6 grows.
    println!("\nconcrete scenarios:");
    for (label, tasks, ci) in [
        ("short life, dirty grid", 1e3, grids::COAL),
        ("long life, dirty grid", 1e7, grids::COAL),
        ("long life, clean grid", 1e7, grids::SOLAR),
    ] {
        let ctx = OperationalContext::new(tasks, ci)?;
        let beta = beta_for_context(&ctx);
        let winner = &candidates[sweep.optimal_for_beta(beta).expect("non-empty")];
        println!(
            "  {label:24} beta = {beta:9.3e} -> tCDP-optimal: {}",
            winner.name
        );
    }

    // 3. Time-varying grids: worst-case regret across scenarios picks the
    //    robust survivor.
    let flat = ConstantCi::new(grids::US_AVERAGE);
    let fast_decarb = TrendCi::new(grids::US_AVERAGE, 0.15)?;
    let coal = ConstantCi::new(grids::COAL);
    let scenarios: Vec<&dyn CiIntegral> = vec![&flat, &fast_decarb, &coal];
    let regret = scenario_regret(&candidates, &scenarios, 1e6, Seconds::from_years(5.0))?;
    println!("\nworst-case tCDP regret across grid scenarios:");
    for (p, r) in candidates.iter().zip(&regret) {
        println!("  {:9} {:.3}x", p.name, r);
    }
    let robust = candidates
        .iter()
        .zip(&regret)
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!("robust choice: {}", robust.0.name);
    Ok(())
}
