//! Quickstart: compute the metrics CORDOBA optimizes for a single design,
//! then see why tCDP picks a different winner than EDP.
//!
//! Run with: `cargo run --example quickstart`

use cordoba::prelude::*;
use cordoba_carbon::prelude::*;

fn main() -> Result<(), CarbonError> {
    // 1. Describe two candidate systems by delay, energy, and embodied
    //    carbon. "frugal" sips energy but was cheap to manufacture slowly;
    //    "fast" burns more energy on bigger, carbon-heavier silicon.
    let frugal = DesignPoint::new(
        "frugal",
        Seconds::new(2.0),           // task delay D
        Joules::new(1.2),            // task energy E
        GramsCo2e::new(120.0),       // embodied carbon
        SquareCentimeters::new(0.5), // die area
    )?;
    let fast = DesignPoint::new(
        "fast",
        Seconds::new(0.4),
        Joules::new(3.0),
        GramsCo2e::new(900.0),
        SquareCentimeters::new(2.0),
    )?;
    let candidates = vec![frugal, fast];

    // 2. Metrics need an operational context: how many times will the task
    //    run over the hardware's life, and on which grid?
    for tasks in [1e3, 1e6, 1e9] {
        let ctx = OperationalContext::new(tasks, grids::US_AVERAGE)?;
        println!("-- lifetime task count: {tasks:.0e} --");
        for p in &candidates {
            println!(
                "  {:8}  EDP {:>9.3e} J*s | tC {:>10.1} gCO2e ({:>4.1}% embodied) | tCDP {:>10.3e} gCO2e*s",
                p.name,
                p.edp().value(),
                p.total_carbon(&ctx).value(),
                p.embodied_share(&ctx) * 100.0,
                p.tcdp(&ctx).value(),
            );
        }
        let edp_winner = argmin(&candidates, MetricKind::Edp, &ctx).expect("non-empty");
        let tcdp_winner = argmin(&candidates, MetricKind::Tcdp, &ctx).expect("non-empty");
        println!(
            "  EDP picks {:8} | tCDP picks {:8}{}",
            edp_winner.name,
            tcdp_winner.name,
            if edp_winner.name == tcdp_winner.name {
                ""
            } else {
                "   <-- carbon efficiency changes the winner"
            }
        );
    }

    // 3. The same machinery solves constrained problems (eq. IV.1).
    let problem = OptimizationProblem::tcdp(candidates)
        .with_constraints(Constraints::none().with_max_delay(Seconds::new(1.0)));
    let ctx = OperationalContext::new(1e3, grids::US_AVERAGE)?;
    if let Some(solution) = problem.solve(&ctx) {
        println!(
            "\nWith a 1 s QoS ceiling, the best feasible design is `{}` (tCDP {:.3e}).",
            solution.best.name, solution.objective_value
        );
    }
    Ok(())
}
