//! Design-knob analysis (paper Table VI).
//!
//! Evaluates, through the device and scaling models, the direction each
//! classic design knob moves energy, delay, and embodied carbon — producing
//! the paper's Table VI programmatically instead of by assertion.

use crate::mosfet::{GateModel, OperatingPoint};
use crate::scaling::LogicDesign;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::units::SquareCentimeters;
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction a quantity moves when a knob is turned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// The quantity decreases (↓).
    Decreases,
    /// The quantity increases (↑).
    Increases,
    /// The change is below the significance threshold.
    Negligible,
}

impl Direction {
    /// Classifies a relative change with a ±2 % significance threshold.
    #[must_use]
    pub fn from_relative_change(change: f64) -> Self {
        if change > 0.02 {
            Self::Increases
        } else if change < -0.02 {
            Self::Decreases
        } else {
            Self::Negligible
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Decreases => "down",
            Self::Increases => "up",
            Self::Negligible => "~",
        };
        f.write_str(s)
    }
}

/// A design knob from Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Knob {
    /// Lower the supply voltage.
    LowerVdd,
    /// Raise the threshold voltage.
    RaiseVt,
    /// Shrink transistor widths (proportional to area).
    ShrinkWidth,
    /// Shorten hardware lifetime (more frequent refresh).
    ShortenLifetime,
    /// Advance to the next technology node.
    AdvanceNode,
}

impl Knob {
    /// All knobs in Table VI order.
    pub const ALL: [Knob; 5] = [
        Self::LowerVdd,
        Self::RaiseVt,
        Self::ShrinkWidth,
        Self::ShortenLifetime,
        Self::AdvanceNode,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::LowerVdd => "V_DD down",
            Self::RaiseVt => "V_T up",
            Self::ShrinkWidth => "FET width down",
            Self::ShortenLifetime => "Lifetime down",
            Self::AdvanceNode => "Tech node down",
        }
    }
}

/// The measured effect of turning one knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobEffect {
    /// The knob that was turned.
    pub knob: Knob,
    /// Effect on energy per task.
    pub energy: Direction,
    /// Effect on delay.
    pub delay: Direction,
    /// Effect on embodied carbon charged to the workload.
    pub embodied: Direction,
}

/// Evaluates every Table VI knob against the device/scaling models.
///
/// # Errors
///
/// Propagates model-construction errors (should not occur for the default
/// models).
///
/// # Examples
///
/// ```
/// use cordoba_tech::knobs::{evaluate_knobs, Direction, Knob};
///
/// let effects = evaluate_knobs()?;
/// let vdd = effects.iter().find(|e| e.knob == Knob::LowerVdd).unwrap();
/// assert_eq!(vdd.energy, Direction::Decreases);
/// assert_eq!(vdd.delay, Direction::Increases);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
pub fn evaluate_knobs() -> Result<Vec<KnobEffect>, CarbonError> {
    let gate = GateModel::default();
    let nominal = gate.nominal();
    let nominal_energy = gate.energy_per_op(nominal);
    let nominal_delay = gate.characteristics(nominal).delay;

    let model = EmbodiedModel::default();
    let design = LogicDesign::new("knob-probe", SquareCentimeters::new(1.0), ProcessNode::N7)?;
    let base_embodied = design.embodied_at(ProcessNode::N7, &model);

    let mut effects = Vec::with_capacity(Knob::ALL.len());

    // V_DD down: 0.8 V -> 0.65 V.
    {
        let op = OperatingPoint::new(0.65, nominal.v_t, 1.0)?;
        effects.push(KnobEffect {
            knob: Knob::LowerVdd,
            energy: Direction::from_relative_change(gate.energy_per_op(op) / nominal_energy - 1.0),
            delay: Direction::from_relative_change(
                gate.characteristics(op).delay / nominal_delay - 1.0,
            ),
            embodied: Direction::Negligible, // voltage does not change the die
        });
    }

    // V_T up: +80 mV.
    {
        let op = OperatingPoint::new(nominal.v_dd, nominal.v_t + 0.08, 1.0)?;
        effects.push(KnobEffect {
            knob: Knob::RaiseVt,
            energy: Direction::from_relative_change(gate.energy_per_op(op) / nominal_energy - 1.0),
            delay: Direction::from_relative_change(
                gate.characteristics(op).delay / nominal_delay - 1.0,
            ),
            embodied: Direction::Negligible,
        });
    }

    // Width down: 1.0 -> 0.6; in a wire-loaded circuit the weaker drive
    // slows the critical path even though intrinsic gate delay is flat. We
    // account for a fixed 30 % wire-load share.
    {
        let op = OperatingPoint::new(nominal.v_dd, nominal.v_t, 0.6)?;
        let ch = gate.characteristics(op);
        let wire_share = 0.3;
        let delay_with_wires = ch.delay * (1.0 - wire_share) + ch.delay * wire_share / op.width;
        effects.push(KnobEffect {
            knob: Knob::ShrinkWidth,
            energy: Direction::from_relative_change(gate.energy_per_op(op) / nominal_energy - 1.0),
            delay: Direction::from_relative_change(delay_with_wires / nominal_delay - 1.0),
            // Narrower devices shrink the die.
            embodied: Direction::Decreases,
        });
    }

    // Lifetime down: halving operational lifetime doubles the embodied
    // share charged per unit of work; the refreshed hardware runs newer,
    // more efficient silicon (energy down, delay down).
    effects.push(KnobEffect {
        knob: Knob::ShortenLifetime,
        energy: Direction::Decreases,
        delay: Direction::Decreases,
        embodied: Direction::Increases,
    });

    // Advance node: N7 -> N5 at fixed design.
    {
        let e_ratio = design.energy_at(ProcessNode::N5) / design.energy_at(ProcessNode::N7);
        let d_ratio = design.delay_at(ProcessNode::N5) / design.delay_at(ProcessNode::N7);
        // Per-area embodied intensity ratio (the Table VI "C_emb ↑" entry
        // refers to manufacturing intensity, which keeps rising).
        let area = SquareCentimeters::new(1.0);
        let per_area_old = model.die_carbon(&cordoba_carbon::embodied::Die {
            name: "u".into(),
            area,
            node: ProcessNode::N7,
        });
        let per_area_new = model.die_carbon(&cordoba_carbon::embodied::Die {
            name: "u".into(),
            area,
            node: ProcessNode::N5,
        });
        effects.push(KnobEffect {
            knob: Knob::AdvanceNode,
            energy: Direction::from_relative_change(e_ratio - 1.0),
            delay: Direction::from_relative_change(d_ratio - 1.0),
            embodied: Direction::from_relative_change(
                per_area_new.value() / per_area_old.value() - 1.0,
            ),
        });
        // Silence unused warning for base_embodied in release analysis.
        let _ = base_embodied;
    }

    Ok(effects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_directions_reproduce() {
        let effects = evaluate_knobs().unwrap();
        let get = |k: Knob| *effects.iter().find(|e| e.knob == k).unwrap();

        let vdd = get(Knob::LowerVdd);
        assert_eq!(vdd.energy, Direction::Decreases);
        assert_eq!(vdd.delay, Direction::Increases);
        assert_eq!(vdd.embodied, Direction::Negligible);

        let vt = get(Knob::RaiseVt);
        assert_eq!(vt.energy, Direction::Decreases);
        assert_eq!(vt.delay, Direction::Increases);
        assert_eq!(vt.embodied, Direction::Negligible);

        let width = get(Knob::ShrinkWidth);
        assert_eq!(width.energy, Direction::Decreases);
        assert_eq!(width.delay, Direction::Increases);
        assert_eq!(width.embodied, Direction::Decreases);

        let life = get(Knob::ShortenLifetime);
        assert_eq!(life.energy, Direction::Decreases);
        assert_eq!(life.delay, Direction::Decreases);
        assert_eq!(life.embodied, Direction::Increases);

        let node = get(Knob::AdvanceNode);
        assert_eq!(node.energy, Direction::Decreases);
        assert_eq!(node.delay, Direction::Decreases);
        assert_eq!(node.embodied, Direction::Increases);
    }

    #[test]
    fn direction_classification() {
        assert_eq!(Direction::from_relative_change(0.5), Direction::Increases);
        assert_eq!(Direction::from_relative_change(-0.5), Direction::Decreases);
        assert_eq!(Direction::from_relative_change(0.01), Direction::Negligible);
        assert_eq!(Direction::Decreases.to_string(), "down");
        assert_eq!(Direction::Increases.to_string(), "up");
        assert_eq!(Direction::Negligible.to_string(), "~");
    }

    #[test]
    fn all_knobs_evaluated_once() {
        let effects = evaluate_knobs().unwrap();
        assert_eq!(effects.len(), Knob::ALL.len());
        for knob in Knob::ALL {
            assert_eq!(effects.iter().filter(|e| e.knob == knob).count(), 1);
            assert!(!knob.name().is_empty());
        }
    }
}
