//! Alpha-power-law MOSFET model (Sakurai–Newton \[42\]).
//!
//! The paper's §III-A argues that `ED²` was only a `V_DD`-independent metric
//! under the antiquated ideal square-law model (`α = 2`, `V_T = 0`, energy
//! `∝ C·V_DD²`, no leakage) and that those assumptions fail for modern
//! short-channel devices. This module implements the alpha-power model so
//! that claim can be demonstrated quantitatively (see the `ed2p` tests and
//! the Table VI bench).
//!
//! All outputs are *relative* quantities (normalized to a nominal operating
//! point); the absolute calibration lives in the fab profiles of
//! `cordoba-carbon` and in `cordoba-accel`.

use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};

/// Device-level parameters of a logic technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Velocity-saturation index `α` (2.0 for the ideal square law,
    /// ~1.3 for modern short-channel devices).
    pub alpha: f64,
    /// Threshold voltage, in volts.
    pub v_t: f64,
    /// Subthreshold swing factor `n·v_T` in volts (≈ 0.036 V at 300 K for
    /// n = 1.4); controls how leakage grows as `V_T` drops.
    pub subthreshold_swing: f64,
    /// Fraction of nominal total power that is leakage at the nominal
    /// operating point.
    pub leakage_fraction_nominal: f64,
}

impl DeviceParams {
    /// A modern short-channel FinFET-like device.
    #[must_use]
    pub fn modern() -> Self {
        Self {
            alpha: 1.3,
            v_t: 0.30,
            subthreshold_swing: 0.036,
            leakage_fraction_nominal: 0.15,
        }
    }

    /// The ideal long-channel square-law device of Dennard-era analyses
    /// (`α = 2`, `V_T = 0`, no leakage). Under this device, `ED²` is
    /// `V_DD`-independent.
    #[must_use]
    pub fn ideal_square_law() -> Self {
        Self {
            alpha: 2.0,
            v_t: 0.0,
            subthreshold_swing: 0.036,
            leakage_fraction_nominal: 0.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is outside `[1, 2]`, `v_t` is negative,
    /// or fractions are outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), CarbonError> {
        CarbonError::require_in_range("alpha", self.alpha, 1.0, 2.0)?;
        CarbonError::require_in_range("v_t", self.v_t, 0.0, 2.0)?;
        CarbonError::require_positive("subthreshold swing", self.subthreshold_swing)?;
        CarbonError::require_in_range(
            "leakage fraction",
            self.leakage_fraction_nominal,
            0.0,
            1.0 - 1e-9,
        )?;
        Ok(())
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::modern()
    }
}

/// An operating point: supply and threshold voltage, plus a relative
/// transistor width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage, in volts.
    pub v_dd: f64,
    /// Threshold voltage, in volts (overrides the device nominal when the
    /// design uses a different `V_T` flavor).
    pub v_t: f64,
    /// Transistor width relative to nominal (1.0 = nominal).
    pub width: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Errors
    ///
    /// Returns an error unless `v_dd > v_t >= 0` and `width > 0`.
    pub fn new(v_dd: f64, v_t: f64, width: f64) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("v_t", v_t, 0.0, 2.0)?;
        CarbonError::require_positive("width", width)?;
        CarbonError::require_positive("v_dd", v_dd)?;
        if v_dd <= v_t {
            return Err(CarbonError::out_of_range("v_dd", v_dd, v_t + 1e-9, 2.0));
        }
        Ok(Self { v_dd, v_t, width })
    }

    /// The nominal point for a device: `V_DD = 0.8 V`, device `V_T`,
    /// unit width.
    #[must_use]
    pub fn nominal(device: &DeviceParams) -> Self {
        Self {
            v_dd: 0.8,
            v_t: device.v_t,
            width: 1.0,
        }
    }
}

/// Evaluated gate characteristics at an operating point, relative to the
/// device's nominal point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateCharacteristics {
    /// Gate delay relative to nominal (lower is faster).
    pub delay: f64,
    /// Dynamic switching energy relative to nominal.
    pub dynamic_energy: f64,
    /// Leakage power relative to nominal *total* power.
    pub leakage_power: f64,
}

/// The alpha-power-law gate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateModel {
    device: DeviceParams,
    nominal: OperatingPoint,
}

impl GateModel {
    /// Creates a model around the device's nominal operating point.
    ///
    /// # Errors
    ///
    /// Returns an error if the device parameters are invalid.
    pub fn new(device: DeviceParams) -> Result<Self, CarbonError> {
        device.validate()?;
        Ok(Self {
            nominal: OperatingPoint::nominal(&device),
            device,
        })
    }

    /// The device parameters.
    #[must_use]
    pub fn device(&self) -> &DeviceParams {
        &self.device
    }

    /// The nominal operating point.
    #[must_use]
    pub fn nominal(&self) -> OperatingPoint {
        self.nominal
    }

    /// Drive current relative to nominal: `I ∝ W (V_DD - V_T)^α`.
    #[must_use]
    pub fn drive_current(&self, op: OperatingPoint) -> f64 {
        let num = op.width * (op.v_dd - op.v_t).max(0.0).powf(self.device.alpha);
        let den = self.nominal.width
            * (self.nominal.v_dd - self.nominal.v_t)
                .max(0.0)
                .powf(self.device.alpha);
        num / den
    }

    /// Evaluates gate characteristics at `op`, relative to nominal.
    ///
    /// * delay `∝ C V_DD / I` with `C ∝ W`;
    /// * dynamic energy `∝ C V_DD²`;
    /// * leakage power `∝ W V_DD e^(-V_T / swing)`, scaled so that it equals
    ///   `leakage_fraction_nominal / (1 - leakage_fraction_nominal)` of the
    ///   nominal dynamic power at the nominal point.
    #[must_use]
    pub fn characteristics(&self, op: OperatingPoint) -> GateCharacteristics {
        let nom = self.nominal;
        // Delay: C*V / I, C ∝ width; width cancels within drive current.
        let delay = (op.width * op.v_dd / self.drive_current(op))
            / (nom.width * nom.v_dd / self.drive_current(nom));
        let dynamic_energy = (op.width * op.v_dd * op.v_dd) / (nom.width * nom.v_dd * nom.v_dd);
        let leak_rel = (op.width * op.v_dd * (-(op.v_t) / self.device.subthreshold_swing).exp())
            / (nom.width * nom.v_dd * (-(nom.v_t) / self.device.subthreshold_swing).exp());
        let lf = self.device.leakage_fraction_nominal;
        // Normalize so leakage_power is in units of "nominal dynamic power".
        let leakage_power = if lf > 0.0 {
            leak_rel * lf / (1.0 - lf)
        } else {
            0.0
        };
        GateCharacteristics {
            delay,
            dynamic_energy,
            leakage_power,
        }
    }

    /// Energy per operation including leakage, relative to nominal dynamic
    /// energy, for a circuit whose critical path sets the cycle time:
    /// `E = E_dyn + P_leak · delay`.
    #[must_use]
    pub fn energy_per_op(&self, op: OperatingPoint) -> f64 {
        let ch = self.characteristics(op);
        ch.dynamic_energy + ch.leakage_power * ch.delay
    }

    /// Energy-delay product relative to nominal.
    #[must_use]
    pub fn edp(&self, op: OperatingPoint) -> f64 {
        let ch = self.characteristics(op);
        self.energy_per_op(op) * ch.delay
    }

    /// Energy-delay² product relative to nominal.
    #[must_use]
    pub fn ed2p(&self, op: OperatingPoint) -> f64 {
        let ch = self.characteristics(op);
        self.energy_per_op(op) * ch.delay * ch.delay
    }
}

impl Default for GateModel {
    fn default() -> Self {
        // cordoba-lint: allow(no-panic) — static modern() params, validated by tests
        Self::new(DeviceParams::modern()).expect("modern device params are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(v_dd: f64, v_t: f64, width: f64) -> OperatingPoint {
        OperatingPoint::new(v_dd, v_t, width).unwrap()
    }

    #[test]
    fn nominal_point_is_unity() {
        let m = GateModel::default();
        let ch = m.characteristics(m.nominal());
        assert!((ch.delay - 1.0).abs() < 1e-12);
        assert!((ch.dynamic_energy - 1.0).abs() < 1e-12);
        // Leakage fraction 0.15 -> P_leak = 0.15/0.85 of dynamic power.
        assert!((ch.leakage_power - 0.15 / 0.85).abs() < 1e-12);
    }

    #[test]
    fn lowering_vdd_saves_energy_costs_delay() {
        // Table VI row 1: V_DD ↓ -> E ↓ (good), D ↑ (bad).
        let m = GateModel::default();
        let low = m.characteristics(op(0.6, 0.3, 1.0));
        assert!(low.dynamic_energy < 1.0);
        assert!(low.delay > 1.0);
    }

    #[test]
    fn raising_vt_cuts_leakage_costs_delay() {
        // Table VI row 2: V_T ↑ -> E ↓ (leakage), D ↑.
        let m = GateModel::default();
        let hi_vt = m.characteristics(op(0.8, 0.4, 1.0));
        let nominal = m.characteristics(m.nominal());
        assert!(hi_vt.leakage_power < nominal.leakage_power / 5.0);
        assert!(hi_vt.delay > 1.0);
        assert!((hi_vt.dynamic_energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn narrower_transistors_save_energy_cost_nothing_on_gate_delay_alone() {
        // Width scales both C and I, so intrinsic gate delay is unchanged,
        // but in real circuits narrower devices drive fixed wire loads more
        // slowly; here energy strictly improves.
        let m = GateModel::default();
        let narrow = m.characteristics(op(0.8, 0.3, 0.5));
        assert!(narrow.dynamic_energy < 1.0);
        assert!(narrow.leakage_power < m.characteristics(m.nominal()).leakage_power);
    }

    #[test]
    fn drive_current_follows_alpha_power() {
        let m = GateModel::new(DeviceParams {
            alpha: 1.3,
            v_t: 0.3,
            subthreshold_swing: 0.036,
            leakage_fraction_nominal: 0.15,
        })
        .unwrap();
        let i = m.drive_current(op(1.0, 0.3, 1.0));
        let expected = ((1.0f64 - 0.3) / (0.8 - 0.3)).powf(1.3);
        assert!((i - expected).abs() < 1e-12);
    }

    #[test]
    fn ed2p_is_vdd_independent_only_for_ideal_square_law() {
        // §III-A: under α=2, V_T=0, no leakage, ED² is V_DD-independent.
        let ideal = GateModel::new(DeviceParams::ideal_square_law()).unwrap();
        let a = ideal.ed2p(op(0.5, 0.0, 1.0));
        let b = ideal.ed2p(op(1.0, 0.0, 1.0));
        assert!(
            (a - b).abs() / b < 1e-9,
            "ideal ED2P should be V_DD-independent: {a} vs {b}"
        );

        // For a modern device it is strongly V_DD-dependent.
        let modern = GateModel::default();
        let a = modern.ed2p(op(0.5, 0.3, 1.0));
        let b = modern.ed2p(op(1.0, 0.3, 1.0));
        assert!(
            (a - b).abs() / b > 0.3,
            "modern ED2P should vary with V_DD: {a} vs {b}"
        );
    }

    #[test]
    fn edp_has_interior_optimum_in_vdd() {
        // EDP improves as V_DD drops from high values, then worsens as the
        // device approaches V_T (delay explodes) — an interior optimum, the
        // reason EDP "automatically selects" V_DD (§III-A).
        let m = GateModel::default();
        let edps: Vec<f64> = [0.40, 0.55, 0.8, 1.2]
            .iter()
            .map(|&v| m.edp(op(v, 0.3, 1.0)))
            .collect();
        let min = edps.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < edps[0], "EDP at 0.40 V should not be optimal");
        assert!(min < edps[3], "EDP at 1.2 V should not be optimal");
    }

    #[test]
    fn energy_per_op_includes_leakage_at_low_vdd() {
        // Near-threshold operation: dynamic energy falls but leakage energy
        // per op rises with the longer cycle.
        let m = GateModel::default();
        let low = op(0.42, 0.3, 1.0);
        let ch = m.characteristics(low);
        let total = m.energy_per_op(low);
        assert!(total > ch.dynamic_energy);
    }

    #[test]
    fn operating_point_validation() {
        assert!(OperatingPoint::new(0.3, 0.3, 1.0).is_err()); // v_dd <= v_t
        assert!(OperatingPoint::new(0.8, -0.1, 1.0).is_err());
        assert!(OperatingPoint::new(0.8, 0.3, 0.0).is_err());
        assert!(OperatingPoint::new(0.8, 0.3, 1.0).is_ok());
    }

    #[test]
    fn device_validation() {
        let mut d = DeviceParams::modern();
        d.alpha = 3.0;
        assert!(GateModel::new(d).is_err());
        let mut d = DeviceParams::modern();
        d.leakage_fraction_nominal = 1.0;
        assert!(GateModel::new(d).is_err());
    }
}
