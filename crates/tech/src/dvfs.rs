//! Dynamic voltage and frequency scaling (DVFS) operating points.
//!
//! Builds on the alpha-power gate model to expose a frequency/voltage curve:
//! the maximum clock frequency at a supply voltage is the reciprocal of the
//! critical-path delay. Used by the Table VI bench to sweep the `V_DD` knob
//! and by §III-C's discussion of `ED²P`/`tCD²P` for DVFS designs.

use crate::mosfet::{GateModel, OperatingPoint};
use cordoba_carbon::units::{count_f64, CarbonIntensity, GramsCo2e, Hertz, Joules, Watts};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};

/// A concrete DVFS point of a calibrated circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsPoint {
    /// Supply voltage, in volts.
    pub v_dd: f64,
    /// Maximum clock frequency at this voltage.
    pub frequency: Hertz,
    /// Energy per cycle (dynamic + leakage share).
    pub energy_per_cycle: Joules,
    /// Leakage power at this point.
    pub leakage_power: Watts,
}

/// A circuit calibrated at a nominal frequency and energy, scaled across
/// voltages with the alpha-power model.
///
/// # Examples
///
/// ```
/// use cordoba_tech::dvfs::DvfsCurve;
/// use cordoba_tech::mosfet::GateModel;
/// use cordoba_carbon::units::{Hertz, Joules, Watts};
///
/// let curve = DvfsCurve::new(
///     GateModel::default(),
///     Hertz::from_gigahertz(1.0),
///     Joules::from_nanojoules(2.0),
///     Watts::new(0.3),
/// );
/// let slow = curve.point(0.6)?;
/// let fast = curve.point(1.0)?;
/// assert!(slow.frequency < fast.frequency);
/// assert!(slow.energy_per_cycle < fast.energy_per_cycle);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsCurve {
    gate: GateModel,
    nominal_frequency: Hertz,
    nominal_energy_per_cycle: Joules,
    nominal_leakage: Watts,
}

impl DvfsCurve {
    /// Calibrates a curve at the gate model's nominal operating point.
    #[must_use]
    pub fn new(
        gate: GateModel,
        nominal_frequency: Hertz,
        nominal_energy_per_cycle: Joules,
        nominal_leakage: Watts,
    ) -> Self {
        Self {
            gate,
            nominal_frequency,
            nominal_energy_per_cycle,
            nominal_leakage,
        }
    }

    /// The DVFS point at supply voltage `v_dd` (device `V_T`, unit width).
    ///
    /// # Errors
    ///
    /// Returns an error if `v_dd` does not exceed the device threshold.
    pub fn point(&self, v_dd: f64) -> Result<DvfsPoint, CarbonError> {
        let op = OperatingPoint::new(v_dd, self.gate.device().v_t, 1.0)?;
        let ch = self.gate.characteristics(op);
        let frequency = self.nominal_frequency / ch.delay;
        let dynamic = self.nominal_energy_per_cycle * ch.dynamic_energy;
        // Leakage power scales with the relative leakage; normalize by the
        // nominal relative leakage so the calibrated wattage is recovered
        // at the nominal point.
        let nominal_rel = self.gate.characteristics(self.gate.nominal()).leakage_power;
        let leakage_power = if nominal_rel > 0.0 {
            self.nominal_leakage * (ch.leakage_power / nominal_rel)
        } else {
            Watts::ZERO
        };
        let leakage_per_cycle = leakage_power * frequency.period();
        Ok(DvfsPoint {
            v_dd,
            frequency,
            energy_per_cycle: dynamic + leakage_per_cycle,
            leakage_power,
        })
    }

    /// Selects the DVFS point minimizing **tCDP** for a task of
    /// `cycles_per_task` cycles run `tasks` times over the hardware's life,
    /// with the given embodied carbon and use-phase intensity.
    ///
    /// This is the §III-C DVFS discussion made concrete: at short
    /// operational lifetimes (embodied-dominant) the carbon-optimal point
    /// is the *fastest* voltage (minimize `D`); at long lifetimes it slides
    /// down toward the EDP-optimal voltage — and, unlike `ED²P`/`tCD²P`,
    /// the tCDP selection has a direct budget interpretation.
    ///
    /// # Errors
    ///
    /// Returns an error if the sweep range is invalid or the inputs are not
    /// positive.
    #[allow(clippy::too_many_arguments)]
    pub fn tcdp_optimal_point(
        &self,
        cycles_per_task: f64,
        embodied: GramsCo2e,
        tasks: f64,
        ci_use: CarbonIntensity,
        v_lo: f64,
        v_hi: f64,
        steps: usize,
    ) -> Result<DvfsPoint, CarbonError> {
        CarbonError::require_positive("cycles per task", cycles_per_task)?;
        CarbonError::require_positive("tasks", tasks)?;
        CarbonError::require_in_range("embodied", embodied.value(), 0.0, f64::MAX)?;
        let points = self.sweep(v_lo, v_hi, steps)?;
        points
            .into_iter()
            .min_by(|a, b| {
                let tcdp = |p: &DvfsPoint| {
                    let delay = cycles_per_task / p.frequency.value();
                    let energy = p.energy_per_cycle * cycles_per_task;
                    let operational = ci_use * (energy * tasks).to_kilowatt_hours();
                    (embodied + operational).value() * delay
                };
                tcdp(a).total_cmp(&tcdp(b))
            })
            .ok_or(CarbonError::Empty {
                what: "dvfs sweep points",
            })
    }

    /// Sweeps `n` evenly spaced points over `[v_lo, v_hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is invalid or any voltage is at or
    /// below threshold.
    pub fn sweep(&self, v_lo: f64, v_hi: f64, n: usize) -> Result<Vec<DvfsPoint>, CarbonError> {
        if n < 2 || v_hi <= v_lo {
            return Err(CarbonError::out_of_range("sweep range", v_hi, v_lo, 2.0));
        }
        (0..n)
            .map(|i| {
                let v = v_lo + (v_hi - v_lo) * count_f64(i) / count_f64(n - 1);
                self.point(v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> DvfsCurve {
        DvfsCurve::new(
            GateModel::default(),
            Hertz::from_gigahertz(1.0),
            Joules::from_nanojoules(2.0),
            Watts::new(0.3),
        )
    }

    #[test]
    fn nominal_point_recovers_calibration() {
        let c = curve();
        let p = c.point(0.8).unwrap();
        assert!((p.frequency.to_gigahertz() - 1.0).abs() < 1e-9);
        assert!((p.leakage_power.value() - 0.3).abs() < 1e-9);
        // Energy per cycle = dynamic + leakage share.
        let expected = 2e-9 + 0.3 * 1e-9;
        assert!((p.energy_per_cycle.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn frequency_monotonic_in_vdd() {
        let c = curve();
        let pts = c.sweep(0.5, 1.1, 7).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].frequency > w[0].frequency);
        }
    }

    #[test]
    fn high_vdd_pays_quadratic_energy() {
        let c = curve();
        let lo = c.point(0.8).unwrap();
        let hi = c.point(1.2).unwrap();
        // Dynamic energy alone scales (1.2/0.8)^2 = 2.25x; leakage-per-cycle
        // shrinks with the faster clock, so the ratio is slightly below.
        let ratio = hi.energy_per_cycle.value() / lo.energy_per_cycle.value();
        assert!(ratio > 1.9 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn sweep_validation() {
        let c = curve();
        assert!(c.sweep(1.0, 0.5, 5).is_err());
        assert!(c.sweep(0.5, 1.0, 1).is_err());
        assert!(c.point(0.2).is_err()); // below threshold
    }

    #[test]
    fn tcdp_optimal_voltage_falls_as_operational_time_grows() {
        // Embodied-dominant: run fast (high V_DD). Operational-dominant:
        // run near the EDP-optimal voltage.
        let c = curve();
        let embodied = GramsCo2e::new(1_000.0);
        let ci = CarbonIntensity::new(380.0);
        let cycles = 1e9;
        let pick = |tasks: f64| {
            c.tcdp_optimal_point(cycles, embodied, tasks, ci, 0.45, 1.2, 64)
                .unwrap()
                .v_dd
        };
        let short_life = pick(1.0);
        let long_life = pick(1e9);
        assert!(
            short_life > long_life + 0.05,
            "short {short_life} vs long {long_life}"
        );
        assert!(
            (short_life - 1.2).abs() < 1e-9,
            "embodied-dominant runs flat out"
        );
        // The long-life choice is interior (not the minimum voltage either:
        // leakage and delay push back).
        assert!(long_life > 0.45 + 1e-9);
    }

    #[test]
    fn tcdp_selection_validation() {
        let c = curve();
        let g = GramsCo2e::new(1.0);
        let ci = CarbonIntensity::new(380.0);
        assert!(c.tcdp_optimal_point(0.0, g, 1.0, ci, 0.5, 1.0, 8).is_err());
        assert!(c.tcdp_optimal_point(1.0, g, 0.0, ci, 0.5, 1.0, 8).is_err());
        assert!(c.tcdp_optimal_point(1.0, g, 1.0, ci, 1.0, 0.5, 8).is_err());
    }

    #[test]
    fn near_threshold_leakage_dominates_energy_per_cycle() {
        let c = curve();
        let p = c.point(0.42).unwrap();
        let leak_per_cycle = p.leakage_power * p.frequency.period();
        // At near-threshold speeds the leakage share is significant.
        assert!(leak_per_cycle.value() / p.energy_per_cycle.value() > 0.2);
    }
}
