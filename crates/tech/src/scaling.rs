//! Process-node scaling of a fixed logic design (§VII, Table VI).
//!
//! Couples the per-node fab profiles of `cordoba-carbon` with a logic design
//! to answer: *if I port this design to node N, what happens to its area,
//! energy, delay, leakage — and its embodied carbon per die?*
//!
//! The paper's headline tension: advancing the node improves energy/op and
//! area (thus delay at iso-architecture), but raises embodied carbon *per
//! unit area* — so the embodied carbon of a fixed design falls slower than
//! its energy does, and can even rise once per-area fab intensity outpaces
//! density gains.

use cordoba_carbon::embodied::{Die, EmbodiedModel};
use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::units::{GramsCo2e, SquareCentimeters};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};

/// A fixed logic design characterized at a reference node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicDesign {
    /// Human-readable name.
    pub name: String,
    /// Die area when fabricated at the reference node.
    pub reference_area: SquareCentimeters,
    /// The node the design is characterized at.
    pub reference_node: ProcessNode,
    /// Relative energy per operation at the reference node (1.0 = the
    /// reference node's own `energy_per_op`).
    pub reference_energy: f64,
}

impl LogicDesign {
    /// Creates a design.
    ///
    /// # Errors
    ///
    /// Returns an error if the area is not positive.
    pub fn new(
        name: impl Into<String>,
        reference_area: SquareCentimeters,
        reference_node: ProcessNode,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_positive("reference area", reference_area.value())?;
        Ok(Self {
            name: name.into(),
            reference_area,
            reference_node,
            reference_energy: 1.0,
        })
    }

    /// The design's die area when ported to `node`.
    #[must_use]
    pub fn area_at(&self, node: ProcessNode) -> SquareCentimeters {
        let ref_density = self.reference_node.profile().logic_density;
        let density = node.profile().logic_density;
        self.reference_area * (ref_density / density)
    }

    /// Relative energy per operation when ported to `node`
    /// (1.0 = reference node).
    #[must_use]
    pub fn energy_at(&self, node: ProcessNode) -> f64 {
        let ref_e = self.reference_node.profile().energy_per_op;
        node.profile().energy_per_op / ref_e * self.reference_energy
    }

    /// Relative delay per operation when ported to `node`. We model delay
    /// as improving with the same trend as energy but more slowly
    /// (sqrt), reflecting post-Dennard wire-dominated scaling.
    #[must_use]
    pub fn delay_at(&self, node: ProcessNode) -> f64 {
        self.energy_at(node).sqrt()
    }

    /// Embodied carbon of one die of this design at `node`.
    #[must_use]
    pub fn embodied_at(&self, node: ProcessNode, model: &EmbodiedModel) -> GramsCo2e {
        let die = Die {
            name: self.name.clone(),
            area: self.area_at(node),
            node,
        };
        model.die_carbon(&die)
    }

    /// Full scaling row for `node`: (area, relative energy, relative delay,
    /// embodied carbon).
    #[must_use]
    pub fn scaling_row(&self, node: ProcessNode, model: &EmbodiedModel) -> ScalingRow {
        ScalingRow {
            node,
            area: self.area_at(node),
            energy: self.energy_at(node),
            delay: self.delay_at(node),
            embodied: self.embodied_at(node, model),
        }
    }

    /// Scaling rows for every node on the roadmap.
    #[must_use]
    pub fn roadmap(&self, model: &EmbodiedModel) -> Vec<ScalingRow> {
        ProcessNode::ALL
            .iter()
            .map(|&n| self.scaling_row(n, model))
            .collect()
    }
}

/// One node's scaling characteristics for a fixed design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// The node.
    pub node: ProcessNode,
    /// Die area at this node.
    pub area: SquareCentimeters,
    /// Energy per op relative to the design's reference node.
    pub energy: f64,
    /// Delay per op relative to the design's reference node.
    pub delay: f64,
    /// Embodied carbon of one die.
    pub embodied: GramsCo2e,
}

impl ScalingRow {
    /// Relative energy-delay product.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy * self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> LogicDesign {
        LogicDesign::new("soc", SquareCentimeters::new(4.0), ProcessNode::N28).unwrap()
    }

    #[test]
    fn porting_forward_shrinks_area_and_energy() {
        let d = design();
        let a7 = d.area_at(ProcessNode::N7);
        assert!(a7 < d.reference_area);
        assert!((a7.value() - 4.0 / 6.7).abs() < 1e-9);
        assert!(d.energy_at(ProcessNode::N7) < 1.0);
        assert!(d.delay_at(ProcessNode::N7) < 1.0);
        assert!((d.energy_at(ProcessNode::N28) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edp_always_improves_with_scaling() {
        // §VII: "scaling has always improved energy efficiency (EDP)".
        let d = design();
        let model = EmbodiedModel::default();
        let rows = d.roadmap(&model);
        for w in rows.windows(2) {
            assert!(
                w[1].edp() < w[0].edp(),
                "EDP should improve {} -> {}",
                w[0].node,
                w[1].node
            );
        }
    }

    #[test]
    fn embodied_per_area_rises_even_as_die_shrinks() {
        // The embodied carbon of the fixed design falls much more slowly
        // than its area: per-area fab carbon rises with newer nodes.
        let d = design();
        let model = EmbodiedModel::default();
        let r28 = d.scaling_row(ProcessNode::N28, &model);
        let r3 = d.scaling_row(ProcessNode::N3, &model);
        let area_ratio = r28.area.value() / r3.area.value();
        let carbon_ratio = r28.embodied.value() / r3.embodied.value();
        assert!(
            carbon_ratio < area_ratio / 2.0,
            "embodied should shrink far slower than area: area {area_ratio}, carbon {carbon_ratio}"
        );
    }

    #[test]
    fn node_knob_trades_energy_efficiency_against_embodied_per_area() {
        // Table VI bottom row: Tech node ↓ (advance) -> E↓ D↓ (good) but
        // per-area embodied ↑ (bad).
        let model = EmbodiedModel::default();
        let unit = SquareCentimeters::new(1.0);
        for pair in ProcessNode::ALL.windows(2) {
            let old = model.die_carbon(&Die {
                name: "u".into(),
                area: unit,
                node: pair[0],
            });
            let new = model.die_carbon(&Die {
                name: "u".into(),
                area: unit,
                node: pair[1],
            });
            assert!(
                new > old,
                "per-area embodied must rise {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn roadmap_covers_all_nodes_in_order() {
        let rows = design().roadmap(&EmbodiedModel::default());
        assert_eq!(rows.len(), ProcessNode::ALL.len());
        assert_eq!(rows[0].node, ProcessNode::N28);
        assert_eq!(rows.last().unwrap().node, ProcessNode::N3);
    }

    #[test]
    fn validation() {
        assert!(LogicDesign::new("x", SquareCentimeters::ZERO, ProcessNode::N7).is_err());
    }
}
