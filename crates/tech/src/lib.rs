//! # cordoba-tech
//!
//! Technology/device substrate for the CORDOBA framework.
//!
//! Implements the device-physics models the paper's metric discussion
//! (§III) and design-knob discussion (§VII, Table VI) rest on:
//!
//! * [`mosfet`] — alpha-power-law MOSFET gate model \[42\]: delay, dynamic
//!   energy, and subthreshold leakage versus `V_DD`, `V_T`, and width,
//!   including the ideal-square-law special case under which `ED²` is
//!   `V_DD`-independent;
//! * [`dvfs`] — calibrated voltage/frequency curves for DVFS sweeps;
//! * [`scaling`] — porting a fixed logic design across process nodes,
//!   coupling energy/area gains against rising per-area embodied carbon;
//! * [`knobs`] — programmatic evaluation of the paper's Table VI.
//!
//! # Example
//!
//! ```
//! use cordoba_tech::mosfet::{GateModel, OperatingPoint};
//!
//! let gate = GateModel::default();
//! let low_power = OperatingPoint::new(0.6, 0.3, 1.0)?;
//! let ch = gate.characteristics(low_power);
//! assert!(ch.dynamic_energy < 1.0 && ch.delay > 1.0);
//! # Ok::<(), cordoba_carbon::CarbonError>(())
//! ```

pub mod dvfs;
pub mod knobs;
pub mod mosfet;
pub mod scaling;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dvfs::{DvfsCurve, DvfsPoint};
    pub use crate::knobs::{evaluate_knobs, Direction, Knob, KnobEffect};
    pub use crate::mosfet::{DeviceParams, GateCharacteristics, GateModel, OperatingPoint};
    pub use crate::scaling::{LogicDesign, ScalingRow};
}
