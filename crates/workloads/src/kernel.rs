//! The fifteen AI/XR kernels the paper evaluates (§V, Table IV).
//!
//! Each kernel is characterized by the three quantities the accelerator
//! simulator needs: compute (multiply-accumulate operations per inference),
//! peak activation footprint, and weight footprint. The absolute values are
//! synthesized from the public architectures the paper cites (\[23\], \[43\],
//! \[51\], ...) assuming 8-bit inference; what the results depend on is the
//! *relative* structure — e.g. super-resolution kernels having activation
//! footprints that grow 4x per resolution step and dwarf on-chip SRAM.

use cordoba_carbon::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the fifteen evaluated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelId {
    /// ResNet-18 image classification \[23\].
    ResNet18,
    /// ResNet-50 image classification \[23\].
    ResNet50,
    /// ResNet-152 image classification \[23\].
    ResNet152,
    /// GoogleNet image classification \[51\].
    GoogleNet,
    /// MobileNet-V2 image classification \[43\].
    MobileNetV2,
    /// Eye tracking (SegNet-based) \[4\].
    EyeTracking,
    /// Depth estimation, 3D aggregation network \[30\].
    DepthAgg3d,
    /// Depth estimation / pose, high-resolution network \[49\].
    Hrnet,
    /// Emotion detection (E-FAN) \[52\].
    EmotionFan,
    /// Hand tracking, joint-location prediction \[33\].
    HandJlp,
    /// Image denoising, U-Net \[40\].
    UNet,
    /// Image denoising, feature-align network \[55\].
    Denoise,
    /// Super-resolution at 256x256 \[5\].
    Sr256,
    /// Super-resolution at 512x512 \[5\].
    Sr512,
    /// Super-resolution at 1024x1024 \[5\].
    Sr1024,
}

impl KernelId {
    /// All fifteen kernels.
    pub const ALL: [KernelId; 15] = [
        Self::ResNet18,
        Self::ResNet50,
        Self::ResNet152,
        Self::GoogleNet,
        Self::MobileNetV2,
        Self::EyeTracking,
        Self::DepthAgg3d,
        Self::Hrnet,
        Self::EmotionFan,
        Self::HandJlp,
        Self::UNet,
        Self::Denoise,
        Self::Sr256,
        Self::Sr512,
        Self::Sr1024,
    ];

    /// The short name used in the paper's Table IV.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            Self::ResNet18 => "RN-18",
            Self::ResNet50 => "RN-50",
            Self::ResNet152 => "RN-152",
            Self::GoogleNet => "GN",
            Self::MobileNetV2 => "MN2",
            Self::EyeTracking => "ET",
            Self::DepthAgg3d => "3D-Agg",
            Self::Hrnet => "HRN",
            Self::EmotionFan => "E-FAN",
            Self::HandJlp => "JLP",
            Self::UNet => "UNet",
            Self::Denoise => "DN",
            Self::Sr256 => "SR (256x256)",
            Self::Sr512 => "SR (512x512)",
            Self::Sr1024 => "SR (1024x1024)",
        }
    }

    /// The workload descriptor for this kernel.
    #[must_use]
    pub fn descriptor(self) -> KernelDescriptor {
        // Columns: GMACs/inference, peak activation MiB, weight MiB (INT8).
        let (gmacs, act_mib, weight_mib) = match self {
            Self::ResNet18 => (1.8, 3.0, 11.7),
            Self::ResNet50 => (4.1, 9.0, 25.6),
            Self::ResNet152 => (11.5, 12.0, 60.2),
            Self::GoogleNet => (1.5, 5.0, 7.0),
            Self::MobileNetV2 => (0.3, 4.0, 3.5),
            Self::EyeTracking => (3.0, 12.0, 29.5),
            Self::DepthAgg3d => (5.5, 30.0, 20.0),
            Self::Hrnet => (8.0, 40.0, 28.5),
            Self::EmotionFan => (2.0, 8.0, 24.0),
            Self::HandJlp => (1.2, 6.0, 12.0),
            Self::UNet => (10.0, 48.0, 31.0),
            Self::Denoise => (6.0, 36.0, 15.0),
            Self::Sr256 => (4.0, 18.0, 12.0),
            Self::Sr512 => (16.0, 72.0, 12.0),
            Self::Sr1024 => (64.0, 288.0, 12.0),
        };
        KernelDescriptor {
            id: self,
            macs: gmacs * 1e9,
            activation: Bytes::from_mebibytes(act_mib),
            weights: Bytes::from_mebibytes(weight_mib),
        }
    }

    /// Whether this kernel has high activation-memory requirements (the
    /// paper's depth-estimation / denoising / super-resolution group).
    #[must_use]
    pub fn is_activation_heavy(self) -> bool {
        self.descriptor().activation.to_mebibytes() > 16.0
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Compute/memory characterization of one kernel inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelDescriptor {
    /// Which kernel this describes.
    pub id: KernelId,
    /// Multiply-accumulate operations per inference.
    pub macs: f64,
    /// Peak activation working-set size.
    pub activation: Bytes,
    /// Weight footprint.
    pub weights: Bytes,
}

impl KernelDescriptor {
    /// Arithmetic intensity proxy: MACs per byte of activation + weight
    /// traffic if nothing is cached. Low values are memory-bound.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.macs / (self.activation.value() + self.weights.value())
    }

    /// Activation bytes per MAC — the pressure a kernel puts on on-chip
    /// activation memory relative to its compute.
    #[must_use]
    pub fn activation_per_mac(&self) -> f64 {
        self.activation.value() / self.macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_kernels() {
        assert_eq!(KernelId::ALL.len(), 15);
        // All distinct.
        let mut names: Vec<_> = KernelId::ALL.iter().map(|k| k.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn descriptors_are_positive_and_consistent() {
        for k in KernelId::ALL {
            let d = k.descriptor();
            assert_eq!(d.id, k);
            assert!(d.macs > 0.0, "{k} macs");
            assert!(d.activation.is_positive(), "{k} activation");
            assert!(d.weights.is_positive(), "{k} weights");
            assert!(d.arithmetic_intensity() > 0.0);
        }
    }

    #[test]
    fn super_resolution_scales_4x_per_resolution_step() {
        let a256 = KernelId::Sr256.descriptor().activation.value();
        let a512 = KernelId::Sr512.descriptor().activation.value();
        let a1024 = KernelId::Sr1024.descriptor().activation.value();
        assert!((a512 / a256 - 4.0).abs() < 1e-9);
        assert!((a1024 / a512 - 4.0).abs() < 1e-9);
        let m512 = KernelId::Sr512.descriptor().macs;
        let m1024 = KernelId::Sr1024.descriptor().macs;
        assert!((m1024 / m512 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn activation_heavy_group_matches_paper() {
        // §V: depth estimation, image denoising and super-resolution suffer
        // from high activation memory requirements.
        for k in [
            KernelId::DepthAgg3d,
            KernelId::Hrnet,
            KernelId::UNet,
            KernelId::Denoise,
            KernelId::Sr256,
            KernelId::Sr512,
            KernelId::Sr1024,
        ] {
            assert!(k.is_activation_heavy(), "{k} should be activation-heavy");
        }
        for k in [
            KernelId::ResNet18,
            KernelId::ResNet50,
            KernelId::GoogleNet,
            KernelId::MobileNetV2,
            KernelId::EyeTracking,
            KernelId::HandJlp,
            KernelId::EmotionFan,
        ] {
            assert!(
                !k.is_activation_heavy(),
                "{k} should not be activation-heavy"
            );
        }
    }

    #[test]
    fn resnets_order_by_depth() {
        let m18 = KernelId::ResNet18.descriptor().macs;
        let m50 = KernelId::ResNet50.descriptor().macs;
        let m152 = KernelId::ResNet152.descriptor().macs;
        assert!(m18 < m50 && m50 < m152);
    }

    #[test]
    fn super_resolution_pressures_activation_memory_more_than_resnets() {
        // §V: SR kernels stress activation memory/bandwidth; classification
        // kernels are compute-dominated per activation byte.
        let rn = KernelId::ResNet50.descriptor().activation_per_mac();
        let sr = KernelId::Sr1024.descriptor().activation_per_mac();
        assert!(sr > 1.5 * rn, "sr {sr} vs rn {rn}");
    }

    #[test]
    fn display_matches_table_iv_names() {
        assert_eq!(KernelId::Sr512.to_string(), "SR (512x512)");
        assert_eq!(KernelId::DepthAgg3d.to_string(), "3D-Agg");
        assert_eq!(KernelId::MobileNetV2.to_string(), "MN2");
    }
}
