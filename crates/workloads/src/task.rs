//! Tasks: sets of kernels with per-kernel call counts (`N_{T,K}`).
//!
//! A task is one row of the paper's `N` matrix (eq. IV.2): an application is
//! a weighted combination of kernel invocations. Table IV's five evaluation
//! tasks are provided as constructors.

use crate::kernel::KernelId;
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A task: a named set of `(kernel, calls)` pairs.
///
/// # Examples
///
/// ```
/// use cordoba_workloads::task::Task;
/// use cordoba_workloads::kernel::KernelId;
///
/// let task = Task::ai_5_kernels();
/// assert_eq!(task.kernels().count(), 5);
/// assert!(task.calls_for(KernelId::ResNet50) > 0.0);
/// assert_eq!(task.calls_for(KernelId::Sr1024), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    calls: Vec<(KernelId, f64)>,
}

impl Task {
    /// Creates a task from `(kernel, calls)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if `calls` is empty, contains duplicate kernels,
    /// or any call count is not positive and finite.
    pub fn new(name: impl Into<String>, calls: Vec<(KernelId, f64)>) -> Result<Self, CarbonError> {
        if calls.is_empty() {
            return Err(CarbonError::Empty {
                what: "task kernel list",
            });
        }
        for &(_, n) in &calls {
            CarbonError::require_positive("kernel calls", n)?;
        }
        let mut ids: Vec<KernelId> = calls.iter().map(|&(k, _)| k).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        if ids.len() != before {
            return Err(CarbonError::NotMonotonic {
                what: "task kernel ids (duplicates)",
            });
        }
        Ok(Self {
            name: name.into(),
            calls,
        })
    }

    /// Creates a task invoking each given kernel once.
    ///
    /// # Errors
    ///
    /// Returns an error if `kernels` is empty or has duplicates.
    pub fn uniform(
        name: impl Into<String>,
        kernels: impl IntoIterator<Item = KernelId>,
    ) -> Result<Self, CarbonError> {
        Self::new(name, kernels.into_iter().map(|k| (k, 1.0)).collect())
    }

    /// The task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates over `(kernel, calls)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (KernelId, f64)> + '_ {
        self.calls.iter().copied()
    }

    /// Iterates over the kernels in the task.
    pub fn kernels(&self) -> impl Iterator<Item = KernelId> + '_ {
        self.calls.iter().map(|&(k, _)| k)
    }

    /// `N_{T,K}` — calls of `kernel` per task execution (0 when the kernel
    /// is not part of the task).
    #[must_use]
    pub fn calls_for(&self, kernel: KernelId) -> f64 {
        self.calls
            .iter()
            .find(|&&(k, _)| k == kernel)
            .map_or(0.0, |&(_, n)| n)
    }

    /// Total kernel invocations per task execution.
    #[must_use]
    pub fn total_calls(&self) -> f64 {
        self.calls.iter().map(|&(_, n)| n).sum()
    }

    // ---- Table IV tasks -------------------------------------------------

    /// "All kernels": every one of the fifteen kernels once.
    #[must_use]
    pub fn all_kernels() -> Self {
        // cordoba-lint: allow(no-panic) — compile-time kernel list
        Self::uniform("All kernels", KernelId::ALL).expect("static kernel list is valid")
    }

    /// "XR (10 kernels)": 3D-Agg, ET, JLP, HRN, UNet, E-FAN, DN, SR x3.
    #[must_use]
    pub fn xr_10_kernels() -> Self {
        Self::uniform(
            "XR 10 kernels",
            [
                KernelId::DepthAgg3d,
                KernelId::EyeTracking,
                KernelId::HandJlp,
                KernelId::Hrnet,
                KernelId::UNet,
                KernelId::EmotionFan,
                KernelId::Denoise,
                KernelId::Sr256,
                KernelId::Sr512,
                KernelId::Sr1024,
            ],
        )
        .expect("static kernel list is valid") // cordoba-lint: allow(no-panic) — compile-time kernel list
    }

    /// "AI (10 kernels)": RN-18/50/152, GN, MN2, 3D-Agg, ET, UNet, JLP, HRN.
    #[must_use]
    pub fn ai_10_kernels() -> Self {
        Self::uniform(
            "AI 10 kernels",
            [
                KernelId::ResNet18,
                KernelId::ResNet50,
                KernelId::ResNet152,
                KernelId::GoogleNet,
                KernelId::MobileNetV2,
                KernelId::DepthAgg3d,
                KernelId::EyeTracking,
                KernelId::UNet,
                KernelId::HandJlp,
                KernelId::Hrnet,
            ],
        )
        .expect("static kernel list is valid") // cordoba-lint: allow(no-panic) — compile-time kernel list
    }

    /// "XR (5 kernels)": 3D-Agg, HRN, DN, SR (512), SR (1024).
    #[must_use]
    pub fn xr_5_kernels() -> Self {
        Self::uniform(
            "XR 5 kernels",
            [
                KernelId::DepthAgg3d,
                KernelId::Hrnet,
                KernelId::Denoise,
                KernelId::Sr512,
                KernelId::Sr1024,
            ],
        )
        .expect("static kernel list is valid") // cordoba-lint: allow(no-panic) — compile-time kernel list
    }

    /// "AI (5 kernels)": RN-18/50/152, GN, MN2.
    #[must_use]
    pub fn ai_5_kernels() -> Self {
        Self::uniform(
            "AI 5 kernels",
            [
                KernelId::ResNet18,
                KernelId::ResNet50,
                KernelId::ResNet152,
                KernelId::GoogleNet,
                KernelId::MobileNetV2,
            ],
        )
        .expect("static kernel list is valid") // cordoba-lint: allow(no-panic) — compile-time kernel list
    }

    /// The five Table IV evaluation tasks, in the paper's order.
    #[must_use]
    pub fn evaluation_suite() -> Vec<Self> {
        vec![
            Self::all_kernels(),
            Self::xr_10_kernels(),
            Self::ai_10_kernels(),
            Self::xr_5_kernels(),
            Self::ai_5_kernels(),
        ]
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} kernels)", self.name, self.calls.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_membership() {
        assert_eq!(Task::all_kernels().kernels().count(), 15);
        assert_eq!(Task::xr_10_kernels().kernels().count(), 10);
        assert_eq!(Task::ai_10_kernels().kernels().count(), 10);
        assert_eq!(Task::xr_5_kernels().kernels().count(), 5);
        assert_eq!(Task::ai_5_kernels().kernels().count(), 5);
    }

    #[test]
    fn xr5_is_subset_of_xr10() {
        let xr10 = Task::xr_10_kernels();
        for k in Task::xr_5_kernels().kernels() {
            assert!(xr10.calls_for(k) > 0.0, "{k} missing from XR 10");
        }
    }

    #[test]
    fn ai5_is_subset_of_ai10() {
        let ai10 = Task::ai_10_kernels();
        for k in Task::ai_5_kernels().kernels() {
            assert!(ai10.calls_for(k) > 0.0, "{k} missing from AI 10");
        }
    }

    #[test]
    fn xr_tasks_are_activation_heavy_on_average() {
        let heavy = |t: &Task| {
            t.kernels().filter(|k| k.is_activation_heavy()).count() as f64
                / t.kernels().count() as f64
        };
        assert!(heavy(&Task::xr_5_kernels()) > heavy(&Task::ai_5_kernels()));
        assert_eq!(heavy(&Task::ai_5_kernels()), 0.0);
        assert_eq!(heavy(&Task::xr_5_kernels()), 1.0);
    }

    #[test]
    fn calls_for_absent_kernel_is_zero() {
        // "A zero value of N_{T,K} indicates that a kernel K is not part of
        // task T."
        let ai5 = Task::ai_5_kernels();
        assert_eq!(ai5.calls_for(KernelId::Sr1024), 0.0);
        assert_eq!(ai5.calls_for(KernelId::ResNet18), 1.0);
    }

    #[test]
    fn weighted_calls() {
        let t = Task::new(
            "xr-game",
            vec![
                (KernelId::EyeTracking, 4.0),
                (KernelId::HandJlp, 2.0),
                (KernelId::Sr512, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(t.calls_for(KernelId::EyeTracking), 4.0);
        assert_eq!(t.total_calls(), 7.0);
    }

    #[test]
    fn validation() {
        assert!(Task::new("empty", vec![]).is_err());
        assert!(Task::new("zero", vec![(KernelId::UNet, 0.0)]).is_err());
        assert!(Task::new("dup", vec![(KernelId::UNet, 1.0), (KernelId::UNet, 2.0)]).is_err());
    }

    #[test]
    fn display_and_suite() {
        assert_eq!(Task::ai_5_kernels().to_string(), "AI 5 kernels (5 kernels)");
        let suite = Task::evaluation_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].name(), "All kernels");
    }
}
