//! Randomized workload-mix generation.
//!
//! The paper notes the Fig. 8 analysis "can also be adjusted to account for
//! varying workloads over the system's lifetime". This module generates
//! randomized task mixes (perturbed call counts, kernel subsets) so the DSE
//! and robustness analyses can be stress-tested against workload
//! uncertainty, not just the five fixed Table IV tasks.

use crate::kernel::KernelId;
use crate::task::Task;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates a random task of `kernel_count` distinct kernels with call
/// counts uniform in `[1, max_calls]`.
///
/// # Panics
///
/// Panics if `kernel_count` is zero or exceeds the number of kernels, or if
/// `max_calls < 1`.
pub fn random_task<R: Rng + ?Sized>(
    rng: &mut R,
    name: impl Into<String>,
    kernel_count: usize,
    max_calls: u32,
) -> Task {
    assert!(
        (1..=KernelId::ALL.len()).contains(&kernel_count),
        "kernel_count must be in 1..=15"
    );
    assert!(max_calls >= 1, "max_calls must be >= 1");
    let mut pool = KernelId::ALL.to_vec();
    pool.shuffle(rng);
    let calls = pool
        .into_iter()
        .take(kernel_count)
        .map(|k| (k, f64::from(rng.gen_range(1..=max_calls))))
        .collect();
    Task::new(name, calls).expect("generated calls are positive and distinct") // cordoba-lint: allow(no-panic) — calls drawn from 1..=max over a deduplicated pool
}

/// Perturbs every call count of `task` by a multiplicative factor drawn
/// uniformly from `[1/(1+spread), 1+spread]`, modeling uncertainty in the
/// profiled workload mix.
///
/// # Panics
///
/// Panics if `spread` is not positive and finite.
pub fn perturb_task<R: Rng + ?Sized>(rng: &mut R, task: &Task, spread: f64) -> Task {
    assert!(spread > 0.0 && spread.is_finite(), "spread must be > 0");
    let calls = task
        .entries()
        .map(|(k, n)| {
            let factor = rng.gen_range(1.0 / (1.0 + spread)..=(1.0 + spread));
            (k, n * factor)
        })
        .collect();
    Task::new(format!("{} (perturbed)", task.name()), calls)
        .expect("perturbed calls remain positive and distinct") // cordoba-lint: allow(no-panic) — positive factors preserve Task::new invariants
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_task_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_task(&mut rng, "rand", 6, 4);
        assert_eq!(t.kernels().count(), 6);
        for (_, n) in t.entries() {
            assert!((1.0..=4.0).contains(&n));
        }
    }

    #[test]
    fn random_task_is_deterministic_per_seed() {
        let a = random_task(&mut StdRng::seed_from_u64(42), "a", 5, 3);
        let b = random_task(&mut StdRng::seed_from_u64(42), "a", 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn perturbation_keeps_membership_and_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = Task::xr_5_kernels();
        let p = perturb_task(&mut rng, &base, 0.5);
        assert_eq!(p.kernels().count(), base.kernels().count());
        for (k, n) in p.entries() {
            let orig = base.calls_for(k);
            assert!(n >= orig / 1.5 - 1e-12 && n <= orig * 1.5 + 1e-12);
        }
        assert!(p.name().contains("perturbed"));
    }

    #[test]
    #[should_panic(expected = "kernel_count")]
    fn random_task_rejects_zero_kernels() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = random_task(&mut rng, "bad", 0, 1);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn perturb_rejects_bad_spread() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = perturb_task(&mut rng, &Task::ai_5_kernels(), 0.0);
    }
}
