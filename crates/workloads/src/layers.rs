//! Per-layer kernel models.
//!
//! The paper's simulator (Fig. 5) consumes PyTorch models layer by layer;
//! the aggregate [`KernelDescriptor`]
//! numbers summarize that structure.
//!
//! [`KernelDescriptor`]: crate::kernel::KernelDescriptor This module rebuilds the layer level:
//! each kernel is a sequence of conv/depthwise/FC layers (generated from
//! compact backbone recipes) plus *resident* buffers (burst frames, skip
//! connections) that stay live across layers. The accelerator simulator can
//! then resolve SRAM pressure per layer instead of per kernel.
//!
//! All tensors are INT8 (1 byte/element), matching the aggregate tables.

use crate::kernel::{KernelDescriptor, KernelId};
use cordoba_carbon::units::Bytes;
use serde::{Deserialize, Serialize};

/// One neural-network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Layer {
    /// Standard 2-D convolution.
    Conv2d {
        /// Output feature-map height.
        out_h: u32,
        /// Output feature-map width.
        out_w: u32,
        /// Input channels.
        in_c: u32,
        /// Output channels.
        out_c: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride (input resolution is `out * stride`).
        stride: u32,
    },
    /// Depthwise 2-D convolution.
    DepthwiseConv2d {
        /// Output feature-map height.
        out_h: u32,
        /// Output feature-map width.
        out_w: u32,
        /// Channels.
        channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Fully connected layer.
    FullyConnected {
        /// Input features.
        inputs: u32,
        /// Output features.
        outputs: u32,
    },
}

impl Layer {
    /// Multiply-accumulate operations of this layer.
    #[must_use]
    pub fn macs(&self) -> f64 {
        match *self {
            Self::Conv2d {
                out_h,
                out_w,
                in_c,
                out_c,
                kernel,
                ..
            } => {
                f64::from(out_h)
                    * f64::from(out_w)
                    * f64::from(in_c)
                    * f64::from(out_c)
                    * f64::from(kernel * kernel)
            }
            Self::DepthwiseConv2d {
                out_h,
                out_w,
                channels,
                kernel,
                ..
            } => {
                f64::from(out_h)
                    * f64::from(out_w)
                    * f64::from(channels)
                    * f64::from(kernel * kernel)
            }
            Self::FullyConnected { inputs, outputs } => f64::from(inputs) * f64::from(outputs),
        }
    }

    /// Bytes of the layer's input activation tensor.
    #[must_use]
    pub fn input_bytes(&self) -> Bytes {
        match *self {
            Self::Conv2d {
                out_h,
                out_w,
                in_c,
                stride,
                ..
            } => {
                Bytes::new(f64::from(out_h * stride) * f64::from(out_w * stride) * f64::from(in_c))
            }
            Self::DepthwiseConv2d {
                out_h,
                out_w,
                channels,
                stride,
                ..
            } => Bytes::new(
                f64::from(out_h * stride) * f64::from(out_w * stride) * f64::from(channels),
            ),
            Self::FullyConnected { inputs, .. } => Bytes::new(f64::from(inputs)),
        }
    }

    /// Bytes of the layer's output activation tensor.
    #[must_use]
    pub fn output_bytes(&self) -> Bytes {
        match *self {
            Self::Conv2d {
                out_h,
                out_w,
                out_c,
                ..
            } => Bytes::new(f64::from(out_h) * f64::from(out_w) * f64::from(out_c)),
            Self::DepthwiseConv2d {
                out_h,
                out_w,
                channels,
                ..
            } => Bytes::new(f64::from(out_h) * f64::from(out_w) * f64::from(channels)),
            Self::FullyConnected { outputs, .. } => Bytes::new(f64::from(outputs)),
        }
    }

    /// Bytes of the layer's weights.
    #[must_use]
    pub fn weight_bytes(&self) -> Bytes {
        match *self {
            Self::Conv2d {
                in_c,
                out_c,
                kernel,
                ..
            } => Bytes::new(f64::from(in_c) * f64::from(out_c) * f64::from(kernel * kernel)),
            Self::DepthwiseConv2d {
                channels, kernel, ..
            } => Bytes::new(f64::from(channels) * f64::from(kernel * kernel)),
            Self::FullyConnected { inputs, outputs } => {
                Bytes::new(f64::from(inputs) * f64::from(outputs))
            }
        }
    }

    /// The layer's transient working set: input + output activations.
    #[must_use]
    pub fn working_set(&self) -> Bytes {
        self.input_bytes() + self.output_bytes()
    }
}

/// A kernel expressed as layers plus resident (cross-layer) buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayeredKernel {
    /// Which kernel this realizes.
    pub id: KernelId,
    /// The layer sequence.
    pub layers: Vec<Layer>,
    /// Buffers live across the whole network: burst frames, skip
    /// connections, reference features.
    pub resident: Bytes,
}

impl LayeredKernel {
    /// Total MACs per inference.
    #[must_use]
    pub fn total_macs(&self) -> f64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight bytes.
    #[must_use]
    pub fn total_weights(&self) -> Bytes {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Peak activation footprint: resident buffers plus the largest
    /// per-layer working set.
    #[must_use]
    pub fn peak_activation(&self) -> Bytes {
        let peak_layer = self
            .layers
            .iter()
            .map(|l| l.working_set())
            .fold(Bytes::ZERO, Bytes::max);
        self.resident + peak_layer
    }

    /// Collapses the layered model back into an aggregate descriptor.
    #[must_use]
    pub fn to_descriptor(&self) -> KernelDescriptor {
        KernelDescriptor {
            id: self.id,
            macs: self.total_macs(),
            activation: self.peak_activation(),
            weights: self.total_weights(),
        }
    }

    /// Builds the layered model for a kernel.
    ///
    /// Generator parameters (stage widths, stem strides, resident and
    /// auxiliary-weight constants) are calibrated so the collapsed totals
    /// track the aggregate [`KernelDescriptor`] table; the classifier
    /// recipes for the ResNets are the canonical architectures.
    #[must_use]
    pub fn for_kernel(id: KernelId) -> Self {
        match id {
            KernelId::ResNet18 => classifier(
                id,
                224,
                64,
                &[(2, 64), (2, 128), (2, 256), (2, 512)],
                false,
                1000,
                2.0,
                0.0,
            ),
            KernelId::ResNet50 => classifier(
                id,
                224,
                64,
                &[(3, 64), (4, 128), (6, 256), (3, 512)],
                true,
                1000,
                8.0,
                0.0,
            ),
            KernelId::ResNet152 => classifier(
                id,
                224,
                64,
                &[(3, 64), (8, 128), (36, 256), (3, 512)],
                true,
                1000,
                10.8,
                0.0,
            ),
            KernelId::GoogleNet => classifier(
                id,
                224,
                64,
                &[(2, 72), (2, 128), (2, 192), (2, 256)],
                false,
                1000,
                3.2,
                3.0,
            ),
            KernelId::MobileNetV2 => mobilenet(id, 224, 1.0, 1.1, 1.2),
            KernelId::EyeTracking => encoder_decoder(id, 320, 2, 34, 3, 7.0, 28.6),
            KernelId::DepthAgg3d => encoder_decoder(id, 384, 2, 38, 3, 21.0, 19.0),
            KernelId::Hrnet => encoder_decoder(id, 448, 2, 40, 3, 29.0, 26.5),
            KernelId::EmotionFan => classifier(
                id,
                256,
                64,
                &[(2, 80), (2, 150), (2, 235), (2, 300)],
                false,
                512,
                6.0,
                14.0,
            ),
            KernelId::HandJlp => encoder_decoder(id, 256, 2, 26, 3, 4.0, 11.5),
            KernelId::UNet => encoder_decoder(id, 512, 2, 34, 4, 36.0, 28.7),
            KernelId::Denoise => encoder_decoder(id, 448, 2, 34, 3, 26.0, 13.8),
            KernelId::Sr256 => super_resolution(id, 256),
            KernelId::Sr512 => super_resolution(id, 512),
            KernelId::Sr1024 => super_resolution(id, 1024),
        }
    }

    /// Layered models for all fifteen kernels.
    #[must_use]
    pub fn all() -> Vec<Self> {
        KernelId::ALL
            .iter()
            .map(|&id| Self::for_kernel(id))
            .collect()
    }
}

/// A ResNet-style classifier: strided 7x7 stem, four stages of residual
/// blocks (basic 2-conv or bottleneck 1-3-1 with 4x expansion) at falling
/// resolution, final FC. `resident_mib` models framework buffers;
/// `extra_weight_mib` models auxiliary heads/embeddings not expressed as
/// layers.
#[allow(clippy::too_many_arguments)]
fn classifier(
    id: KernelId,
    input: u32,
    stem_c: u32,
    stages: &[(u32, u32)],
    bottleneck: bool,
    classes: u32,
    resident_mib: f64,
    extra_weight_mib: f64,
) -> LayeredKernel {
    let mut layers = vec![Layer::Conv2d {
        out_h: input / 2,
        out_w: input / 2,
        in_c: 3,
        out_c: stem_c,
        kernel: 7,
        stride: 2,
    }];
    let mut res = input / 4;
    let mut in_c = stem_c;
    for (stage_idx, &(blocks, width)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let out_c = if bottleneck { width * 4 } else { width };
            // Stages after the first downsample on their first block.
            let stride = if b == 0 && stage_idx > 0 { 2 } else { 1 };
            let out_res = if stride == 2 { res / 2 } else { res };
            if bottleneck {
                layers.push(Layer::Conv2d {
                    out_h: res,
                    out_w: res,
                    in_c,
                    out_c: width,
                    kernel: 1,
                    stride: 1,
                });
                layers.push(Layer::Conv2d {
                    out_h: out_res,
                    out_w: out_res,
                    in_c: width,
                    out_c: width,
                    kernel: 3,
                    stride,
                });
                layers.push(Layer::Conv2d {
                    out_h: out_res,
                    out_w: out_res,
                    in_c: width,
                    out_c,
                    kernel: 1,
                    stride: 1,
                });
            } else {
                layers.push(Layer::Conv2d {
                    out_h: out_res,
                    out_w: out_res,
                    in_c,
                    out_c,
                    kernel: 3,
                    stride,
                });
                layers.push(Layer::Conv2d {
                    out_h: out_res,
                    out_w: out_res,
                    in_c: out_c,
                    out_c,
                    kernel: 3,
                    stride: 1,
                });
            }
            res = out_res;
            in_c = out_c;
        }
    }
    layers.push(Layer::FullyConnected {
        inputs: in_c,
        outputs: classes,
    });
    if extra_weight_mib > 0.0 {
        // Auxiliary heads / embeddings, folded into one FC.
        let params = (extra_weight_mib * 1024.0 * 1024.0) as u32;
        layers.push(Layer::FullyConnected {
            inputs: 1024,
            outputs: params / 1024,
        });
    }
    LayeredKernel {
        id,
        layers,
        resident: Bytes::from_mebibytes(resident_mib),
    }
}

/// A MobileNet-V2-style inverted-residual stack.
fn mobilenet(
    id: KernelId,
    input: u32,
    width: f64,
    resident_mib: f64,
    extra_weight_mib: f64,
) -> LayeredKernel {
    let c = |base: u32| ((f64::from(base) * width) as u32).max(8);
    let mut layers = vec![Layer::Conv2d {
        out_h: input / 2,
        out_w: input / 2,
        in_c: 3,
        out_c: c(32),
        kernel: 3,
        stride: 2,
    }];
    let mut res = input / 2;
    let mut in_c = c(32);
    for &(channels, stride, repeats) in &[
        (c(24), 2u32, 2u32),
        (c(32), 2, 3),
        (c(64), 2, 4),
        (c(96), 1, 3),
        (c(160), 2, 3),
    ] {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            let out_res = res / s;
            let expanded = in_c * 6;
            layers.push(Layer::Conv2d {
                out_h: res,
                out_w: res,
                in_c,
                out_c: expanded,
                kernel: 1,
                stride: 1,
            });
            layers.push(Layer::DepthwiseConv2d {
                out_h: out_res,
                out_w: out_res,
                channels: expanded,
                kernel: 3,
                stride: s,
            });
            layers.push(Layer::Conv2d {
                out_h: out_res,
                out_w: out_res,
                in_c: expanded,
                out_c: channels,
                kernel: 1,
                stride: 1,
            });
            res = out_res;
            in_c = channels;
        }
    }
    layers.push(Layer::FullyConnected {
        inputs: in_c * 7,
        outputs: 1000,
    });
    if extra_weight_mib > 0.0 {
        let params = (extra_weight_mib * 1024.0 * 1024.0) as u32;
        layers.push(Layer::FullyConnected {
            inputs: 1024,
            outputs: params / 1024,
        });
    }
    LayeredKernel {
        id,
        layers,
        resident: Bytes::from_mebibytes(resident_mib),
    }
}

/// A U-Net/SegNet-style encoder-decoder with skip connections: the
/// network processes at `input / stem_stride` internally; encoder feature
/// maps stay resident until the decoder consumes them.
/// `extra_weight_mib` folds in the deep narrow-resolution trunk layers not
/// modeled individually.
fn encoder_decoder(
    id: KernelId,
    input: u32,
    stem_stride: u32,
    base_c: u32,
    depth: u32,
    extra_resident_mib: f64,
    extra_weight_mib: f64,
) -> LayeredKernel {
    let c = |level: u32| base_c << level.min(3);
    let mut layers = Vec::new();
    let mut resident = Bytes::from_mebibytes(extra_resident_mib);
    // Stem (strided).
    layers.push(Layer::Conv2d {
        out_h: input / stem_stride,
        out_w: input / stem_stride,
        in_c: 3,
        out_c: base_c,
        kernel: 3,
        stride: stem_stride,
    });
    let mut res = input / stem_stride;
    let mut in_c = base_c;
    // Encoder.
    for level in 0..depth {
        let out_c = c(level);
        layers.push(Layer::Conv2d {
            out_h: res,
            out_w: res,
            in_c,
            out_c,
            kernel: 3,
            stride: 1,
        });
        layers.push(Layer::Conv2d {
            out_h: res / 2,
            out_w: res / 2,
            in_c: out_c,
            out_c,
            kernel: 3,
            stride: 2,
        });
        // Skip connection: the pre-downsample map stays live.
        resident += Bytes::new(f64::from(res) * f64::from(res) * f64::from(out_c));
        in_c = out_c;
        res /= 2;
    }
    // Decoder.
    for level in (0..depth).rev() {
        let out_c = c(level);
        res *= 2;
        layers.push(Layer::Conv2d {
            out_h: res,
            out_w: res,
            in_c: in_c + out_c, // concatenated skip
            out_c,
            kernel: 3,
            stride: 1,
        });
        in_c = out_c;
    }
    // Output head at full input resolution.
    layers.push(Layer::Conv2d {
        out_h: input,
        out_w: input,
        in_c,
        out_c: 3,
        kernel: 3,
        stride: 1,
    });
    if extra_weight_mib > 0.0 {
        let params = (extra_weight_mib * 1024.0 * 1024.0) as u32;
        layers.push(Layer::FullyConnected {
            inputs: 1024,
            outputs: params / 1024,
        });
    }
    LayeredKernel {
        id,
        layers,
        resident,
    }
}

/// A burst super-resolution network \[5\]: several input frames are aligned
/// and fused, so burst feature buffers stay resident while a
/// constant-resolution conv body runs.
fn super_resolution(id: KernelId, res: u32) -> LayeredKernel {
    let channels = 24u32;
    let body_layers = 11usize;
    let burst_frames = 8.0;
    let mut layers = vec![Layer::Conv2d {
        out_h: res,
        out_w: res,
        in_c: 3,
        out_c: channels,
        kernel: 3,
        stride: 1,
    }];
    for _ in 0..body_layers {
        layers.push(Layer::Conv2d {
            out_h: res,
            out_w: res,
            in_c: channels,
            out_c: channels,
            kernel: 3,
            stride: 1,
        });
    }
    layers.push(Layer::Conv2d {
        out_h: res,
        out_w: res,
        in_c: channels,
        out_c: 3,
        kernel: 3,
        stride: 1,
    });
    // Frame alignment / fusion network weights (resolution-independent),
    // folded into one FC.
    layers.push(Layer::FullyConnected {
        inputs: 1024,
        outputs: (11.9 * 1024.0) as u32,
    });
    // Burst frame features resident across the body.
    let resident = Bytes::new(f64::from(res) * f64::from(res) * f64::from(channels) * burst_frames);
    LayeredKernel {
        id,
        layers,
        resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_arithmetic() {
        let conv = Layer::Conv2d {
            out_h: 56,
            out_w: 56,
            in_c: 64,
            out_c: 128,
            kernel: 3,
            stride: 2,
        };
        assert!((conv.macs() - 56.0 * 56.0 * 64.0 * 128.0 * 9.0).abs() < 1.0);
        assert_eq!(conv.input_bytes(), Bytes::new(112.0 * 112.0 * 64.0));
        assert_eq!(conv.output_bytes(), Bytes::new(56.0 * 56.0 * 128.0));
        assert_eq!(conv.weight_bytes(), Bytes::new(64.0 * 128.0 * 9.0));
        assert_eq!(conv.working_set(), conv.input_bytes() + conv.output_bytes());

        let dw = Layer::DepthwiseConv2d {
            out_h: 28,
            out_w: 28,
            channels: 192,
            kernel: 3,
            stride: 1,
        };
        assert!((dw.macs() - 28.0 * 28.0 * 192.0 * 9.0).abs() < 1.0);
        assert_eq!(dw.weight_bytes(), Bytes::new(192.0 * 9.0));

        let fc = Layer::FullyConnected {
            inputs: 512,
            outputs: 1000,
        };
        assert!((fc.macs() - 512_000.0).abs() < 1.0);
        assert_eq!(fc.weight_bytes(), Bytes::new(512_000.0));
        assert_eq!(fc.working_set(), Bytes::new(1512.0));
    }

    #[test]
    fn every_kernel_has_a_layered_model() {
        let all = LayeredKernel::all();
        assert_eq!(all.len(), 15);
        for lk in &all {
            assert!(!lk.layers.is_empty(), "{:?}", lk.id);
            assert!(lk.total_macs() > 0.0);
            assert!(lk.total_weights().is_positive());
            assert!(lk.peak_activation().is_positive());
        }
    }

    #[test]
    fn layered_totals_track_aggregate_descriptors() {
        // The layered generators are calibrated to the aggregate table;
        // every axis must land within 1.4x.
        for lk in LayeredKernel::all() {
            let agg = lk.id.descriptor();
            let derived = lk.to_descriptor();
            let check = |name: &str, a: f64, b: f64, tol: f64| {
                let ratio = (a / b).max(b / a);
                assert!(
                    ratio < tol,
                    "{:?} {name}: layered {a:.3e} vs aggregate {b:.3e} ({ratio:.2}x)",
                    lk.id
                );
            };
            check("macs", derived.macs, agg.macs, 1.4);
            check(
                "activation",
                derived.activation.value(),
                agg.activation.value(),
                1.4,
            );
            check("weights", derived.weights.value(), agg.weights.value(), 1.4);
        }
    }

    #[test]
    fn sr_resolution_scaling_is_quadratic_in_layers_too() {
        let s256 = LayeredKernel::for_kernel(KernelId::Sr256);
        let s1024 = LayeredKernel::for_kernel(KernelId::Sr1024);
        assert!((s1024.total_macs() / s256.total_macs() - 16.0).abs() < 0.1);
        assert!(
            (s1024.peak_activation().value() / s256.peak_activation().value() - 16.0).abs() < 0.5
        );
        // Weights are resolution-independent.
        assert!((s1024.total_weights().value() / s256.total_weights().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn encoder_decoder_keeps_skip_connections_resident() {
        let unet = LayeredKernel::for_kernel(KernelId::UNet);
        assert!(unet.resident.is_positive());
        // Resident buffers dominate the peak for skip-heavy networks.
        assert!(unet.resident.value() > 0.3 * unet.peak_activation().value());
    }

    #[test]
    fn classifier_activations_shrink_with_depth() {
        let rn = LayeredKernel::for_kernel(KernelId::ResNet18);
        let first = rn.layers.first().unwrap().working_set();
        let last_conv = rn
            .layers
            .iter()
            .rev()
            .find(|l| matches!(l, Layer::Conv2d { .. }))
            .unwrap()
            .working_set();
        assert!(first.value() > last_conv.value());
    }

    #[test]
    fn mobilenet_is_mac_lean_but_layer_rich() {
        let mn = LayeredKernel::for_kernel(KernelId::MobileNetV2);
        let rn = LayeredKernel::for_kernel(KernelId::ResNet18);
        assert!(mn.total_macs() < rn.total_macs());
        assert!(mn.layers.len() > rn.layers.len());
        assert!(mn
            .layers
            .iter()
            .any(|l| matches!(l, Layer::DepthwiseConv2d { .. })));
    }
}
