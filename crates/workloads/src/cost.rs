//! Task delay and energy evaluation (paper eq. IV.2 and IV.4).
//!
//! Given per-kernel costs measured on some hardware target (from the
//! accelerator simulator or a CPU model), a task's delay is
//! `D_T = Σ_K N_{T,K} · D_K` and its energy is
//! `E_T = Σ_K N_{T,K} · P_dyn,K · D_K + P_leak · D_T`.

use crate::kernel::KernelId;
use crate::task::Task;
use cordoba_carbon::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost of one kernel invocation on some hardware target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Execution time of one invocation (`D_K`).
    pub delay: Seconds,
    /// Average dynamic power while executing (`P_dyn,K`).
    pub dynamic_power: Watts,
}

impl KernelCost {
    /// Creates a cost entry.
    #[must_use]
    pub fn new(delay: Seconds, dynamic_power: Watts) -> Self {
        Self {
            delay,
            dynamic_power,
        }
    }

    /// Dynamic energy of one invocation.
    #[must_use]
    pub fn dynamic_energy(&self) -> Joules {
        self.dynamic_power * self.delay
    }
}

/// A table of per-kernel costs on one hardware target.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostTable {
    costs: BTreeMap<KernelId, KernelCost>,
    /// Hardware leakage power, applied for the full task duration.
    pub leakage_power: Watts,
}

impl CostTable {
    /// Creates an empty table with the given leakage power.
    #[must_use]
    pub fn new(leakage_power: Watts) -> Self {
        Self {
            costs: BTreeMap::new(),
            leakage_power,
        }
    }

    /// Inserts (or replaces) the cost of a kernel, returning `self` for
    /// chaining.
    pub fn with(mut self, kernel: KernelId, cost: KernelCost) -> Self {
        self.costs.insert(kernel, cost);
        self
    }

    /// Inserts (or replaces) the cost of a kernel.
    pub fn insert(&mut self, kernel: KernelId, cost: KernelCost) -> Option<KernelCost> {
        self.costs.insert(kernel, cost)
    }

    /// Looks up a kernel's cost.
    #[must_use]
    pub fn get(&self, kernel: KernelId) -> Option<KernelCost> {
        self.costs.get(&kernel).copied()
    }

    /// Number of kernels with known costs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// `true` when no costs are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Task delay `D_T = Σ N_{T,K} · D_K` (eq. IV.2).
    ///
    /// # Errors
    ///
    /// Returns [`MissingKernel`] if the task references a kernel this table
    /// has no cost for.
    pub fn task_delay(&self, task: &Task) -> Result<Seconds, MissingKernel> {
        let mut total = Seconds::ZERO;
        for (kernel, calls) in task.entries() {
            let cost = self.get(kernel).ok_or(MissingKernel { kernel })?;
            total += cost.delay * calls;
        }
        Ok(total)
    }

    /// Task energy `E_T = Σ N_{T,K} · P_dyn,K · D_K + P_leak · D_T`
    /// (eq. IV.4).
    ///
    /// # Errors
    ///
    /// Returns [`MissingKernel`] if the task references a kernel this table
    /// has no cost for.
    pub fn task_energy(&self, task: &Task) -> Result<Joules, MissingKernel> {
        let mut dynamic = Joules::ZERO;
        for (kernel, calls) in task.entries() {
            let cost = self.get(kernel).ok_or(MissingKernel { kernel })?;
            dynamic += cost.dynamic_energy() * calls;
        }
        let delay = self.task_delay(task)?;
        Ok(dynamic + self.leakage_power * delay)
    }

    /// Average power over a task execution (`E_T / D_T`).
    ///
    /// # Errors
    ///
    /// Returns [`MissingKernel`] if the task references an unknown kernel.
    pub fn task_power(&self, task: &Task) -> Result<Watts, MissingKernel> {
        Ok(self.task_energy(task)? / self.task_delay(task)?)
    }
}

impl FromIterator<(KernelId, KernelCost)> for CostTable {
    fn from_iter<I: IntoIterator<Item = (KernelId, KernelCost)>>(iter: I) -> Self {
        Self {
            costs: iter.into_iter().collect(),
            leakage_power: Watts::ZERO,
        }
    }
}

impl Extend<(KernelId, KernelCost)> for CostTable {
    fn extend<I: IntoIterator<Item = (KernelId, KernelCost)>>(&mut self, iter: I) {
        self.costs.extend(iter);
    }
}

/// Error: a task references a kernel with no recorded cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingKernel {
    /// The kernel that was missing.
    pub kernel: KernelId,
}

impl std::fmt::Display for MissingKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no cost recorded for kernel {}", self.kernel)
    }
}

impl std::error::Error for MissingKernel {}

/// The multi-task matrix form of eq. IV.2/IV.4: evaluates delay and energy
/// vectors for a set of tasks over a shared cost table.
///
/// # Examples
///
/// ```
/// use cordoba_workloads::cost::{CostTable, KernelCost, TaskVector};
/// use cordoba_workloads::kernel::KernelId;
/// use cordoba_workloads::task::Task;
/// use cordoba_carbon::units::{Seconds, Watts};
///
/// let table = CostTable::new(Watts::new(0.1))
///     .with(KernelId::ResNet18, KernelCost::new(Seconds::new(0.01), Watts::new(2.0)));
/// let tasks = vec![Task::new("t", vec![(KernelId::ResNet18, 3.0)])?];
/// let vec = TaskVector::evaluate(&tasks, &table)?;
/// assert!((vec.total_delay().value() - 0.03).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskVector {
    delays: Vec<Seconds>,
    energies: Vec<Joules>,
}

impl TaskVector {
    /// Evaluates the delay and energy of every task.
    ///
    /// # Errors
    ///
    /// Returns [`MissingKernel`] if any task references an unknown kernel.
    pub fn evaluate(tasks: &[Task], table: &CostTable) -> Result<Self, MissingKernel> {
        let mut delays = Vec::with_capacity(tasks.len());
        let mut energies = Vec::with_capacity(tasks.len());
        for task in tasks {
            delays.push(table.task_delay(task)?);
            energies.push(table.task_energy(task)?);
        }
        Ok(Self { delays, energies })
    }

    /// Per-task delays (`D` of eq. IV.2).
    #[must_use]
    pub fn delays(&self) -> &[Seconds] {
        &self.delays
    }

    /// Per-task energies (`E` of eq. IV.4).
    #[must_use]
    pub fn energies(&self) -> &[Joules] {
        &self.energies
    }

    /// `1ᵀ D` — the sum of all task delays.
    #[must_use]
    pub fn total_delay(&self) -> Seconds {
        self.delays.iter().sum()
    }

    /// `1ᵀ E` — the sum of all task energies (feeds eq. IV.6).
    #[must_use]
    pub fn total_energy(&self) -> Joules {
        self.energies.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CostTable {
        CostTable::new(Watts::new(0.5))
            .with(
                KernelId::ResNet18,
                KernelCost::new(Seconds::new(0.010), Watts::new(2.0)),
            )
            .with(
                KernelId::Sr512,
                KernelCost::new(Seconds::new(0.040), Watts::new(4.0)),
            )
    }

    #[test]
    fn delay_is_weighted_sum() {
        let t = Task::new(
            "mix",
            vec![(KernelId::ResNet18, 2.0), (KernelId::Sr512, 1.0)],
        )
        .unwrap();
        let d = table().task_delay(&t).unwrap();
        assert!((d.value() - (2.0 * 0.010 + 0.040)).abs() < 1e-12);
    }

    #[test]
    fn energy_adds_leakage_over_task_delay() {
        let t = Task::new(
            "mix",
            vec![(KernelId::ResNet18, 2.0), (KernelId::Sr512, 1.0)],
        )
        .unwrap();
        let tbl = table();
        let e = tbl.task_energy(&t).unwrap();
        let dynamic = 2.0 * 2.0 * 0.010 + 4.0 * 0.040;
        let leak = 0.5 * (2.0 * 0.010 + 0.040);
        assert!((e.value() - (dynamic + leak)).abs() < 1e-12);
        let p = tbl.task_power(&t).unwrap();
        assert!((p.value() - e.value() / 0.06).abs() < 1e-9);
    }

    #[test]
    fn missing_kernel_is_an_error() {
        let t = Task::uniform("u", [KernelId::UNet]).unwrap();
        let err = table().task_delay(&t).unwrap_err();
        assert_eq!(err.kernel, KernelId::UNet);
        assert!(err.to_string().contains("UNet"));
        assert!(table().task_energy(&t).is_err());
    }

    #[test]
    fn task_vector_matches_scalar_path() {
        let tasks = vec![
            Task::uniform("a", [KernelId::ResNet18]).unwrap(),
            Task::new("b", vec![(KernelId::Sr512, 3.0)]).unwrap(),
        ];
        let tbl = table();
        let v = TaskVector::evaluate(&tasks, &tbl).unwrap();
        assert_eq!(v.delays().len(), 2);
        for (i, task) in tasks.iter().enumerate() {
            assert_eq!(v.delays()[i], tbl.task_delay(task).unwrap());
            assert_eq!(v.energies()[i], tbl.task_energy(task).unwrap());
        }
        assert_eq!(v.total_delay(), v.delays().iter().copied().sum());
        assert_eq!(v.total_energy(), v.energies().iter().copied().sum());
    }

    #[test]
    fn cost_table_collection_traits() {
        let mut t: CostTable = [(
            KernelId::UNet,
            KernelCost::new(Seconds::new(1.0), Watts::new(1.0)),
        )]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.extend([(
            KernelId::Denoise,
            KernelCost::new(Seconds::new(2.0), Watts::new(1.0)),
        )]);
        assert_eq!(t.len(), 2);
        let prev = t.insert(
            KernelId::UNet,
            KernelCost::new(Seconds::new(3.0), Watts::new(1.0)),
        );
        assert!(prev.is_some());
        assert_eq!(t.get(KernelId::UNet).unwrap().delay, Seconds::new(3.0));
        assert!(CostTable::default().is_empty());
    }

    #[test]
    fn dynamic_energy_of_cost() {
        let c = KernelCost::new(Seconds::new(0.5), Watts::new(3.0));
        assert_eq!(c.dynamic_energy(), Joules::new(1.5));
    }
}
