//! # cordoba-workloads
//!
//! Workload substrate for the CORDOBA framework: the fifteen AI/XR kernels
//! and five evaluation tasks of the paper's §V / Table IV, plus the
//! vectorized task-cost equations (eq. IV.2, IV.4).
//!
//! * [`kernel`] — per-kernel compute/activation/weight descriptors;
//! * [`task`] — tasks as `N_{T,K}` call-count rows, with the Table IV suite;
//! * [`cost`] — task delay/energy evaluation over per-kernel cost tables;
//! * [`mixes`] — randomized workload mixes for uncertainty stress tests.
//!
//! # Example
//!
//! ```
//! use cordoba_workloads::prelude::*;
//! use cordoba_carbon::units::{Seconds, Watts};
//!
//! // Cost every kernel at a flat 10 ms / 2 W (a real table comes from the
//! // accelerator simulator in `cordoba-accel`).
//! let mut table = CostTable::new(Watts::new(0.2));
//! for k in KernelId::ALL {
//!     table.insert(k, KernelCost::new(Seconds::new(0.01), Watts::new(2.0)));
//! }
//! let task = Task::xr_10_kernels();
//! let delay = table.task_delay(&task)?;
//! assert!((delay.value() - 0.1).abs() < 1e-12);
//! # Ok::<(), cordoba_workloads::cost::MissingKernel>(())
//! ```

pub mod cost;
pub mod kernel;
pub mod layers;
pub mod mixes;
pub mod task;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::cost::{CostTable, KernelCost, MissingKernel, TaskVector};
    pub use crate::kernel::{KernelDescriptor, KernelId};
    pub use crate::layers::{Layer, LayeredKernel};
    pub use crate::mixes::{perturb_task, random_task};
    pub use crate::task::Task;
}
