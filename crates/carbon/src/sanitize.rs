//! Trace sanitization: turn a messy real-world carbon-intensity feed into a
//! valid [`TraceCi`] plus a repair report.
//!
//! Real grid-intensity feeds (ElectricityMaps, WattTime, PGLib-CO2-style
//! datasets) routinely contain out-of-order rows, duplicated timestamps,
//! missing intervals, sensor glitches (NaN, negative readings), and
//! transient spikes. [`TraceCi::new`] deliberately rejects all of those; the
//! sanitizer in this module repairs what it can, *counts every repair* in a
//! [`SanitizeReport`], and only fails when nothing salvageable remains.
//!
//! The pipeline, in order:
//!
//! 1. drop samples with non-finite timestamps or intensities;
//! 2. drop (or, under [`SanitizePolicy::clamp_negative`], clamp to zero)
//!    negative intensities;
//! 3. sort by timestamp (noting whether the input was out of order);
//! 4. merge duplicate timestamps into their mean intensity;
//! 5. optionally clip outliers beyond `outlier_sigma` robust standard
//!    deviations (median ± k·1.4826·MAD);
//! 6. optionally detect coverage gaps longer than `max_gap`.

use crate::error::CarbonError;
use crate::intensity::TraceCi;
use crate::units::{count_f64, CarbonIntensity, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scale factor turning a median absolute deviation into a consistent
/// estimate of the standard deviation for normally distributed data.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Repair policy for [`TraceCi::sanitize`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizePolicy {
    /// Clamp negative intensities to zero instead of dropping the sample.
    pub clamp_negative: bool,
    /// Clip intensities further than this many robust standard deviations
    /// from the median back to the boundary. `None` disables clipping.
    pub outlier_sigma: Option<f64>,
    /// Report a coverage gap wherever consecutive samples are further apart
    /// than this. `None` disables gap detection.
    pub max_gap: Option<Seconds>,
}

impl SanitizePolicy {
    /// The permissive default: repair everything repairable, no outlier
    /// clipping, no gap policy.
    #[must_use]
    pub fn lenient() -> Self {
        Self {
            clamp_negative: true,
            outlier_sigma: None,
            max_gap: None,
        }
    }

    /// A production-feed policy: clamp negatives, clip beyond 6 robust
    /// sigmas, flag gaps longer than 2 hours (typical feed cadence is
    /// 5-60 minutes).
    #[must_use]
    pub fn production() -> Self {
        Self {
            clamp_negative: true,
            outlier_sigma: Some(6.0),
            max_gap: Some(Seconds::from_hours(2.0)),
        }
    }

    /// Sets the outlier threshold.
    #[must_use]
    pub fn with_outlier_sigma(mut self, sigma: f64) -> Self {
        self.outlier_sigma = Some(sigma);
        self
    }

    /// Sets the gap-detection threshold.
    #[must_use]
    pub fn with_max_gap(mut self, gap: Seconds) -> Self {
        self.max_gap = Some(gap);
        self
    }
}

impl Default for SanitizePolicy {
    fn default() -> Self {
        Self::lenient()
    }
}

/// One detected coverage gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gap {
    /// Timestamp of the last sample before the gap.
    pub start: Seconds,
    /// Length of the gap.
    pub length: Seconds,
}

/// Counts of every repair the sanitizer performed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SanitizeReport {
    /// Samples in the raw input.
    pub input_samples: usize,
    /// Samples in the sanitized trace.
    pub output_samples: usize,
    /// Samples dropped for NaN/infinite timestamps or intensities.
    pub dropped_non_finite: usize,
    /// Samples dropped for negative intensities (policy `clamp_negative`
    /// off).
    pub dropped_negative: usize,
    /// Negative intensities clamped to zero (policy `clamp_negative` on).
    pub clamped_negative: usize,
    /// Duplicate-timestamp samples merged away.
    pub deduplicated: usize,
    /// `true` when the input needed re-sorting.
    pub reordered: bool,
    /// Intensities clipped back to the outlier boundary.
    pub clipped_outliers: usize,
    /// Coverage gaps longer than the policy's `max_gap`.
    pub gaps: Vec<Gap>,
}

impl SanitizeReport {
    /// `true` when the input was already a valid trace needing no repair.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repairs() == 0 && !self.reordered && self.gaps.is_empty()
    }

    /// Total number of samples repaired or removed.
    #[must_use]
    pub fn repairs(&self) -> usize {
        self.dropped_non_finite
            + self.dropped_negative
            + self.clamped_negative
            + self.deduplicated
            + self.clipped_outliers
    }
}

impl fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sanitized {} -> {} samples",
            self.input_samples, self.output_samples
        )?;
        writeln!(f, "  non-finite dropped: {}", self.dropped_non_finite)?;
        writeln!(
            f,
            "  negative:           {} dropped, {} clamped to zero",
            self.dropped_negative, self.clamped_negative
        )?;
        writeln!(f, "  duplicates merged:  {}", self.deduplicated)?;
        writeln!(
            f,
            "  out of order:       {}",
            if self.reordered {
                "yes (re-sorted)"
            } else {
                "no"
            }
        )?;
        writeln!(f, "  outliers clipped:   {}", self.clipped_outliers)?;
        write!(f, "  coverage gaps:      {}", self.gaps.len())?;
        for gap in &self.gaps {
            write!(
                f,
                "\n    at {:.0} s lasting {:.0} s",
                gap.start.value(),
                gap.length.value()
            )?;
        }
        Ok(())
    }
}

/// Median of a sorted slice; `None` when empty.
fn median_of_sorted(sorted: &[f64]) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted.get(mid).copied()
    } else {
        match (sorted.get(mid - 1), sorted.get(mid)) {
            (Some(a), Some(b)) => Some((a + b) / 2.0),
            _ => None,
        }
    }
}

impl TraceCi {
    /// Repairs a messy sample list into a valid trace, reporting every
    /// repair, instead of rejecting imperfect input outright the way
    /// [`TraceCi::new`] does.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::Empty`] when no valid sample survives
    /// sanitization (every row was non-finite, or negative under a dropping
    /// policy).
    pub fn sanitize(
        samples: Vec<(Seconds, CarbonIntensity)>,
        policy: &SanitizePolicy,
    ) -> Result<(Self, SanitizeReport), CarbonError> {
        let _span = cordoba_obs::span_with(
            "carbon/sanitize",
            "samples",
            u64::try_from(samples.len()).unwrap_or(u64::MAX),
        );
        let mut report = SanitizeReport {
            input_samples: samples.len(),
            ..SanitizeReport::default()
        };

        // 1-2: drop non-finite rows, handle negatives.
        let mut clean: Vec<(Seconds, CarbonIntensity)> = Vec::with_capacity(samples.len());
        for (t, ci) in samples {
            if !t.is_finite() || !ci.is_finite() {
                report.dropped_non_finite += 1;
            } else if ci.value() < 0.0 {
                if policy.clamp_negative {
                    report.clamped_negative += 1;
                    clean.push((t, CarbonIntensity::ZERO));
                } else {
                    report.dropped_negative += 1;
                }
            } else {
                clean.push((t, ci));
            }
        }

        // 3: sort by time.
        let sorted_already = clean.windows(2).all(|w| match (w.first(), w.get(1)) {
            (Some(a), Some(b)) => a.0.value() <= b.0.value(),
            _ => true,
        });
        if !sorted_already {
            report.reordered = true;
            clean.sort_by(|a, b| a.0.value().total_cmp(&b.0.value()));
        }

        // 4: merge duplicate timestamps into their mean.
        let mut merged: Vec<(Seconds, CarbonIntensity)> = Vec::with_capacity(clean.len());
        let mut i = 0;
        while i < clean.len() {
            let Some(&(t, first_ci)) = clean.get(i) else {
                break;
            };
            let mut sum = first_ci;
            let mut run = 1usize;
            // Duplicate timestamps are exact repeats of the same feed row,
            // so bitwise equality is the intended test.
            while clean
                .get(i + run)
                .is_some_and(|&(t2, _)| t2.value() == t.value())
            {
                if let Some(&(_, ci2)) = clean.get(i + run) {
                    sum += ci2;
                }
                run += 1;
            }
            merged.push((t, sum / count_f64(run)));
            report.deduplicated += run - 1;
            i += run;
        }

        // 5: clip outliers against median ± k·1.4826·MAD.
        if let Some(sigma) = policy.outlier_sigma {
            if sigma.is_finite() && sigma > 0.0 && merged.len() >= 3 {
                let mut values: Vec<f64> = merged.iter().map(|&(_, ci)| ci.value()).collect();
                values.sort_by(f64::total_cmp);
                if let Some(median) = median_of_sorted(&values) {
                    let mut deviations: Vec<f64> =
                        values.iter().map(|v| (v - median).abs()).collect();
                    deviations.sort_by(f64::total_cmp);
                    let spread = median_of_sorted(&deviations).unwrap_or(0.0) * MAD_TO_SIGMA;
                    if spread > 0.0 {
                        let lo = CarbonIntensity::new((median - sigma * spread).max(0.0));
                        let hi = CarbonIntensity::new(median + sigma * spread);
                        for (_, ci) in &mut merged {
                            let clipped = ci.clamp(lo, hi);
                            if clipped != *ci {
                                report.clipped_outliers += 1;
                                *ci = clipped;
                            }
                        }
                    }
                }
            }
        }

        // 6: gap detection.
        if let Some(max_gap) = policy.max_gap {
            if max_gap.is_positive() {
                for w in merged.windows(2) {
                    if let (Some(&(t0, _)), Some(&(t1, _))) = (w.first(), w.get(1)) {
                        let dt = t1 - t0;
                        if dt > max_gap {
                            report.gaps.push(Gap {
                                start: t0,
                                length: dt,
                            });
                        }
                    }
                }
            }
        }

        report.output_samples = merged.len();
        if !report.is_clean() {
            let dropped = report.dropped_non_finite + report.dropped_negative;
            cordoba_obs::record(&cordoba_obs::Event::SanitizeRejection {
                dropped: u64::try_from(dropped).unwrap_or(u64::MAX),
                repaired: u64::try_from(report.repairs() - dropped).unwrap_or(u64::MAX),
            });
        }
        let trace = Self::new(merged)?;
        Ok((trace, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::CiSource;

    fn s(t: f64, ci: f64) -> (Seconds, CarbonIntensity) {
        (Seconds::new(t), CarbonIntensity::new(ci))
    }

    #[test]
    fn clean_trace_passes_untouched() {
        let raw = vec![s(0.0, 100.0), s(10.0, 200.0), s(20.0, 150.0)];
        let (trace, report) = TraceCi::sanitize(raw, &SanitizePolicy::lenient()).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(report.is_clean());
        assert_eq!(report.repairs(), 0);
        assert_eq!(report.input_samples, 3);
        assert_eq!(report.output_samples, 3);
    }

    #[test]
    fn drops_non_finite_samples() {
        let raw = vec![
            s(0.0, 100.0),
            s(10.0, f64::NAN),
            s(f64::INFINITY, 50.0),
            s(20.0, 150.0),
        ];
        let (trace, report) = TraceCi::sanitize(raw, &SanitizePolicy::lenient()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(report.dropped_non_finite, 2);
    }

    #[test]
    fn negative_policy_clamps_or_drops() {
        let raw = vec![s(0.0, 100.0), s(10.0, -5.0)];
        let clamping = SanitizePolicy::lenient();
        let (trace, report) = TraceCi::sanitize(raw.clone(), &clamping).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(report.clamped_negative, 1);
        assert_eq!(trace.at(Seconds::new(10.0)), CarbonIntensity::ZERO);

        let dropping = SanitizePolicy {
            clamp_negative: false,
            ..SanitizePolicy::lenient()
        };
        let (trace, report) = TraceCi::sanitize(raw, &dropping).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(report.dropped_negative, 1);
    }

    #[test]
    fn sorts_and_merges_duplicates() {
        let raw = vec![s(20.0, 300.0), s(0.0, 100.0), s(20.0, 100.0), s(10.0, 50.0)];
        let (trace, report) = TraceCi::sanitize(raw, &SanitizePolicy::lenient()).unwrap();
        assert!(report.reordered);
        assert_eq!(report.deduplicated, 1);
        assert_eq!(trace.len(), 3);
        // Duplicates at t=20 merged into their mean.
        assert_eq!(trace.at(Seconds::new(20.0)), CarbonIntensity::new(200.0));
    }

    #[test]
    fn clips_spikes_but_keeps_normal_variation() {
        let mut raw: Vec<_> = (0..50)
            .map(|i| s(f64::from(i), 400.0 + f64::from(i % 5)))
            .collect();
        raw.push(s(60.0, 1e9)); // sensor spike
        let policy = SanitizePolicy::lenient().with_outlier_sigma(6.0);
        let (trace, report) = TraceCi::sanitize(raw, &policy).unwrap();
        assert_eq!(report.clipped_outliers, 1);
        assert!(trace.at(Seconds::new(60.0)).value() < 1000.0);
    }

    #[test]
    fn constant_trace_is_never_clipped() {
        let raw: Vec<_> = (0..10).map(|i| s(f64::from(i), 380.0)).collect();
        let policy = SanitizePolicy::lenient().with_outlier_sigma(3.0);
        let (_, report) = TraceCi::sanitize(raw, &policy).unwrap();
        assert_eq!(report.clipped_outliers, 0);
    }

    #[test]
    fn detects_gaps() {
        let raw = vec![s(0.0, 100.0), s(10.0, 100.0), s(5000.0, 100.0)];
        let policy = SanitizePolicy::lenient().with_max_gap(Seconds::new(60.0));
        let (_, report) = TraceCi::sanitize(raw, &policy).unwrap();
        assert_eq!(report.gaps.len(), 1);
        assert_eq!(report.gaps[0].start, Seconds::new(10.0));
        assert_eq!(report.gaps[0].length, Seconds::new(4990.0));
        assert!(!report.is_clean());
    }

    #[test]
    fn all_invalid_input_errors() {
        let raw = vec![s(0.0, f64::NAN), s(1.0, f64::INFINITY)];
        let err = TraceCi::sanitize(raw, &SanitizePolicy::lenient()).unwrap_err();
        assert!(matches!(err, CarbonError::Empty { .. }));
        assert!(TraceCi::sanitize(vec![], &SanitizePolicy::lenient()).is_err());
    }

    #[test]
    fn report_display_mentions_each_repair() {
        let raw = vec![s(5.0, -1.0), s(0.0, f64::NAN), s(1.0, 10.0), s(1.0, 20.0)];
        let (_, report) = TraceCi::sanitize(raw, &SanitizePolicy::lenient()).unwrap();
        let text = report.to_string();
        assert!(text.contains("non-finite dropped: 1"));
        assert!(text.contains("clamped to zero"));
        assert!(text.contains("duplicates merged:  1"));
    }

    #[test]
    fn production_policy_has_gap_and_outlier_rules() {
        let p = SanitizePolicy::production();
        assert!(p.clamp_negative);
        assert!(p.outlier_sigma.is_some());
        assert!(p.max_gap.is_some());
    }
}
