//! Operational-time accounting and embodied-carbon amortization
//! (paper eq. IV.3 and the Table III lifetime rows).
//!
//! The paper amortizes embodied carbon over *operational time* — the time
//! the system actually consumes energy — not over wall-clock lifetime:
//! `C_embodied(task) = (Σ D / (t_life - D_off)) * C_embodied(system)`.

use crate::error::CarbonError;
use crate::units::{GramsCo2e, Seconds};
use serde::{Deserialize, Serialize};

/// How a system is used across its deployed lifetime.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::lifetime::UsageProfile;
/// use cordoba_carbon::units::Seconds;
///
/// // The paper's VR headset: 5-year lifetime, 2 active hours per day.
/// let usage = UsageProfile::new(Seconds::from_years(5.0), 2.0 / 24.0)?;
/// let op = usage.operational_time();
/// assert!((op.to_hours() - 5.0 * 365.0 * 2.0).abs() < 1.0);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    lifetime: Seconds,
    active_fraction: f64,
}

impl UsageProfile {
    /// Creates a usage profile from total lifetime and the fraction of it
    /// spent operational (consuming energy).
    ///
    /// # Errors
    ///
    /// Returns an error if the lifetime is not positive or
    /// `active_fraction` is outside `(0, 1]`.
    pub fn new(lifetime: Seconds, active_fraction: f64) -> Result<Self, CarbonError> {
        CarbonError::require_positive("lifetime", lifetime.value())?;
        CarbonError::require_in_range("active fraction", active_fraction, 1e-12, 1.0)?;
        Ok(Self {
            lifetime,
            active_fraction,
        })
    }

    /// Creates a profile from lifetime in years and active hours per day
    /// (the form used throughout the paper's Table III).
    ///
    /// # Errors
    ///
    /// Returns an error on non-positive years or hours outside `(0, 24]`.
    pub fn from_daily_hours(years: f64, active_hours_per_day: f64) -> Result<Self, CarbonError> {
        CarbonError::require_positive("lifetime years", years)?;
        CarbonError::require_in_range("active hours per day", active_hours_per_day, 1e-9, 24.0)?;
        Self::new(Seconds::from_years(years), active_hours_per_day / 24.0)
    }

    /// Total deployed lifetime (`t_life`).
    #[must_use]
    pub fn lifetime(&self) -> Seconds {
        self.lifetime
    }

    /// Fraction of the lifetime the system is active, in `(0, 1]`.
    #[must_use]
    pub fn active_fraction(&self) -> f64 {
        self.active_fraction
    }

    /// Time the system is off or fully idle (`D_off`).
    #[must_use]
    pub fn off_time(&self) -> Seconds {
        self.lifetime * (1.0 - self.active_fraction)
    }

    /// Operational time: `t_life - D_off`, the denominator of eq. IV.3.
    #[must_use]
    pub fn operational_time(&self) -> Seconds {
        self.lifetime * self.active_fraction
    }

    /// Fraction of a system's embodied carbon attributable to a task that
    /// occupies `task_time` of operational time (the `Σ D / (t_life - D_off)`
    /// factor of eq. IV.3).
    ///
    /// Values above 1 are possible when the requested task time exceeds the
    /// operational lifetime — callers typically treat that as "more than one
    /// device is needed".
    #[must_use]
    pub fn amortization_factor(&self, task_time: Seconds) -> f64 {
        task_time.value() / self.operational_time().value()
    }

    /// The share of system embodied carbon charged to a task (eq. IV.3 with
    /// the component-selection vector already applied).
    #[must_use]
    pub fn amortized_embodied(&self, system_embodied: GramsCo2e, task_time: Seconds) -> GramsCo2e {
        system_embodied * self.amortization_factor(task_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vr_profile() {
        // 5 years, 2 h/day active (Table III: D_off = 22 h/day for 5 years).
        let usage = UsageProfile::from_daily_hours(5.0, 2.0).unwrap();
        let lifetime = usage.lifetime();
        assert!((lifetime.to_years() - 5.0).abs() < 1e-9);
        let op = usage.operational_time();
        assert!((op.value() / lifetime.value() - 2.0 / 24.0).abs() < 1e-12);
        let off = usage.off_time();
        assert!((off.value() / lifetime.value() - 22.0 / 24.0).abs() < 1e-12);
        // off + operational == lifetime.
        assert!(((off + op).value() - lifetime.value()).abs() < 1e-3);
    }

    #[test]
    fn amortization_scales_linearly() {
        let usage = UsageProfile::from_daily_hours(5.0, 2.0).unwrap();
        let system = GramsCo2e::new(5375.33);
        let op = usage.operational_time();
        // A task using the full operational life is charged everything.
        let all = usage.amortized_embodied(system, op);
        assert!((all.value() - 5375.33).abs() < 1e-6);
        // Half the time, half the carbon.
        let half = usage.amortized_embodied(system, op / 2.0);
        assert!((half.value() - 5375.33 / 2.0).abs() < 1e-6);
        assert!((usage.amortization_factor(op / 4.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn over_subscription_exceeds_one() {
        let usage = UsageProfile::from_daily_hours(1.0, 1.0).unwrap();
        let factor = usage.amortization_factor(usage.operational_time() * 3.0);
        assert!((factor - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(UsageProfile::new(Seconds::ZERO, 0.5).is_err());
        assert!(UsageProfile::new(Seconds::from_years(1.0), 0.0).is_err());
        assert!(UsageProfile::new(Seconds::from_years(1.0), 1.5).is_err());
        assert!(UsageProfile::from_daily_hours(0.0, 2.0).is_err());
        assert!(UsageProfile::from_daily_hours(1.0, 25.0).is_err());
        assert!(UsageProfile::from_daily_hours(1.0, 24.0).is_ok());
    }

    #[test]
    fn always_on_system() {
        let usage = UsageProfile::new(Seconds::from_years(4.0), 1.0).unwrap();
        assert_eq!(usage.off_time(), Seconds::ZERO * 1.0);
        assert!((usage.operational_time().to_years() - 4.0).abs() < 1e-9);
    }
}
