//! Die-yield models.
//!
//! Embodied carbon scales as `A / Y` (paper eq. IV.5): every discarded die
//! still paid its full manufacturing carbon. The paper uses the Murphy yield
//! model \[34\] as its example; this module also provides the Poisson, Seeds,
//! and Bose-Einstein models common in cost/yield literature \[11\] so the
//! choice can be ablated.

use crate::error::CarbonError;
use crate::units::{DefectDensity, SquareCentimeters};
use serde::{Deserialize, Serialize};

/// A model mapping die area and defect density to expected yield fraction.
///
/// All models satisfy: yield is in `(0, 1]`, equals 1 at zero area, and is
/// monotonically non-increasing in both area and defect density.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::yield_model::YieldModel;
/// use cordoba_carbon::units::{DefectDensity, SquareCentimeters};
///
/// let y = YieldModel::Murphy.fraction(SquareCentimeters::new(1.0), DefectDensity::new(0.1));
/// assert!(y > 0.9 && y < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum YieldModel {
    /// Murphy's model: `Y = ((1 - e^-x) / x)^2` with `x = A * D0`.
    Murphy,
    /// Poisson model: `Y = e^-x`.
    Poisson,
    /// Seeds model: `Y = e^-sqrt(x)`.
    Seeds,
    /// Bose-Einstein model with `n` critical layers: `Y = 1 / (1 + x)^n`.
    BoseEinstein {
        /// Number of critical mask layers.
        layers: u32,
    },
    /// A fixed yield independent of area (e.g. a vendor-quoted number such
    /// as the paper's 0.98 example).
    Fixed {
        /// The yield fraction, in `(0, 1]`.
        fraction: f64,
    },
}

impl YieldModel {
    /// Creates a fixed-yield model.
    ///
    /// # Errors
    ///
    /// Returns an error unless `fraction` is in `(0, 1]`.
    pub fn fixed(fraction: f64) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("fixed yield", fraction, f64::MIN_POSITIVE, 1.0)?;
        Ok(Self::Fixed { fraction })
    }

    /// Expected fraction of good dice for a die of `area` at defect density
    /// `d0`.
    ///
    /// Always returns a value in `(0, 1]`; a zero-area die yields 1.
    #[must_use]
    pub fn fraction(&self, area: SquareCentimeters, d0: DefectDensity) -> f64 {
        let x = d0.expected_defects(area).max(0.0);
        match *self {
            Self::Murphy => {
                if x < 1e-12 {
                    1.0
                } else {
                    let term = (1.0 - (-x).exp()) / x;
                    term * term
                }
            }
            Self::Poisson => (-x).exp(),
            Self::Seeds => (-x.sqrt()).exp(),
            Self::BoseEinstein { layers } => {
                let n = i32::try_from(layers).unwrap_or(i32::MAX);
                (1.0 + x).powi(-n)
            }
            Self::Fixed { fraction } => fraction,
        }
    }

    /// The effective area charged per *good* die: `A / Y`.
    ///
    /// This is the quantity that enters embodied carbon (eq. IV.5).
    #[must_use]
    pub fn effective_area(&self, area: SquareCentimeters, d0: DefectDensity) -> SquareCentimeters {
        area / self.fraction(area, d0)
    }

    /// Human-readable model name (used in ablation reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Murphy => "murphy",
            Self::Poisson => "poisson",
            Self::Seeds => "seeds",
            Self::BoseEinstein { .. } => "bose-einstein",
            Self::Fixed { .. } => "fixed",
        }
    }
}

impl Default for YieldModel {
    /// Murphy's model, the paper's example choice.
    fn default() -> Self {
        Self::Murphy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DefectDensity = DefectDensity::new(0.1);

    fn area(v: f64) -> SquareCentimeters {
        SquareCentimeters::new(v)
    }

    #[test]
    fn all_models_yield_one_at_zero_area() {
        for model in [
            YieldModel::Murphy,
            YieldModel::Poisson,
            YieldModel::Seeds,
            YieldModel::BoseEinstein { layers: 10 },
        ] {
            let y = model.fraction(area(0.0), D0);
            assert!((y - 1.0).abs() < 1e-9, "{model:?} at zero area gave {y}");
        }
    }

    #[test]
    fn all_models_decrease_with_area() {
        for model in [
            YieldModel::Murphy,
            YieldModel::Poisson,
            YieldModel::Seeds,
            YieldModel::BoseEinstein { layers: 10 },
        ] {
            let mut prev = 1.0 + 1e-12;
            for a in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
                let y = model.fraction(area(a), D0);
                assert!(y < prev, "{model:?} not decreasing at area {a}");
                assert!(y > 0.0 && y <= 1.0);
                prev = y;
            }
        }
    }

    #[test]
    fn murphy_matches_closed_form() {
        // x = 2.0: Y = ((1 - e^-2)/2)^2.
        let y = YieldModel::Murphy.fraction(area(20.0), D0);
        let expected = ((1.0 - (-2.0f64).exp()) / 2.0).powi(2);
        assert!((y - expected).abs() < 1e-12);
    }

    #[test]
    fn poisson_lower_than_murphy() {
        // The Murphy model is known to be less pessimistic than Poisson for
        // the same defect expectation.
        let a = area(3.0);
        assert!(YieldModel::Poisson.fraction(a, D0) < YieldModel::Murphy.fraction(a, D0));
    }

    #[test]
    fn fixed_validates_and_is_area_independent() {
        let y = YieldModel::fixed(0.98).unwrap();
        assert_eq!(y.fraction(area(0.1), D0), 0.98);
        assert_eq!(y.fraction(area(10.0), D0), 0.98);
        assert!(YieldModel::fixed(0.0).is_err());
        assert!(YieldModel::fixed(1.5).is_err());
        assert!(YieldModel::fixed(f64::NAN).is_err());
    }

    #[test]
    fn effective_area_is_inflated_by_yield() {
        // Paper Table III: A = 2.25 cm^2 at Y = 0.98 -> 2.2959 cm^2 charged.
        let y = YieldModel::fixed(0.98).unwrap();
        let eff = y.effective_area(area(2.25), D0);
        assert!((eff.value() - 2.25 / 0.98).abs() < 1e-12);
        // Non-fixed model also inflates.
        let eff_m = YieldModel::Murphy.effective_area(area(2.0), D0);
        assert!(eff_m.value() > 2.0);
    }

    #[test]
    fn bose_einstein_layers_compound() {
        let a = area(2.0);
        let y1 = YieldModel::BoseEinstein { layers: 1 }.fraction(a, D0);
        let y5 = YieldModel::BoseEinstein { layers: 5 }.fraction(a, D0);
        assert!((y5 - y1.powi(5)).abs() < 1e-12);
    }

    #[test]
    fn default_is_murphy() {
        assert_eq!(YieldModel::default(), YieldModel::Murphy);
        assert_eq!(YieldModel::default().name(), "murphy");
    }
}
