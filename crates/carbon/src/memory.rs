//! Embodied carbon of memory and storage devices.
//!
//! ACT \[22\] extends IC embodied carbon with capacity-based models for DRAM,
//! NAND flash (SSD), and HDD — a computing *system's* footprint includes
//! them (the paper's Table III lists DRAM among the HW resources, and the
//! conclusion calls for extending the framework with additional models).
//! This module provides per-gigabyte carbon-per-storage factors with a
//! technology-trend knob, plus a [`SystemBom`] that totals a bill of
//! materials of dice and memory devices.

use crate::embodied::{Die, EmbodiedModel};
use crate::error::CarbonError;
use crate::units::GramsCo2e;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Carbon mass per gigabyte of storage capacity, in gCO2e/GB.
///
/// A distinct type so per-capacity factors cannot be confused with
/// absolute carbon masses ([`GramsCo2e`]).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct GramsCo2ePerGigabyte(f64);

impl GramsCo2ePerGigabyte {
    /// Creates a factor from a raw gCO2e/GB value.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// The raw value in gCO2e/GB.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The carbon mass of `capacity_gb` gigabytes at this factor.
    #[must_use]
    pub fn for_capacity(self, capacity_gb: f64) -> GramsCo2e {
        GramsCo2e::new(self.0 * capacity_gb)
    }
}

impl fmt::Display for GramsCo2ePerGigabyte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gCO2e/GB", self.0)
    }
}

/// A class of memory/storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MemoryKind {
    /// LPDDR/DDR DRAM.
    Dram,
    /// NAND flash (SSD / UFS).
    Nand,
    /// Rotational storage.
    Hdd,
}

impl MemoryKind {
    /// Baseline embodied carbon per gigabyte (ACT-trend values: DRAM
    /// dominated by wafer cost per bit, NAND cheaper per bit, HDD
    /// cheapest).
    #[must_use]
    pub fn carbon_per_gb(self) -> GramsCo2ePerGigabyte {
        match self {
            Self::Dram => GramsCo2ePerGigabyte::new(230.0),
            Self::Nand => GramsCo2ePerGigabyte::new(35.0),
            Self::Hdd => GramsCo2ePerGigabyte::new(8.0),
        }
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Dram => "DRAM",
            Self::Nand => "NAND",
            Self::Hdd => "HDD",
        }
    }
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A memory/storage device of a given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryDevice {
    /// Device class.
    pub kind: MemoryKind,
    /// Capacity in gigabytes.
    pub capacity_gb: f64,
    /// Per-bit carbon scaling relative to the baseline generation (newer,
    /// denser generations trend below 1.0; 1.0 = baseline).
    pub generation_factor: f64,
}

impl MemoryDevice {
    /// Creates a device at the baseline generation.
    ///
    /// # Errors
    ///
    /// Returns an error if `capacity_gb` is not positive.
    pub fn new(kind: MemoryKind, capacity_gb: f64) -> Result<Self, CarbonError> {
        CarbonError::require_positive("capacity_gb", capacity_gb)?;
        Ok(Self {
            kind,
            capacity_gb,
            generation_factor: 1.0,
        })
    }

    /// Sets the generation scaling factor.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor` is not positive and finite.
    pub fn with_generation_factor(mut self, factor: f64) -> Result<Self, CarbonError> {
        CarbonError::require_positive("generation factor", factor)?;
        self.generation_factor = factor;
        Ok(self)
    }

    /// Embodied carbon of this device.
    #[must_use]
    pub fn embodied_carbon(&self) -> GramsCo2e {
        self.kind
            .carbon_per_gb()
            .for_capacity(self.capacity_gb * self.generation_factor)
    }
}

/// A system bill of materials: logic dice plus memory/storage devices.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::memory::{MemoryDevice, MemoryKind, SystemBom};
/// use cordoba_carbon::embodied::{Die, EmbodiedModel};
/// use cordoba_carbon::fab::ProcessNode;
/// use cordoba_carbon::units::SquareCentimeters;
///
/// let mut bom = SystemBom::new("vr-headset");
/// bom.add_die(Die::new("soc", SquareCentimeters::new(2.25), ProcessNode::N7)?);
/// bom.add_memory(MemoryDevice::new(MemoryKind::Dram, 8.0)?);
/// bom.add_memory(MemoryDevice::new(MemoryKind::Nand, 256.0)?);
/// let total = bom.embodied_carbon(&EmbodiedModel::default());
/// assert!(total.value() > 0.0);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemBom {
    name: String,
    dice: Vec<Die>,
    memories: Vec<MemoryDevice>,
}

impl SystemBom {
    /// Creates an empty bill of materials.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dice: Vec::new(),
            memories: Vec::new(),
        }
    }

    /// The system name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a logic die.
    pub fn add_die(&mut self, die: Die) -> &mut Self {
        self.dice.push(die);
        self
    }

    /// Adds a memory/storage device.
    pub fn add_memory(&mut self, device: MemoryDevice) -> &mut Self {
        self.memories.push(device);
        self
    }

    /// The logic dice.
    #[must_use]
    pub fn dice(&self) -> &[Die] {
        &self.dice
    }

    /// The memory devices.
    #[must_use]
    pub fn memories(&self) -> &[MemoryDevice] {
        &self.memories
    }

    /// Embodied carbon of the logic dice alone.
    #[must_use]
    pub fn logic_carbon(&self, model: &EmbodiedModel) -> GramsCo2e {
        self.dice.iter().map(|d| model.packaged_die_carbon(d)).sum()
    }

    /// Embodied carbon of the memory devices alone.
    #[must_use]
    pub fn memory_carbon(&self) -> GramsCo2e {
        self.memories
            .iter()
            .map(MemoryDevice::embodied_carbon)
            .sum()
    }

    /// Total embodied carbon of the system.
    #[must_use]
    pub fn embodied_carbon(&self, model: &EmbodiedModel) -> GramsCo2e {
        self.logic_carbon(model) + self.memory_carbon()
    }

    /// Fraction of embodied carbon attributable to memory/storage.
    #[must_use]
    pub fn memory_share(&self, model: &EmbodiedModel) -> f64 {
        let total = self.embodied_carbon(model).value();
        // cordoba-lint: allow(float-eq) — exact-zero sentinel guarding division
        if total == 0.0 {
            0.0
        } else {
            self.memory_carbon().value() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fab::ProcessNode;
    use crate::units::SquareCentimeters;

    #[test]
    fn per_gb_factors_are_ordered() {
        assert!(MemoryKind::Dram.carbon_per_gb() > MemoryKind::Nand.carbon_per_gb());
        assert!(MemoryKind::Nand.carbon_per_gb() > MemoryKind::Hdd.carbon_per_gb());
        assert_eq!(MemoryKind::Dram.to_string(), "DRAM");
    }

    #[test]
    fn device_carbon_scales_with_capacity_and_generation() {
        let d8 = MemoryDevice::new(MemoryKind::Dram, 8.0).unwrap();
        let d16 = MemoryDevice::new(MemoryKind::Dram, 16.0).unwrap();
        assert!((d16.embodied_carbon().value() - 2.0 * d8.embodied_carbon().value()).abs() < 1e-9);
        let newer = d8.with_generation_factor(0.7).unwrap();
        assert!(
            (newer.embodied_carbon().value() - 0.7 * d8.embodied_carbon().value()).abs() < 1e-9
        );
    }

    #[test]
    fn device_validation() {
        assert!(MemoryDevice::new(MemoryKind::Nand, 0.0).is_err());
        assert!(MemoryDevice::new(MemoryKind::Nand, -1.0).is_err());
        assert!(MemoryDevice::new(MemoryKind::Nand, 1.0)
            .unwrap()
            .with_generation_factor(0.0)
            .is_err());
    }

    #[test]
    fn bom_totals_compose() {
        let model = EmbodiedModel::default();
        let mut bom = SystemBom::new("headset");
        bom.add_die(Die::new("soc", SquareCentimeters::new(2.25), ProcessNode::N7).unwrap());
        bom.add_memory(MemoryDevice::new(MemoryKind::Dram, 8.0).unwrap());
        bom.add_memory(MemoryDevice::new(MemoryKind::Nand, 256.0).unwrap());
        assert_eq!(bom.name(), "headset");
        assert_eq!(bom.dice().len(), 1);
        assert_eq!(bom.memories().len(), 2);
        let total = bom.embodied_carbon(&model);
        let parts = bom.logic_carbon(&model) + bom.memory_carbon();
        assert!((total.value() - parts.value()).abs() < 1e-9);
        // 8 GB DRAM (1840 g) + 256 GB NAND (8960 g) are a visible share of
        // the headset's footprint, as ACT reports for consumer devices.
        let share = bom.memory_share(&model);
        assert!(share > 0.3 && share < 0.9, "memory share {share}");
    }

    #[test]
    fn empty_bom_has_zero_carbon() {
        let bom = SystemBom::new("empty");
        assert_eq!(bom.memory_carbon(), GramsCo2e::ZERO);
        assert_eq!(bom.memory_share(&EmbodiedModel::default()), 0.0);
    }
}
