//! # cordoba-carbon
//!
//! Carbon-accounting substrate for the CORDOBA carbon-efficient optimization
//! framework (Elgamal et al., HPCA 2025).
//!
//! This crate provides everything needed to quantify the **total carbon
//! footprint** `tC = C_operational + C_embodied` of a computing system:
//!
//! * [`units`] — strongly-typed physical quantities (`Joules`, `Watts`,
//!   `GramsCo2e`, `CarbonIntensity`, ...) with dimension-checked arithmetic;
//! * [`fab`] — per-process-node fabrication characterization (`EPA`, `MPA`,
//!   `GPA`, defect density, logic scaling), ACT-style \[22\], \[39\];
//! * [`yield_model`] / [`wafer`] — Murphy/Poisson/Seeds/Bose-Einstein yield
//!   and gross-die-per-wafer models \[11\], \[34\];
//! * [`embodied`] — eq. IV.5 embodied carbon for dice and 3D assemblies;
//! * [`intensity`] / [`operational`] — time-varying `CI_use(t)` sources and
//!   eq. IV.6/IV.7 operational carbon;
//! * [`lifetime`] — operational-time amortization (eq. IV.3).
//!
//! # Example: total carbon of the paper's VR SoC
//!
//! ```
//! use cordoba_carbon::prelude::*;
//!
//! // Embodied: 2.25 cm^2 7 nm die at a coal-powered fab, 0.98 fixed yield.
//! let model = EmbodiedModel::new(
//!     CarbonIntensity::new(820.0),
//!     YieldModel::fixed(0.98)?,
//!     GramsCo2e::ZERO,
//! );
//! let die = Die::new("xr2-soc", SquareCentimeters::new(2.25), ProcessNode::N7)?;
//! let embodied = model.die_carbon(&die);
//!
//! // Operational: 8.3 W, 2 h/day for 5 years at the US grid average.
//! let usage = UsageProfile::from_daily_hours(5.0, 2.0)?;
//! let energy = Watts::new(8.3) * usage.operational_time();
//! let operational = operational_carbon(grids::US_AVERAGE, energy);
//!
//! let total = embodied + operational;
//! assert!(total > embodied && total > operational);
//! # Ok::<(), cordoba_carbon::CarbonError>(())
//! ```

pub mod embodied;
pub mod error;
pub mod fab;
pub mod fallback;
pub mod integral;
pub mod intensity;
pub mod lifetime;
pub mod memory;
pub mod operational;
pub mod sanitize;
pub mod units;
pub mod wafer;
pub mod yield_model;

pub use error::CarbonError;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::embodied::{Assembly, Die, EmbodiedModel};
    pub use crate::error::CarbonError;
    pub use crate::fab::{FabProfile, ProcessNode};
    pub use crate::fallback::{
        FallbackCi, FallbackCiBuilder, FallbackHealth, TierCoverage, TierHealth,
    };
    pub use crate::integral::{operational_carbon_exact, CiIntegral, PowerIntegral, PowerSegment};
    pub use crate::intensity::{
        grids, CiSource, ConstantCi, DiurnalCi, SeasonalCi, TraceCi, TrendCi,
    };
    pub use crate::lifetime::UsageProfile;
    pub use crate::memory::{GramsCo2ePerGigabyte, MemoryDevice, MemoryKind, SystemBom};
    pub use crate::operational::{
        operational_carbon, operational_carbon_profile, ConstantPower, DutyCycledPower,
        PowerProfile,
    };
    pub use crate::sanitize::{Gap, SanitizePolicy, SanitizeReport};
    pub use crate::units::{
        Bytes, BytesPerSecond, CarbonIntensity, CarbonIntensitySeconds, CarbonPerArea,
        DefectDensity, EnergyPerArea, GramSecondsCo2e, GramsCo2e, Hertz, JouleSeconds, Joules,
        KilowattHours, Millimeters, Seconds, SquareCentimeters, SquareMillimeters, Watts,
    };
    pub use crate::wafer::Wafer;
    pub use crate::yield_model::YieldModel;
}
