//! Embodied-carbon accounting (paper eq. IV.5).
//!
//! `C_embodied = (CI_fab * EPA + MPA + GPA) * A / Y`
//!
//! Extended with per-die yield via the models in [`crate::yield_model`],
//! multi-die assemblies (3D stacks, chiplets) with bond yield and per-die
//! TSV area overhead, and a packaging adder.

use crate::error::CarbonError;
use crate::fab::ProcessNode;
use crate::intensity::grids;
use crate::units::{CarbonIntensity, GramsCo2e, KilowattHours, SquareCentimeters};
use crate::yield_model::YieldModel;
use serde::{Deserialize, Serialize};

/// Embodied carbon split into its `CI_fab`-dependent and fixed parts:
/// `C_embodied = CI_fab * fab_energy + materials`.
///
/// The split enables §IV-B-style elimination when `CI_fab` itself is
/// unknown at design time (the paper explicitly suggests this extension).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EmbodiedBreakdown {
    /// Fab energy charged per good unit (the `EPA * A / Y` term), whose
    /// carbon depends on the fab's grid.
    pub fab_energy: KilowattHours,
    /// Grid-independent carbon: materials (`MPA`), direct gases (`GPA`),
    /// packaging, and bonding.
    pub materials: GramsCo2e,
}

impl EmbodiedBreakdown {
    /// Total embodied carbon at a concrete fab intensity.
    #[must_use]
    pub fn total(&self, ci_fab: CarbonIntensity) -> GramsCo2e {
        ci_fab * self.fab_energy + self.materials
    }
}

impl core::ops::Add for EmbodiedBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self {
            fab_energy: self.fab_energy + rhs.fab_energy,
            materials: self.materials + rhs.materials,
        }
    }
}

/// A single silicon die to be fabricated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Die {
    /// Human-readable label (e.g. `"logic"`, `"sram-tier-1"`).
    pub name: String,
    /// Die area before any TSV overhead.
    pub area: SquareCentimeters,
    /// Technology node the die is fabricated in.
    pub node: ProcessNode,
}

impl Die {
    /// Creates a die.
    ///
    /// # Errors
    ///
    /// Returns an error if `area` is not positive.
    pub fn new(
        name: impl Into<String>,
        area: SquareCentimeters,
        node: ProcessNode,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_positive("die area", area.value())?;
        Ok(Self {
            name: name.into(),
            area,
            node,
        })
    }
}

/// The fab-level parameters of an embodied-carbon calculation.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::embodied::{Die, EmbodiedModel};
/// use cordoba_carbon::fab::ProcessNode;
/// use cordoba_carbon::units::SquareCentimeters;
///
/// let model = EmbodiedModel::default();
/// let die = Die::new("soc", SquareCentimeters::new(2.25), ProcessNode::N7)?;
/// let carbon = model.die_carbon(&die);
/// assert!(carbon.value() > 4_000.0 && carbon.value() < 9_000.0);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbodiedModel {
    ci_fab: CarbonIntensity,
    yield_model: YieldModel,
    packaging_per_die: GramsCo2e,
}

impl EmbodiedModel {
    /// Creates a model with explicit parameters.
    #[must_use]
    pub fn new(
        ci_fab: CarbonIntensity,
        yield_model: YieldModel,
        packaging_per_die: GramsCo2e,
    ) -> Self {
        Self {
            ci_fab,
            yield_model,
            packaging_per_die,
        }
    }

    /// Carbon intensity of the fab's energy source.
    #[must_use]
    pub fn ci_fab(&self) -> CarbonIntensity {
        self.ci_fab
    }

    /// The yield model used to inflate effective area.
    #[must_use]
    pub fn yield_model(&self) -> YieldModel {
        self.yield_model
    }

    /// Packaging carbon charged per die (content-addressed stores key on
    /// this alongside `ci_fab` and the yield model).
    #[must_use]
    pub fn packaging_per_die(&self) -> GramsCo2e {
        self.packaging_per_die
    }

    /// Returns a copy using a different yield model (for ablations).
    #[must_use]
    pub fn with_yield_model(mut self, yield_model: YieldModel) -> Self {
        self.yield_model = yield_model;
        self
    }

    /// Returns a copy using a different fab carbon intensity.
    #[must_use]
    pub fn with_ci_fab(mut self, ci_fab: CarbonIntensity) -> Self {
        self.ci_fab = ci_fab;
        self
    }

    /// Embodied carbon of fabricating one good die (eq. IV.5), excluding
    /// packaging: `(CI_fab * EPA + MPA + GPA) * A / Y`.
    #[must_use]
    pub fn die_carbon(&self, die: &Die) -> GramsCo2e {
        let profile = die.node.profile();
        let per_area_fab: GramsCo2e = self.ci_fab * (profile.epa * SquareCentimeters::new(1.0));
        let per_area = per_area_fab
            + profile.mpa * SquareCentimeters::new(1.0)
            + profile.gpa * SquareCentimeters::new(1.0);
        let effective = self
            .yield_model
            .effective_area(die.area, profile.defect_density);
        per_area * effective.value()
    }

    /// Embodied carbon of a packaged single-die part.
    #[must_use]
    pub fn packaged_die_carbon(&self, die: &Die) -> GramsCo2e {
        self.die_carbon(die) + self.packaging_per_die
    }

    /// The `CI_fab`-separable breakdown of one die's embodied carbon.
    ///
    /// Invariant: `die_breakdown(d).total(ci_fab()) == die_carbon(d)`.
    #[must_use]
    pub fn die_breakdown(&self, die: &Die) -> EmbodiedBreakdown {
        let profile = die.node.profile();
        let effective = self
            .yield_model
            .effective_area(die.area, profile.defect_density);
        EmbodiedBreakdown {
            fab_energy: profile.epa * effective,
            materials: (profile.mpa + profile.gpa)
                * SquareCentimeters::new(1.0)
                * effective.value(),
        }
    }

    /// The `CI_fab`-separable breakdown of a multi-die assembly
    /// (packaging and bonding carbon count as materials).
    #[must_use]
    pub fn assembly_breakdown(&self, assembly: &Assembly) -> EmbodiedBreakdown {
        let mut total = EmbodiedBreakdown::default();
        for d in &assembly.dice {
            let mut inflated = d.clone();
            inflated.area = d.area * (1.0 + assembly.tsv_area_overhead);
            total = total + self.die_breakdown(&inflated);
        }
        let bond_yield = assembly.compound_bond_yield();
        EmbodiedBreakdown {
            fab_energy: total.fab_energy / bond_yield,
            materials: total.materials / bond_yield
                + self.packaging_per_die
                + assembly.bonding_carbon,
        }
    }

    /// Embodied carbon of one good die computed through wafer geometry:
    /// the whole wafer's fab carbon divided by (gross dies per wafer x
    /// yield).
    ///
    /// This is the "die placement" refinement the paper adds to ACT \[11\]:
    /// it additionally charges each die for the partial dies lost at the
    /// wafer edge, so it is always >= [`EmbodiedModel::die_carbon`], with
    /// the gap growing for large dies.
    ///
    /// # Errors
    ///
    /// Returns an error if the die does not fit the wafer.
    pub fn die_carbon_via_wafer(
        &self,
        die: &Die,
        wafer: &crate::wafer::Wafer,
    ) -> Result<GramsCo2e, CarbonError> {
        let profile = die.node.profile();
        let per_area_fab: GramsCo2e = self.ci_fab * (profile.epa * SquareCentimeters::new(1.0));
        let per_area = per_area_fab
            + profile.mpa * SquareCentimeters::new(1.0)
            + profile.gpa * SquareCentimeters::new(1.0);
        let wafer_carbon = per_area * wafer.usable_area().value();
        let gross = wafer.gross_dies(die.area)?;
        let good = gross * self.yield_model.fraction(die.area, profile.defect_density);
        Ok(wafer_carbon / good)
    }

    /// Embodied carbon of a multi-die assembly.
    ///
    /// Each die pays its own fab carbon; the whole stack is divided by the
    /// compound bond yield (a failed bond discards every die in the stack)
    /// and pays one packaging adder plus `assembly.bonding_carbon`.
    #[must_use]
    pub fn assembly_carbon(&self, assembly: &Assembly) -> GramsCo2e {
        let dice: GramsCo2e = assembly
            .dice
            .iter()
            .map(|d| {
                let mut inflated = d.clone();
                inflated.area = d.area * (1.0 + assembly.tsv_area_overhead);
                self.die_carbon(&inflated)
            })
            .sum();
        let bond_yield = assembly.compound_bond_yield();
        dice / bond_yield + self.packaging_per_die + assembly.bonding_carbon
    }
}

impl Default for EmbodiedModel {
    /// A coal-heavy fab grid (the paper's `CI_fab` = 820 gCO2e/kWh example),
    /// Murphy yield, and a 50 gCO2e packaging adder.
    fn default() -> Self {
        Self {
            ci_fab: grids::COAL,
            yield_model: YieldModel::Murphy,
            packaging_per_die: GramsCo2e::new(50.0),
        }
    }
}

/// A vertically integrated multi-die assembly (3D stack or 2.5D package).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assembly {
    /// The dice in the stack, bottom to top.
    pub dice: Vec<Die>,
    /// Fractional area overhead per die for TSVs / hybrid-bond pads
    /// (e.g. `0.05` for 5 %).
    pub tsv_area_overhead: f64,
    /// Yield of each bonding step between adjacent dice.
    pub bond_yield_per_interface: f64,
    /// Direct carbon of the bonding process itself.
    pub bonding_carbon: GramsCo2e,
}

impl Assembly {
    /// Creates an assembly.
    ///
    /// # Errors
    ///
    /// Returns an error if `dice` is empty, `tsv_area_overhead` is negative
    /// or not finite, or `bond_yield_per_interface` is outside `(0, 1]`.
    pub fn new(
        dice: Vec<Die>,
        tsv_area_overhead: f64,
        bond_yield_per_interface: f64,
        bonding_carbon: GramsCo2e,
    ) -> Result<Self, CarbonError> {
        if dice.is_empty() {
            return Err(CarbonError::Empty {
                what: "assembly dice",
            });
        }
        CarbonError::require_in_range("tsv area overhead", tsv_area_overhead, 0.0, 1.0)?;
        CarbonError::require_in_range(
            "bond yield per interface",
            bond_yield_per_interface,
            f64::MIN_POSITIVE,
            1.0,
        )?;
        Ok(Self {
            dice,
            tsv_area_overhead,
            bond_yield_per_interface,
            bonding_carbon,
        })
    }

    /// Number of bonding interfaces (dice - 1).
    #[must_use]
    pub fn interfaces(&self) -> usize {
        self.dice.len().saturating_sub(1)
    }

    /// Compound yield across all bonding steps.
    #[must_use]
    pub fn compound_bond_yield(&self) -> f64 {
        let n = i32::try_from(self.interfaces()).unwrap_or(i32::MAX);
        self.bond_yield_per_interface.powi(n)
    }

    /// Total silicon area including TSV overhead.
    #[must_use]
    pub fn total_area(&self) -> SquareCentimeters {
        self.dice
            .iter()
            .map(|d| d.area * (1.0 + self.tsv_area_overhead))
            .sum()
    }

    /// Footprint (area of the largest die) — the package X-Y size.
    #[must_use]
    pub fn footprint(&self) -> SquareCentimeters {
        self.dice
            .iter()
            .map(|d| d.area * (1.0 + self.tsv_area_overhead))
            .fold(SquareCentimeters::ZERO, SquareCentimeters::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(area: f64) -> Die {
        Die::new("test", SquareCentimeters::new(area), ProcessNode::N7).unwrap()
    }

    #[test]
    fn eq_iv5_matches_hand_computation_with_fixed_yield() {
        // Paper Table III-flavored check: 7 nm, CI_fab 820, EPA 2.15,
        // MPA 500, GPA 300, A = 2.25 cm^2, Y = 0.98.
        let model = EmbodiedModel::new(
            CarbonIntensity::new(820.0),
            YieldModel::fixed(0.98).unwrap(),
            GramsCo2e::ZERO,
        );
        let c = model.die_carbon(&die(2.25));
        let expected = (820.0 * 2.15 + 500.0 + 300.0) * 2.25 / 0.98;
        assert!((c.value() - expected).abs() < 1e-6, "{c} vs {expected}");
        // Same order of magnitude as the paper's 5375.33 gCO2e.
        assert!(c.value() > 4_000.0 && c.value() < 7_000.0);
    }

    #[test]
    fn carbon_scales_superlinearly_with_area_under_murphy() {
        let model = EmbodiedModel::default();
        let c1 = model.die_carbon(&die(1.0));
        let c4 = model.die_carbon(&die(4.0));
        // 4x the area must cost more than 4x the carbon (yield loss).
        assert!(c4.value() > 4.0 * c1.value());
    }

    #[test]
    fn newer_node_costs_more_per_area() {
        let model = EmbodiedModel::default();
        let old = model
            .die_carbon(&Die::new("a", SquareCentimeters::new(1.0), ProcessNode::N28).unwrap());
        let new =
            model.die_carbon(&Die::new("b", SquareCentimeters::new(1.0), ProcessNode::N3).unwrap());
        assert!(new.value() > 1.5 * old.value());
    }

    #[test]
    fn cleaner_fab_grid_reduces_embodied() {
        let dirty = EmbodiedModel::default();
        let clean = EmbodiedModel::default().with_ci_fab(grids::HYDRO);
        let d = die(2.0);
        assert!(clean.die_carbon(&d) < dirty.die_carbon(&d));
        assert_eq!(clean.ci_fab(), grids::HYDRO);
    }

    #[test]
    fn packaging_adder_applies_once() {
        let model = EmbodiedModel::new(grids::COAL, YieldModel::Murphy, GramsCo2e::new(50.0));
        let d = die(1.0);
        let bare = model.die_carbon(&d);
        let packaged = model.packaged_die_carbon(&d);
        assert!((packaged.value() - bare.value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn assembly_pays_tsv_and_bond_yield() {
        let model = EmbodiedModel::new(
            grids::COAL,
            YieldModel::fixed(1.0).unwrap(),
            GramsCo2e::ZERO,
        );
        let dice = vec![die(1.0), die(1.0)];
        let asm = Assembly::new(dice, 0.05, 0.99, GramsCo2e::new(10.0)).unwrap();
        assert_eq!(asm.interfaces(), 1);
        assert!((asm.compound_bond_yield() - 0.99).abs() < 1e-12);
        let single = model.die_carbon(&die(1.05));
        let total = model.assembly_carbon(&asm);
        let expected = 2.0 * single.value() / 0.99 + 10.0;
        assert!((total.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn assembly_geometry() {
        let asm = Assembly::new(
            vec![die(2.0), die(1.0), die(1.0)],
            0.10,
            0.98,
            GramsCo2e::ZERO,
        )
        .unwrap();
        assert_eq!(asm.interfaces(), 2);
        assert!((asm.total_area().value() - 4.4).abs() < 1e-12);
        assert!((asm.footprint().value() - 2.2).abs() < 1e-12);
        assert!((asm.compound_bond_yield() - 0.98f64.powi(2)).abs() < 1e-12);
    }

    #[test]
    fn assembly_validation() {
        assert!(Assembly::new(vec![], 0.0, 1.0, GramsCo2e::ZERO).is_err());
        assert!(Assembly::new(vec![die(1.0)], -0.1, 1.0, GramsCo2e::ZERO).is_err());
        assert!(Assembly::new(vec![die(1.0)], 0.0, 0.0, GramsCo2e::ZERO).is_err());
        assert!(Assembly::new(vec![die(1.0)], 0.0, 1.5, GramsCo2e::ZERO).is_err());
    }

    #[test]
    fn single_die_assembly_equals_packaged_die() {
        let model = EmbodiedModel::default();
        let asm = Assembly::new(vec![die(1.0)], 0.0, 1.0, GramsCo2e::ZERO).unwrap();
        let a = model.assembly_carbon(&asm);
        let b = model.packaged_die_carbon(&die(1.0));
        assert!((a.value() - b.value()).abs() < 1e-9);
    }

    #[test]
    fn breakdown_reassembles_to_die_carbon() {
        let model = EmbodiedModel::default();
        for area in [0.25, 1.0, 3.0] {
            let d = die(area);
            let split = model.die_breakdown(&d);
            let total = split.total(model.ci_fab());
            let direct = model.die_carbon(&d);
            assert!(
                (total.value() - direct.value()).abs() < 1e-9 * direct.value(),
                "area {area}"
            );
            assert!(split.fab_energy.value() > 0.0);
            assert!(split.materials.value() > 0.0);
        }
    }

    #[test]
    fn assembly_breakdown_reassembles_to_assembly_carbon() {
        let model = EmbodiedModel::new(grids::COAL, YieldModel::Murphy, GramsCo2e::new(50.0));
        let asm = Assembly::new(
            vec![die(1.0), die(0.5), die(0.5)],
            0.05,
            0.99,
            GramsCo2e::new(10.0),
        )
        .unwrap();
        let split = model.assembly_breakdown(&asm);
        let total = split.total(model.ci_fab());
        let direct = model.assembly_carbon(&asm);
        assert!((total.value() - direct.value()).abs() < 1e-9 * direct.value());
        // A cleaner fab grid only shrinks the energy part.
        let clean_total = split.total(grids::HYDRO);
        assert!(clean_total < total);
        assert!(clean_total >= split.materials);
    }

    #[test]
    fn breakdowns_add() {
        let model = EmbodiedModel::default();
        let a = model.die_breakdown(&die(1.0));
        let b = model.die_breakdown(&die(2.0));
        let sum = a + b;
        assert!(
            (sum.fab_energy.value() - a.fab_energy.value() - b.fab_energy.value()).abs() < 1e-12
        );
        assert!((sum.materials.value() - a.materials.value() - b.materials.value()).abs() < 1e-9);
    }

    #[test]
    fn wafer_path_charges_edge_losses_on_top_of_area_path() {
        let model = EmbodiedModel::default();
        let wafer = crate::wafer::Wafer::new_300mm();
        for area in [0.5, 1.0, 2.0, 4.0] {
            let d = die(area);
            let by_area = model.die_carbon(&d);
            let by_wafer = model.die_carbon_via_wafer(&d, &wafer).unwrap();
            assert!(
                by_wafer > by_area,
                "wafer path should include edge losses (area {area})"
            );
            // Within ~25% for production-sized dice.
            assert!(by_wafer.value() / by_area.value() < 1.25, "area {area}");
        }
        // The gap grows with die size.
        let small_gap = model
            .die_carbon_via_wafer(&die(0.5), &wafer)
            .unwrap()
            .value()
            / model.die_carbon(&die(0.5)).value();
        let big_gap = model
            .die_carbon_via_wafer(&die(4.0), &wafer)
            .unwrap()
            .value()
            / model.die_carbon(&die(4.0)).value();
        assert!(big_gap > small_gap);
    }

    #[test]
    fn wafer_path_rejects_oversized_dies() {
        let model = EmbodiedModel::default();
        let wafer = crate::wafer::Wafer::new_300mm();
        assert!(model.die_carbon_via_wafer(&die(700.0), &wafer).is_err());
    }

    #[test]
    fn die_validation() {
        assert!(Die::new("x", SquareCentimeters::new(0.0), ProcessNode::N7).is_err());
        assert!(Die::new("x", SquareCentimeters::new(-1.0), ProcessNode::N7).is_err());
    }
}
