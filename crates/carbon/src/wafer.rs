//! Wafer geometry and die-placement models.
//!
//! The paper extends ACT with "additional models for die placement and yield"
//! \[11\], \[34\]. This module implements the standard gross-die-per-wafer
//! approximation studied by de Vries \[11\] as well as an exact grid-placement
//! count, so the approximation error can be inspected.

use crate::error::CarbonError;
use crate::units::{Millimeters, SquareCentimeters, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// A silicon wafer with an edge-exclusion zone.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::wafer::Wafer;
/// use cordoba_carbon::units::SquareCentimeters;
///
/// let wafer = Wafer::new_300mm();
/// let dies = wafer.gross_dies(SquareCentimeters::new(1.0))?;
/// assert!(dies > 500.0 && dies < 707.0);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wafer {
    diameter: Millimeters,
    edge_exclusion: Millimeters,
}

impl Wafer {
    /// Creates a wafer.
    ///
    /// # Errors
    ///
    /// Returns an error if the diameter is not positive or the edge
    /// exclusion does not leave a usable region.
    pub fn new(diameter: Millimeters, edge_exclusion: Millimeters) -> Result<Self, CarbonError> {
        CarbonError::require_positive("wafer diameter", diameter.value())?;
        CarbonError::require_in_range(
            "edge exclusion",
            edge_exclusion.value(),
            0.0,
            diameter.value() / 2.0 - 1e-9,
        )?;
        Ok(Self {
            diameter,
            edge_exclusion,
        })
    }

    /// A standard 300 mm wafer with 3 mm edge exclusion.
    #[must_use]
    pub fn new_300mm() -> Self {
        Self {
            diameter: Millimeters::new(300.0),
            edge_exclusion: Millimeters::new(3.0),
        }
    }

    /// A standard 200 mm wafer with 3 mm edge exclusion.
    #[must_use]
    pub fn new_200mm() -> Self {
        Self {
            diameter: Millimeters::new(200.0),
            edge_exclusion: Millimeters::new(3.0),
        }
    }

    /// Wafer diameter.
    #[must_use]
    pub fn diameter(&self) -> Millimeters {
        self.diameter
    }

    /// Diameter of the usable (non-excluded) region.
    #[must_use]
    pub fn usable_diameter(&self) -> Millimeters {
        self.diameter - self.edge_exclusion * 2.0
    }

    /// Area of the usable region.
    #[must_use]
    pub fn usable_area(&self) -> SquareCentimeters {
        let r_mm = self.usable_diameter().value() / 2.0;
        SquareMillimeters::new(core::f64::consts::PI * r_mm * r_mm).to_square_centimeters()
    }

    /// Gross dies per wafer by the de Vries first-order formula \[11\]:
    /// `GDW = pi (d/2)^2 / A  -  pi d / sqrt(2 A)`.
    ///
    /// The second term accounts for partial dies lost at the wafer edge.
    ///
    /// # Errors
    ///
    /// Returns an error if `die_area` is not positive, or larger than the
    /// usable wafer area.
    pub fn gross_dies(&self, die_area: SquareCentimeters) -> Result<f64, CarbonError> {
        CarbonError::require_positive("die area", die_area.value())?;
        let a_mm2 = die_area.to_square_millimeters().value();
        let d = self.usable_diameter().value();
        let full = core::f64::consts::PI * (d / 2.0) * (d / 2.0) / a_mm2;
        let edge = core::f64::consts::PI * d / (2.0 * a_mm2).sqrt();
        let gdw = full - edge;
        if gdw < 1.0 {
            return Err(CarbonError::out_of_range(
                "die area (dies per wafer < 1)",
                die_area.value(),
                f64::MIN_POSITIVE,
                self.usable_area().value(),
            ));
        }
        Ok(gdw)
    }

    /// Exact count of `w x h` rectangular dies placeable on the usable
    /// region in a grid aligned to the wafer center.
    ///
    /// This is the reference against which [`Wafer::gross_dies`] can be
    /// validated; for square dies the two agree within a few percent.
    #[must_use]
    pub fn placed_dies(&self, die_w: Millimeters, die_h: Millimeters) -> u64 {
        let r = self.usable_diameter().value() / 2.0;
        let (w, h) = (die_w.value(), die_h.value());
        if w <= 0.0 || h <= 0.0 || w > 2.0 * r || h > 2.0 * r {
            return 0;
        }
        let mut count = 0u64;
        // Grid cells with corners at integer multiples of (w, h), centered.
        // Grid extents are bounded by wafer diameter / die size (a few
        // hundred), so the f64→i64 truncation below is exact.
        let cols = (2.0 * r / w).ceil() as i64 + 1; // cordoba-lint: allow(lossy-cast)
        let rows = (2.0 * r / h).ceil() as i64 + 1; // cordoba-lint: allow(lossy-cast)
        for i in -cols..cols {
            for j in -rows..rows {
                let x0 = i as f64 * w; // cordoba-lint: allow(lossy-cast) — |i| ≤ cols ≪ 2^53
                let y0 = j as f64 * h; // cordoba-lint: allow(lossy-cast) — |j| ≤ rows ≪ 2^53
                                       // All four corners must lie inside the circle of radius r.
                let corners = [(x0, y0), (x0 + w, y0), (x0, y0 + h), (x0 + w, y0 + h)];
                if corners.iter().all(|&(x, y)| x * x + y * y <= r * r) {
                    count += 1;
                }
            }
        }
        count
    }
}

impl Default for Wafer {
    /// The standard 300 mm production wafer.
    fn default() -> Self {
        Self::new_300mm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_geometry() {
        let w = Wafer::new_300mm();
        assert_eq!(w.usable_diameter(), Millimeters::new(294.0));
        // pi * 14.7^2 cm^2 ~ 678.9 cm^2.
        assert!((w.usable_area().value() - 678.87).abs() < 0.1);
        assert_eq!(w.diameter(), Millimeters::new(300.0));
    }

    #[test]
    fn gross_dies_close_to_known_values() {
        // 1 cm^2 dies on a 300 mm wafer: full-area bound is ~679, the edge
        // term removes ~65, landing near 613 (textbook ballpark ~600).
        let w = Wafer::new_300mm();
        let gdw = w.gross_dies(SquareCentimeters::new(1.0)).unwrap();
        assert!(gdw > 580.0 && gdw < 640.0, "gdw = {gdw}");
    }

    #[test]
    fn gross_dies_decrease_with_area_superlinearly() {
        let w = Wafer::new_300mm();
        let small = w.gross_dies(SquareCentimeters::new(0.5)).unwrap();
        let big = w.gross_dies(SquareCentimeters::new(2.0)).unwrap();
        // 4x area must cost more than 4x fewer dies (edge losses).
        assert!(small / big > 4.0);
    }

    #[test]
    fn gross_dies_rejects_bad_area() {
        let w = Wafer::new_300mm();
        assert!(w.gross_dies(SquareCentimeters::new(0.0)).is_err());
        assert!(w.gross_dies(SquareCentimeters::new(-1.0)).is_err());
        assert!(w.gross_dies(SquareCentimeters::new(700.0)).is_err());
    }

    #[test]
    fn placed_dies_approximates_gross_dies_for_square_dies() {
        let w = Wafer::new_300mm();
        // 10 mm x 10 mm = 1 cm^2 dies.
        let exact = w.placed_dies(Millimeters::new(10.0), Millimeters::new(10.0));
        let approx = w.gross_dies(SquareCentimeters::new(1.0)).unwrap();
        let rel = (exact as f64 - approx).abs() / approx;
        assert!(rel < 0.05, "exact {exact}, approx {approx}");
    }

    #[test]
    fn placed_dies_degenerate_inputs() {
        let w = Wafer::new_300mm();
        assert_eq!(
            w.placed_dies(Millimeters::new(0.0), Millimeters::new(10.0)),
            0
        );
        assert_eq!(
            w.placed_dies(Millimeters::new(400.0), Millimeters::new(10.0)),
            0
        );
    }

    #[test]
    fn constructor_validation() {
        assert!(Wafer::new(Millimeters::new(0.0), Millimeters::new(0.0)).is_err());
        assert!(Wafer::new(Millimeters::new(100.0), Millimeters::new(50.0)).is_err());
        assert!(Wafer::new(Millimeters::new(100.0), Millimeters::new(3.0)).is_ok());
    }

    #[test]
    fn smaller_wafer_holds_fewer_dies() {
        let d200 = Wafer::new_200mm()
            .gross_dies(SquareCentimeters::new(1.0))
            .unwrap();
        let d300 = Wafer::new_300mm()
            .gross_dies(SquareCentimeters::new(1.0))
            .unwrap();
        assert!(d300 > 2.0 * d200);
    }

    #[test]
    fn default_is_300mm() {
        assert_eq!(Wafer::default(), Wafer::new_300mm());
    }
}
