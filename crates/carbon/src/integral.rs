//! Exact-integration kernel for operational carbon (eq. IV.7 without
//! sampling error).
//!
//! Every time-varying operational-carbon number in CORDOBA is an integral
//! `∫ CI(t)·P(t) dt`. The sampled estimators ([`CiSource::mean_over`],
//! [`crate::operational::PowerProfile::energy_over`],
//! [`crate::operational::operational_carbon_profile`]) approximate it with
//! thousands of midpoint lookups per evaluation; this module computes it in
//! closed form:
//!
//! * [`CiIntegral`] — exact `∫ CI(t) dt` over an arbitrary interval, with
//!   closed-form antiderivatives for the analytic sources (cosine and
//!   exponential terms integrate analytically) and an O(log n) prefix-sum
//!   lookup for traces;
//! * [`PowerIntegral`] — exact `∫ P(t) dt` plus enumeration of a profile's
//!   maximal constant-power segments;
//! * [`operational_carbon_exact`] — the eq. IV.7 product, computed by
//!   splitting the lifetime at power-segment boundaries and applying the CI
//!   integral exactly on each constant-power piece.
//!
//! The sampled defaults remain in the API as *executable specifications*:
//! the property suite (`tests/prop_integral.rs`) asserts they converge to
//! these kernels as the sample count grows, and match exactly for constant
//! sources.

use crate::intensity::CiSource;
use crate::operational::PowerProfile;
use crate::units::{CarbonIntensity, CarbonIntensitySeconds, GramsCo2e, Joules, Seconds, Watts};

/// Antiderivative of `e^{k·t}` evaluated at `t`, for `k <= 0` (decline
/// rates are non-negative, so the exponent never grows).
///
/// For `k < 0` this is `e^{k·t}/k`; at `k = 0` the integrand is constant 1
/// and the antiderivative is `t` itself. The branch is on sign rather than
/// float equality: `k` is computed as `ln(1 - decline)/year`, which is
/// exactly `0.0` when `decline == 0` and strictly negative otherwise.
pub(crate) fn exp_antideriv(k: f64, t: f64) -> f64 {
    if k < 0.0 {
        (k * t).exp() / k
    } else {
        t
    }
}

/// Antiderivative of `e^{k·t}·cos(w·t)` evaluated at `t`:
/// `e^{k·t}·(k·cos(w·t) + w·sin(w·t)) / (k² + w²)`, valid for `w != 0`
/// (and in particular for `k = 0`, where it reduces to `sin(w·t)/w`).
pub(crate) fn exp_cos_antideriv(k: f64, w: f64, t: f64) -> f64 {
    let e = (k * t).exp();
    e * (k * (w * t).cos() + w * (w * t).sin()) / (k * k + w * w)
}

/// A carbon-intensity source whose time integral is available in closed
/// form (or amortized closed form, for prefix-summed traces).
///
/// Implementations must satisfy `integral_over(a, b) + integral_over(b, c)
/// == integral_over(a, c)` up to rounding, and agree with the sampled
/// [`CiSource::mean_over`] estimator in the limit of infinitely many
/// samples. `Send + Sync` is required so scenario sets can be evaluated by
/// parallel Monte Carlo workers.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::integral::CiIntegral;
/// use cordoba_carbon::intensity::{grids, ConstantCi};
/// use cordoba_carbon::units::Seconds;
///
/// let ci = ConstantCi::new(grids::US_AVERAGE);
/// let integral = ci.integral_over(Seconds::ZERO, Seconds::from_hours(1.0));
/// assert!((integral.value() - 380.0 * 3_600.0).abs() < 1e-6);
/// ```
pub trait CiIntegral: CiSource + Send + Sync {
    /// Exact `∫ CI(t) dt` over `[t0, t1]` (signed: swapping the bounds
    /// negates the result).
    #[must_use]
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds;

    /// Exact mean intensity over `[t0, t1]` — the closed-form counterpart
    /// of [`CiSource::mean_over`].
    ///
    /// For an empty interval (`t1 <= t0`) this degenerates to the point
    /// value `at(t0)`.
    #[must_use]
    fn mean_exact(&self, t0: Seconds, t1: Seconds) -> CarbonIntensity {
        let dt = t1 - t0;
        if dt.value() > 0.0 {
            self.integral_over(t0, t1) / dt
        } else {
            self.at(t0)
        }
    }
}

/// One maximal constant-power stretch of a piecewise-constant profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Segment start time.
    pub start: Seconds,
    /// Segment end time (`end > start`).
    pub end: Seconds,
    /// The constant draw across the segment.
    pub power: Watts,
}

impl PowerSegment {
    /// The segment's duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        self.end - self.start
    }
}

/// A power profile whose energy integral is available in closed form and
/// whose shape decomposes into constant-power segments.
///
/// The segment decomposition is what makes the eq. IV.7 product integral
/// exact: on a constant-power segment, `∫ CI(t)·P dt = P·∫ CI(t) dt`, and
/// the CI factor comes from [`CiIntegral`].
pub trait PowerIntegral: PowerProfile + Send + Sync {
    /// Exact `∫ P(t) dt` over `[t0, t1]` — the closed-form counterpart of
    /// the sampled [`PowerProfile::energy_over`] (which always starts at
    /// `t = 0`).
    #[must_use]
    fn energy_integral(&self, t0: Seconds, t1: Seconds) -> Joules;

    /// Visits the maximal constant-power segments covering `[t0, t1]`, in
    /// increasing time order. Does nothing when `t1 <= t0` (or either bound
    /// is NaN).
    fn for_each_segment(&self, t0: Seconds, t1: Seconds, visit: &mut dyn FnMut(PowerSegment));
}

/// Exact operational carbon for a time-varying intensity and a
/// piecewise-constant power profile over `[0, lifetime]` (eq. IV.7):
/// the lifetime is split at the profile's segment boundaries and each
/// constant-power segment contributes `P · ∫ CI(t) dt` exactly.
///
/// This replaces the sampled
/// [`crate::operational::operational_carbon_profile`], which remains as the
/// executable specification the property suite checks convergence against.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::integral::operational_carbon_exact;
/// use cordoba_carbon::intensity::{grids, ConstantCi};
/// use cordoba_carbon::operational::{operational_carbon, ConstantPower};
/// use cordoba_carbon::units::{Seconds, Watts};
///
/// let ci = ConstantCi::new(grids::US_AVERAGE);
/// let p = ConstantPower::new(Watts::new(8.3));
/// let life = Seconds::from_hours(1.0);
/// let exact = operational_carbon_exact(&ci, &p, life);
/// let closed = operational_carbon(grids::US_AVERAGE, Watts::new(8.3) * life);
/// assert!((exact.value() - closed.value()).abs() < 1e-9);
/// ```
#[must_use]
pub fn operational_carbon_exact(
    ci: &dyn CiIntegral,
    power: &dyn PowerIntegral,
    lifetime: Seconds,
) -> GramsCo2e {
    let mut total = GramsCo2e::ZERO;
    power.for_each_segment(Seconds::ZERO, lifetime, &mut |seg| {
        total += ci
            .integral_over(seg.start, seg.end)
            .carbon_at_power(seg.power);
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{grids, ConstantCi, DiurnalCi, SeasonalCi, TrendCi};
    use crate::operational::{
        operational_carbon, operational_carbon_profile, ConstantPower, DutyCycledPower,
    };
    use crate::units::SECONDS_PER_DAY;

    #[test]
    fn antiderivative_helpers_match_numeric_quadrature() {
        // ∫_0^T e^{kt} dt and ∫_0^T e^{kt} cos(wt) dt vs a fine midpoint sum.
        let quad = |f: &dyn Fn(f64) -> f64, t0: f64, t1: f64| {
            let n = 200_000;
            let dt = (t1 - t0) / f64::from(n);
            (0..n)
                .map(|i| f(t0 + (f64::from(i) + 0.5) * dt) * dt)
                .sum::<f64>()
        };
        for (k, w, t0, t1) in [
            (0.0, 2.0, 0.0, 3.0),
            (-0.5, 1.0, 0.5, 4.0),
            (-1e-3, 7.3, -2.0, 2.0),
        ] {
            let exact = exp_antideriv(k, t1) - exp_antideriv(k, t0);
            let numeric = quad(&|t| (k * t).exp(), t0, t1);
            assert!(
                (exact - numeric).abs() < 1e-6,
                "exp k={k}: {exact} vs {numeric}"
            );

            let exact = exp_cos_antideriv(k, w, t1) - exp_cos_antideriv(k, w, t0);
            let numeric = quad(&|t| (k * t).exp() * (w * t).cos(), t0, t1);
            assert!(
                (exact - numeric).abs() < 1e-6,
                "exp·cos k={k} w={w}: {exact} vs {numeric}"
            );
        }
    }

    #[test]
    fn mean_exact_degenerates_to_point_value_on_empty_interval() {
        let ci = DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        let t = Seconds::from_hours(5.0);
        assert_eq!(ci.mean_exact(t, t), ci.at(t));
        // Inverted interval also degenerates rather than dividing by a
        // negative duration.
        assert_eq!(ci.mean_exact(t, Seconds::ZERO), ci.at(t));
    }

    #[test]
    fn integrals_are_additive_over_adjacent_intervals() {
        let seasonal = SeasonalCi::solar_rich();
        let (a, b, c) = (
            Seconds::from_days(3.0),
            Seconds::from_days(40.0),
            Seconds::from_days(400.0),
        );
        let split = seasonal.integral_over(a, b) + seasonal.integral_over(b, c);
        let whole = seasonal.integral_over(a, c);
        assert!((split.value() - whole.value()).abs() / whole.value() < 1e-12);
        // Swapped bounds negate.
        let reversed = seasonal.integral_over(c, a);
        assert!((reversed.value() + whole.value()).abs() / whole.value() < 1e-12);
    }

    #[test]
    fn exact_product_matches_closed_form_for_constants() {
        let ci = ConstantCi::new(grids::US_AVERAGE);
        let p = ConstantPower::new(Watts::new(10.0));
        let life = Seconds::from_days(30.0);
        let exact = operational_carbon_exact(&ci, &p, life);
        let closed = operational_carbon(grids::US_AVERAGE, Watts::new(10.0) * life);
        assert!((exact.value() - closed.value()).abs() / closed.value() < 1e-12);
    }

    #[test]
    fn exact_product_is_the_limit_of_the_sampled_profile_integral() {
        let ci = DiurnalCi::new(CarbonIntensity::new(380.0), CarbonIntensity::new(120.0)).unwrap();
        let p = DutyCycledPower::daily(Watts::new(8.3), Watts::new(0.5), 2.0).unwrap();
        let life = Seconds::from_days(5.0);
        let exact = operational_carbon_exact(&ci, &p, life);
        let mut last_err = f64::INFINITY;
        for steps in [1_000, 10_000, 100_000] {
            let sampled = operational_carbon_profile(&ci, &p, life, steps);
            let err = (sampled.value() - exact.value()).abs() / exact.value();
            assert!(
                err < last_err * 2.0,
                "error should tighten: {err} after {last_err}"
            );
            last_err = err;
        }
        assert!(last_err < 1e-3, "final relative error {last_err}");
    }

    #[test]
    fn duty_cycle_segments_tile_the_interval() {
        let p = DutyCycledPower::new(Watts::new(4.0), Watts::new(1.0), Seconds::new(10.0), 0.3)
            .unwrap();
        let mut segments: Vec<PowerSegment> = Vec::new();
        p.for_each_segment(Seconds::new(2.0), Seconds::new(27.0), &mut |s| {
            segments.push(s);
        });
        // Segments are ordered, contiguous, and alternate with the duty shape.
        assert_eq!(segments.first().unwrap().start, Seconds::new(2.0));
        assert_eq!(segments.last().unwrap().end, Seconds::new(27.0));
        for pair in segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Each segment's power matches the profile at its midpoint.
        for seg in &segments {
            let mid_t = 0.5 * (seg.start.value() + seg.end.value());
            assert_eq!(seg.power, p.at(Seconds::new(mid_t)), "segment {seg:?}");
        }
        // And the segment energies sum to the closed-form energy integral.
        let summed: Joules = segments.iter().map(|s| s.power * s.duration()).sum();
        let exact = p.energy_integral(Seconds::new(2.0), Seconds::new(27.0));
        assert!((summed.value() - exact.value()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_duty_cycles_produce_single_power_segments() {
        for (duty, expect) in [(0.0, 1.0), (1.0, 4.0)] {
            let p =
                DutyCycledPower::new(Watts::new(4.0), Watts::new(1.0), Seconds::new(10.0), duty)
                    .unwrap();
            let mut powers: Vec<f64> = Vec::new();
            p.for_each_segment(Seconds::ZERO, Seconds::new(25.0), &mut |s| {
                powers.push(s.power.value());
            });
            assert!(
                powers.iter().all(|&w| (w - expect).abs() < 1e-12),
                "duty {duty}: {powers:?}"
            );
        }
    }

    #[test]
    fn empty_or_nan_interval_visits_no_segments() {
        let p = DutyCycledPower::daily(Watts::new(2.0), Watts::new(1.0), 6.0).unwrap();
        let mut count = 0usize;
        let day = Seconds::new(SECONDS_PER_DAY);
        p.for_each_segment(day, day, &mut |_| count += 1);
        p.for_each_segment(day, Seconds::ZERO, &mut |_| count += 1);
        p.for_each_segment(Seconds::new(f64::NAN), day, &mut |_| count += 1);
        assert_eq!(count, 0);
        assert_eq!(
            operational_carbon_exact(&ConstantCi::new(grids::WIND), &p, Seconds::ZERO),
            GramsCo2e::ZERO
        );
    }

    #[test]
    fn trend_integral_handles_zero_decline_exactly() {
        let flat = TrendCi::new(grids::US_AVERAGE, 0.0).unwrap();
        let life = Seconds::from_years(3.0);
        let integral = flat.integral_over(Seconds::ZERO, life);
        let expected = grids::US_AVERAGE * life;
        assert!((integral.value() - expected.value()).abs() / expected.value() < 1e-15);
    }
}
