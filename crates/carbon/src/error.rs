//! Error types for the carbon accounting substrate.

use core::fmt;

/// Errors produced while constructing or evaluating carbon models.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::CarbonError;
///
/// let err = CarbonError::out_of_range("yield", 1.5, 0.0, 1.0);
/// assert!(err.to_string().contains("yield"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CarbonError {
    /// A parameter was NaN or infinite.
    NonFinite {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter fell outside its valid range.
    OutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Smallest valid value (inclusive).
        min: f64,
        /// Largest valid value (inclusive).
        max: f64,
    },
    /// A parameter that must be strictly positive was zero or negative.
    NotPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A collection that must be non-empty was empty.
    Empty {
        /// Description of the collection.
        what: &'static str,
    },
    /// Samples that must be sorted/monotonic were not.
    NotMonotonic {
        /// Description of the sequence.
        what: &'static str,
    },
}

impl CarbonError {
    /// Builds an [`CarbonError::OutOfRange`] error.
    #[must_use]
    pub fn out_of_range(name: &'static str, value: f64, min: f64, max: f64) -> Self {
        Self::OutOfRange {
            name,
            value,
            min,
            max,
        }
    }

    /// Builds a [`CarbonError::NonFinite`] error.
    #[must_use]
    pub fn non_finite(name: &'static str, value: f64) -> Self {
        Self::NonFinite { name, value }
    }

    /// Validates that `value` is finite, returning it on success.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::NonFinite`] when `value` is NaN or infinite.
    pub fn require_finite(name: &'static str, value: f64) -> Result<f64, Self> {
        if value.is_finite() {
            Ok(value)
        } else {
            Err(Self::non_finite(name, value))
        }
    }

    /// Validates that `value` lies in `[min, max]`, returning it on success.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::OutOfRange`] (or [`CarbonError::NonFinite`])
    /// when the value is outside the range or not finite.
    pub fn require_in_range(
        name: &'static str,
        value: f64,
        min: f64,
        max: f64,
    ) -> Result<f64, Self> {
        let value = Self::require_finite(name, value)?;
        if (min..=max).contains(&value) {
            Ok(value)
        } else {
            Err(Self::out_of_range(name, value, min, max))
        }
    }

    /// Validates that `value` is strictly positive and finite.
    ///
    /// # Errors
    ///
    /// Returns an error when the value is zero, negative, or not finite.
    pub fn require_positive(name: &'static str, value: f64) -> Result<f64, Self> {
        let value = Self::require_finite(name, value)?;
        if value > 0.0 {
            Ok(value)
        } else {
            Err(Self::NotPositive { name, value })
        }
    }
}

impl fmt::Display for CarbonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFinite { name, value } => {
                write!(f, "parameter `{name}` must be finite, got {value}")
            }
            Self::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(
                f,
                "parameter `{name}` must be in [{min}, {max}], got {value}"
            ),
            Self::NotPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            Self::Empty { what } => write!(f, "{what} must not be empty"),
            Self::NotMonotonic { what } => write!(f, "{what} must be sorted in increasing order"),
        }
    }
}

impl std::error::Error for CarbonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CarbonError::out_of_range("yield", 1.5, 0.0, 1.0);
        assert_eq!(
            e.to_string(),
            "parameter `yield` must be in [0, 1], got 1.5"
        );
        let e = CarbonError::non_finite("area", f64::NAN);
        assert!(e.to_string().starts_with("parameter `area` must be finite"));
        let e = CarbonError::Empty { what: "trace" };
        assert_eq!(e.to_string(), "trace must not be empty");
        let e = CarbonError::require_positive("delay", -1.0).unwrap_err();
        assert_eq!(e.to_string(), "parameter `delay` must be positive, got -1");
        let e = CarbonError::NotMonotonic { what: "samples" };
        assert!(e.to_string().contains("sorted"));
    }

    #[test]
    fn validators() {
        assert_eq!(CarbonError::require_finite("x", 1.0), Ok(1.0));
        assert!(CarbonError::require_finite("x", f64::INFINITY).is_err());
        assert_eq!(CarbonError::require_in_range("x", 0.5, 0.0, 1.0), Ok(0.5));
        assert!(CarbonError::require_in_range("x", 2.0, 0.0, 1.0).is_err());
        assert!(CarbonError::require_in_range("x", f64::NAN, 0.0, 1.0).is_err());
        assert_eq!(CarbonError::require_positive("x", 2.0), Ok(2.0));
        assert!(CarbonError::require_positive("x", 0.0).is_err());
        assert!(CarbonError::require_positive("x", -1.0).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CarbonError>();
    }
}
