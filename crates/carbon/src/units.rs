//! Strongly-typed physical quantities used throughout CORDOBA.
//!
//! Every quantity is a transparent newtype over `f64` ([C-NEWTYPE]), so the
//! compiler distinguishes e.g. a duration from a frequency or an energy from
//! a carbon mass. Cross-unit arithmetic is only defined where it is
//! dimensionally meaningful (`Watts * Seconds = Joules`,
//! `CarbonIntensity * KilowattHours = GramsCo2e`, ...), which statically rules
//! out the classic unit-confusion bugs in carbon accounting.
//!
//! # Examples
//!
//! ```
//! use cordoba_carbon::units::{Watts, Seconds, CarbonIntensity, GramsCo2e};
//!
//! let energy = Watts::new(8.3) * Seconds::from_hours(1.0);
//! let ci = CarbonIntensity::new(380.0); // gCO2e per kWh
//! let carbon: GramsCo2e = ci * energy.to_kilowatt_hours();
//! assert!((carbon.value() - 3.154).abs() < 1e-3);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Number of joules in one kilowatt-hour.
pub const JOULES_PER_KILOWATT_HOUR: f64 = 3.6e6;
/// Number of seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3_600.0;
/// Number of seconds in one day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Number of seconds in one (365-day) year.
pub const SECONDS_PER_YEAR: f64 = 365.0 * SECONDS_PER_DAY;

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in the canonical unit
            #[doc = concat!("(`", $unit, "`).")]
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the canonical unit
            #[doc = concat!("(`", $unit, "`).")]
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the canonical unit symbol.
            #[must_use]
            pub const fn unit() -> &'static str {
                $unit
            }

            /// Absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// The smaller of `self` and `other` (NaN-propagating like `f64::min`).
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// The larger of `self` and `other`.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps into `[lo, hi]`.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is finite (not NaN/inf).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the value is `> 0` and finite.
            #[inline]
            #[must_use]
            pub fn is_positive(self) -> bool {
                self.0 > 0.0 && self.0.is_finite()
            }

            /// Dimensionless ratio `self / other`.
            ///
            /// Equivalent to the `Div<Self>` operator; provided as a named
            /// method for readability at call sites that compute ratios.
            #[inline]
            #[must_use]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

/// Defines `A * B = C` (commutatively) and the inverse divisions
/// `C / A = B`, `C / B = A`.
macro_rules! dimensional {
    ($a:ty, $b:ty => $c:ty) => {
        impl Mul<$b> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $b) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl Mul<$a> for $b {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl Div<$a> for $c {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $a) -> $b {
                <$b>::new(self.value() / rhs.value())
            }
        }

        impl Div<$b> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $b) -> $a {
                <$a>::new(self.value() / rhs.value())
            }
        }
    };
}

quantity!(
    /// A duration, in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A frequency, in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Energy, in joules.
    Joules,
    "J"
);
quantity!(
    /// Energy, in kilowatt-hours (the unit carbon intensities are quoted in).
    KilowattHours,
    "kWh"
);
quantity!(
    /// Power, in watts.
    Watts,
    "W"
);
quantity!(
    /// A mass of carbon-dioxide-equivalent emissions, in grams.
    GramsCo2e,
    "gCO2e"
);
quantity!(
    /// Silicon area, in square centimeters.
    SquareCentimeters,
    "cm^2"
);
quantity!(
    /// Silicon area, in square millimeters.
    SquareMillimeters,
    "mm^2"
);
quantity!(
    /// Carbon intensity of an energy source, in gCO2e per kilowatt-hour.
    CarbonIntensity,
    "gCO2e/kWh"
);
quantity!(
    /// A carbon intensity integrated over time — the value of
    /// `∫ CI(t) dt` over an interval, in (gCO2e/kWh)·s.
    ///
    /// Dividing by the interval length recovers a mean [`CarbonIntensity`];
    /// multiplying by a constant power (see
    /// [`CarbonIntensitySeconds::carbon_at_power`]) yields the operational
    /// carbon of that interval exactly (eq. IV.7 for piecewise-constant
    /// power).
    CarbonIntensitySeconds,
    "gCO2e*s/kWh"
);
quantity!(
    /// Fab energy consumed per unit die area (the paper's `EPA`), in kWh/cm^2.
    EnergyPerArea,
    "kWh/cm^2"
);
quantity!(
    /// Carbon emitted per unit die area (the paper's `MPA`/`GPA`), in gCO2e/cm^2.
    CarbonPerArea,
    "gCO2e/cm^2"
);
quantity!(
    /// Energy-delay product (the EDP metric), in joule-seconds.
    JouleSeconds,
    "J*s"
);
quantity!(
    /// Total-carbon-delay product (the tCDP metric), in gCO2e-seconds.
    GramSecondsCo2e,
    "gCO2e*s"
);
quantity!(
    /// Manufacturing defect density, in defects per square centimeter.
    DefectDensity,
    "defects/cm^2"
);
quantity!(
    /// A length, in millimeters (used for wafer geometry).
    Millimeters,
    "mm"
);
quantity!(
    /// Data volume, in bytes.
    Bytes,
    "B"
);
quantity!(
    /// Data bandwidth, in bytes per second.
    BytesPerSecond,
    "B/s"
);

dimensional!(Watts, Seconds => Joules);
dimensional!(Joules, Seconds => JouleSeconds);
dimensional!(GramsCo2e, Seconds => GramSecondsCo2e);
dimensional!(CarbonIntensity, KilowattHours => GramsCo2e);
dimensional!(CarbonIntensity, Seconds => CarbonIntensitySeconds);
dimensional!(EnergyPerArea, SquareCentimeters => KilowattHours);
dimensional!(CarbonPerArea, SquareCentimeters => GramsCo2e);
dimensional!(BytesPerSecond, Seconds => Bytes);
dimensional!(Joules, Hertz => Watts);

// `Hertz` is the inverse of `Seconds`: their product is a dimensionless
// cycle count, and a cycle count divided by one of them yields the other.
// These cross the `dimensional!` grid (whose output is always a quantity),
// so they are written out by hand.
impl Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.value() * rhs.value()
    }
}

impl Mul<Hertz> for Seconds {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Hertz) -> f64 {
        self.value() * rhs.value()
    }
}

impl Div<Hertz> for f64 {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Hertz) -> Seconds {
        Seconds::new(self / rhs.value())
    }
}

impl Div<Seconds> for f64 {
    type Output = Hertz;
    #[inline]
    fn div(self, rhs: Seconds) -> Hertz {
        Hertz::new(self / rhs.value())
    }
}

/// Exact `f64` of a count (simulation steps, sample indices, die tallies).
///
/// `usize as f64` silently rounds above 2^53; every count in CORDOBA is far
/// below that, and this helper is the single audited site for the cast, so
/// kernels never need a bare `as`.
#[must_use]
#[inline]
pub fn count_f64(n: usize) -> f64 {
    // cordoba-lint: allow(lossy-cast) — audited: counts stay far below 2^53.
    n as f64
}

impl Seconds {
    /// Builds a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * SECONDS_PER_HOUR)
    }

    /// Builds a duration from days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * SECONDS_PER_DAY)
    }

    /// Builds a duration from (365-day) years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Self::new(years * SECONDS_PER_YEAR)
    }

    /// The duration expressed in hours.
    #[must_use]
    pub fn to_hours(self) -> f64 {
        self.value() / SECONDS_PER_HOUR
    }

    /// The duration expressed in years.
    #[must_use]
    pub fn to_years(self) -> f64 {
        self.value() / SECONDS_PER_YEAR
    }

    /// The frequency whose period is this duration.
    ///
    /// Returns an infinite frequency for a zero duration.
    #[must_use]
    pub fn frequency(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

impl Hertz {
    /// Builds a frequency from gigahertz.
    #[must_use]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// The frequency expressed in gigahertz.
    #[must_use]
    pub fn to_gigahertz(self) -> f64 {
        self.value() / 1e9
    }

    /// The period of one cycle at this frequency.
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Joules {
    /// Builds an energy from nanojoules.
    #[must_use]
    pub fn from_nanojoules(nj: f64) -> Self {
        Self::new(nj * 1e-9)
    }

    /// Builds an energy from picojoules.
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Converts to kilowatt-hours.
    #[must_use]
    pub fn to_kilowatt_hours(self) -> KilowattHours {
        KilowattHours::new(self.value() / JOULES_PER_KILOWATT_HOUR)
    }
}

impl CarbonIntensitySeconds {
    /// Carbon emitted by a *constant* power draw across the interval this
    /// integral covers: `∫ CI(t)·P dt = P·∫ CI(t) dt`, with the
    /// (gCO2e/kWh)·s·W product converted to grams via the J-per-kWh factor.
    ///
    /// This is the exact eq. IV.7 product for one constant-power segment;
    /// piecewise-constant profiles sum it over their segments.
    #[must_use]
    pub fn carbon_at_power(self, power: Watts) -> GramsCo2e {
        GramsCo2e::new(self.value() * power.value() / JOULES_PER_KILOWATT_HOUR)
    }
}

impl KilowattHours {
    /// Converts to joules.
    #[must_use]
    pub fn to_joules(self) -> Joules {
        Joules::new(self.value() * JOULES_PER_KILOWATT_HOUR)
    }
}

impl SquareMillimeters {
    /// Converts to square centimeters.
    #[must_use]
    pub fn to_square_centimeters(self) -> SquareCentimeters {
        SquareCentimeters::new(self.value() / 100.0)
    }
}

impl SquareCentimeters {
    /// Converts to square millimeters.
    #[must_use]
    pub fn to_square_millimeters(self) -> SquareMillimeters {
        SquareMillimeters::new(self.value() * 100.0)
    }
}

impl Bytes {
    /// Builds a data volume from mebibytes (2^20 bytes).
    #[must_use]
    pub fn from_mebibytes(mib: f64) -> Self {
        Self::new(mib * f64::from(1u32 << 20))
    }

    /// The volume expressed in mebibytes.
    #[must_use]
    pub fn to_mebibytes(self) -> f64 {
        self.value() / f64::from(1u32 << 20)
    }
}

impl BytesPerSecond {
    /// Builds a bandwidth from gigabytes (1e9 bytes) per second.
    #[must_use]
    pub fn from_gigabytes_per_second(gbps: f64) -> Self {
        Self::new(gbps * 1e9)
    }
}

impl DefectDensity {
    /// Expected number of defects on a die of the given area.
    #[must_use]
    pub fn expected_defects(self, area: SquareCentimeters) -> f64 {
        self.value() * area.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e: Joules = Watts::new(2.0) * Seconds::new(3.0);
        assert_eq!(e, Joules::new(6.0));
        let e2: Joules = Seconds::new(3.0) * Watts::new(2.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_divided_by_time_is_power() {
        let p: Watts = Joules::new(6.0) / Seconds::new(3.0);
        assert_eq!(p, Watts::new(2.0));
        let t: Seconds = Joules::new(6.0) / Watts::new(2.0);
        assert_eq!(t, Seconds::new(3.0));
    }

    #[test]
    fn edp_units_compose() {
        let edp: JouleSeconds = Joules::new(0.4) * Seconds::new(0.125);
        assert!((edp.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn tcdp_units_compose() {
        let tcdp: GramSecondsCo2e = GramsCo2e::new(7438.0) * Seconds::new(0.125);
        assert!((tcdp.value() - 929.75).abs() < 1e-9);
    }

    #[test]
    fn carbon_intensity_times_energy_is_carbon() {
        // Paper Table III example: 8.3 W for one hour at 380 g/kWh = 3.154 g.
        let e = (Watts::new(8.3) * Seconds::from_hours(1.0)).to_kilowatt_hours();
        let c = CarbonIntensity::new(380.0) * e;
        assert!((c.value() - 3.154).abs() < 1e-3);
    }

    #[test]
    fn ci_integral_units_compose() {
        // 380 gCO2e/kWh held for one hour, drawn at 8.3 W, is the Table III
        // example: 3.154 gCO2e.
        let integral: CarbonIntensitySeconds =
            CarbonIntensity::new(380.0) * Seconds::from_hours(1.0);
        assert_eq!(integral, CarbonIntensitySeconds::new(380.0 * 3_600.0));
        let mean: CarbonIntensity = integral / Seconds::from_hours(1.0);
        assert!((mean.value() - 380.0).abs() < 1e-12);
        let carbon = integral.carbon_at_power(Watts::new(8.3));
        assert!((carbon.value() - 3.154).abs() < 1e-3);
        assert_eq!(
            CarbonIntensitySeconds::ZERO.carbon_at_power(Watts::new(100.0)),
            GramsCo2e::ZERO
        );
    }

    #[test]
    fn kwh_joule_round_trip() {
        let e = Joules::new(9.5);
        let back = e.to_kilowatt_hours().to_joules();
        assert!((back.value() - 9.5).abs() < 1e-12);
        assert!((e.to_kilowatt_hours().value() - 2.639e-6).abs() < 1e-9);
    }

    #[test]
    fn epa_times_area_is_energy() {
        // Paper Table III: EPA 2.15 kWh/cm^2 over 2.25 cm^2.
        let kwh: KilowattHours = EnergyPerArea::new(2.15) * SquareCentimeters::new(2.25);
        assert!((kwh.value() - 4.8375).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Hertz::from_gigahertz(0.8);
        let t = f.period();
        assert!((t.value() - 1.25e-9).abs() < 1e-21);
        assert!((t.frequency().to_gigahertz() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn time_conversions() {
        assert_eq!(Seconds::from_hours(2.0).value(), 7_200.0);
        assert_eq!(Seconds::from_days(1.0).value(), 86_400.0);
        assert!((Seconds::from_years(5.0).to_years() - 5.0).abs() < 1e-12);
        assert!((Seconds::from_hours(1.0).to_hours() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_conversions() {
        let a = SquareMillimeters::new(225.0).to_square_centimeters();
        assert!((a.value() - 2.25).abs() < 1e-12);
        assert!((a.to_square_millimeters().value() - 225.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = GramsCo2e::new(1.0) + GramsCo2e::new(2.0);
        assert_eq!(a, GramsCo2e::new(3.0));
        assert!(GramsCo2e::new(1.0) < GramsCo2e::new(2.0));
        assert_eq!(a * 2.0, GramsCo2e::new(6.0));
        assert_eq!(2.0 * a, GramsCo2e::new(6.0));
        assert_eq!(a / 3.0, GramsCo2e::new(1.0));
        assert_eq!(-a, GramsCo2e::new(-3.0));
        assert_eq!(a - GramsCo2e::new(1.0), GramsCo2e::new(2.0));
        let ratio: f64 = GramsCo2e::new(6.0) / GramsCo2e::new(3.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [Joules::new(1.0), Joules::new(2.5), Joules::new(0.5)];
        let total: Joules = parts.iter().sum();
        assert_eq!(total, Joules::new(4.0));
        let total2: Joules = parts.into_iter().sum();
        assert_eq!(total2, Joules::new(4.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Watts::new(8.3)), "8.3 W");
        assert_eq!(format!("{:.2}", Seconds::new(1.256)), "1.26 s");
        assert_eq!(format!("{}", CarbonIntensity::new(380.0)), "380 gCO2e/kWh");
    }

    #[test]
    fn helpers() {
        assert!(Joules::new(1.0).is_positive());
        assert!(!Joules::new(0.0).is_positive());
        assert!(!Joules::new(f64::NAN).is_finite());
        assert_eq!(Joules::new(-2.0).abs(), Joules::new(2.0));
        assert_eq!(Joules::new(1.0).max(Joules::new(2.0)), Joules::new(2.0));
        assert_eq!(Joules::new(1.0).min(Joules::new(2.0)), Joules::new(1.0));
        assert_eq!(
            Joules::new(5.0).clamp(Joules::new(0.0), Joules::new(2.0)),
            Joules::new(2.0)
        );
        assert_eq!(Joules::new(4.0).ratio(Joules::new(2.0)), 2.0);
    }

    #[test]
    fn bytes_and_bandwidth() {
        let v = Bytes::from_mebibytes(64.0);
        assert!((v.to_mebibytes() - 64.0).abs() < 1e-12);
        let bw = BytesPerSecond::from_gigabytes_per_second(16.0);
        let moved: Bytes = bw * Seconds::new(0.5);
        assert_eq!(moved, Bytes::new(8e9));
        let t: Seconds = Bytes::new(8e9) / bw;
        assert!((t.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn defect_expectation() {
        let d0 = DefectDensity::new(0.1);
        assert!((d0.expected_defects(SquareCentimeters::new(2.0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nanojoule_constructor() {
        // Table I IC "D": 4 nJ per cycle.
        let e = Joules::from_nanojoules(4.0);
        assert!((e.value() - 4e-9).abs() < 1e-21);
        assert!((Joules::from_picojoules(250.0).value() - 2.5e-10).abs() < 1e-24);
    }
}
