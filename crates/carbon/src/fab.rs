//! Per-node fabrication characterization (the paper's `EPA`, `MPA`, `GPA`).
//!
//! ACT \[22\] and the imec/EDTM characterization \[18\], \[39\] report that
//! advanced nodes require *more* fab energy per wafer area (EUV lithography,
//! more metal layers, more process steps) even as they deliver better logic
//! energy and density. That tension is the heart of the paper's §VII
//! discussion (Table VI): advancing a node improves energy efficiency but
//! *raises* embodied carbon per area.
//!
//! Absolute values below are synthesized to follow the published trends; see
//! `DESIGN.md` for the substitution note. The 7 nm row matches the worked
//! example in the paper's Table III (EPA 2.15 kWh/cm², MPA 500 gCO2e/cm²,
//! GPA 300 gCO2e/cm²).

use crate::units::{CarbonPerArea, DefectDensity, EnergyPerArea};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CMOS logic process technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProcessNode {
    /// 28 nm planar.
    N28,
    /// 20 nm planar.
    N20,
    /// 14 nm FinFET.
    N14,
    /// 10 nm FinFET.
    N10,
    /// 7 nm FinFET (the paper's VR SoC and accelerator node).
    N7,
    /// 5 nm FinFET/EUV.
    N5,
    /// 3 nm gate-all-around.
    N3,
}

impl ProcessNode {
    /// All nodes from oldest to newest.
    pub const ALL: [ProcessNode; 7] = [
        Self::N28,
        Self::N20,
        Self::N14,
        Self::N10,
        Self::N7,
        Self::N5,
        Self::N3,
    ];

    /// Nominal feature size in nanometers.
    #[must_use]
    pub fn nanometers(self) -> u32 {
        match self {
            Self::N28 => 28,
            Self::N20 => 20,
            Self::N14 => 14,
            Self::N10 => 10,
            Self::N7 => 7,
            Self::N5 => 5,
            Self::N3 => 3,
        }
    }

    /// The node one generation newer, if any.
    #[must_use]
    pub fn next(self) -> Option<Self> {
        let all = Self::ALL;
        let idx = all.iter().position(|&n| n == self)?;
        all.get(idx + 1).copied()
    }

    /// The fab characterization profile for this node.
    #[must_use]
    pub fn profile(self) -> FabProfile {
        // Columns: EPA (kWh/cm^2), MPA (g/cm^2), GPA (g/cm^2),
        // defect density (/cm^2), logic density (rel. 28nm),
        // energy/op (rel. 28nm), leakage power per transistor (rel. 28nm).
        let (epa, mpa, gpa, d0, density, energy, leakage) = match self {
            Self::N28 => (0.90, 500.0, 180.0, 0.060, 1.0, 1.00, 1.00),
            Self::N20 => (1.20, 500.0, 210.0, 0.070, 1.7, 0.78, 0.85),
            Self::N14 => (1.45, 500.0, 240.0, 0.080, 2.7, 0.60, 0.72),
            Self::N10 => (1.80, 500.0, 270.0, 0.090, 4.3, 0.46, 0.62),
            Self::N7 => (2.15, 500.0, 300.0, 0.100, 6.7, 0.35, 0.55),
            Self::N5 => (2.75, 500.0, 340.0, 0.115, 10.2, 0.28, 0.52),
            Self::N3 => (3.50, 500.0, 380.0, 0.130, 14.5, 0.24, 0.50),
        };
        FabProfile {
            node: self,
            epa: EnergyPerArea::new(epa),
            mpa: CarbonPerArea::new(mpa),
            gpa: CarbonPerArea::new(gpa),
            defect_density: DefectDensity::new(d0),
            logic_density: density,
            energy_per_op: energy,
            leakage_per_transistor: leakage,
        }
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.nanometers())
    }
}

/// Fab characterization for one process node.
///
/// The carbon-relevant columns (`epa`, `mpa`, `gpa`) feed eq. IV.5; the
/// scaling columns (`logic_density`, `energy_per_op`,
/// `leakage_per_transistor`) let `cordoba-tech` and `cordoba-accel` scale
/// designs across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabProfile {
    /// The node this profile describes.
    pub node: ProcessNode,
    /// Fab energy per die area (`EPA`).
    pub epa: EnergyPerArea,
    /// Carbon footprint of procured materials per die area (`MPA`).
    pub mpa: CarbonPerArea,
    /// Direct fab gas emissions per die area (`GPA`).
    pub gpa: CarbonPerArea,
    /// Manufacturing defect density feeding the yield model.
    pub defect_density: DefectDensity,
    /// Logic transistor density relative to 28 nm.
    pub logic_density: f64,
    /// Dynamic energy per logic operation relative to 28 nm.
    pub energy_per_op: f64,
    /// Leakage power per transistor relative to 28 nm.
    pub leakage_per_transistor: f64,
}

impl FabProfile {
    /// Leakage power *per unit area* relative to 28 nm.
    ///
    /// Density packs more transistors per area, so per-area leakage is
    /// `leakage_per_transistor * logic_density`.
    #[must_use]
    pub fn leakage_per_area(&self) -> f64 {
        self.leakage_per_transistor * self.logic_density
    }

    /// Area of a fixed logic design at this node, relative to its 28 nm
    /// area (the reciprocal of density scaling).
    #[must_use]
    pub fn area_scale(&self) -> f64 {
        1.0 / self.logic_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_nm_matches_paper_table_iii() {
        let p = ProcessNode::N7.profile();
        assert_eq!(p.epa, EnergyPerArea::new(2.15));
        assert_eq!(p.mpa, CarbonPerArea::new(500.0));
        assert_eq!(p.gpa, CarbonPerArea::new(300.0));
    }

    #[test]
    fn epa_increases_toward_newer_nodes() {
        let mut prev = 0.0;
        for node in ProcessNode::ALL {
            let epa = node.profile().epa.value();
            assert!(epa > prev, "{node} EPA {epa} not increasing");
            prev = epa;
        }
    }

    #[test]
    fn energy_per_op_decreases_toward_newer_nodes() {
        let mut prev = f64::INFINITY;
        for node in ProcessNode::ALL {
            let e = node.profile().energy_per_op;
            assert!(e < prev, "{node} energy/op {e} not decreasing");
            prev = e;
        }
    }

    #[test]
    fn density_increases_and_area_scale_is_reciprocal() {
        let mut prev = 0.0;
        for node in ProcessNode::ALL {
            let p = node.profile();
            assert!(p.logic_density > prev);
            assert!((p.area_scale() - 1.0 / p.logic_density).abs() < 1e-12);
            prev = p.logic_density;
        }
    }

    #[test]
    fn per_area_leakage_grows_with_density() {
        // Per-transistor leakage falls slower than density rises, so
        // per-area leakage grows toward newer nodes.
        let old = ProcessNode::N28.profile().leakage_per_area();
        let new = ProcessNode::N3.profile().leakage_per_area();
        assert!(new > old);
    }

    #[test]
    fn next_walks_the_roadmap() {
        assert_eq!(ProcessNode::N28.next(), Some(ProcessNode::N20));
        assert_eq!(ProcessNode::N7.next(), Some(ProcessNode::N5));
        assert_eq!(ProcessNode::N3.next(), None);
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(ProcessNode::N7.to_string(), "7 nm");
        assert!(ProcessNode::N28 < ProcessNode::N3);
        assert_eq!(ProcessNode::N5.nanometers(), 5);
    }

    #[test]
    fn defect_density_grows_for_newer_nodes() {
        assert!(
            ProcessNode::N3.profile().defect_density.value()
                > ProcessNode::N28.profile().defect_density.value()
        );
    }
}
