//! Carbon-intensity sources (`CI_use(t)`, `CI_fab`).
//!
//! The paper (§IV-B) stresses that `CI_use` varies over a system's lifetime —
//! diurnally with solar availability and annually as grids decarbonize — and
//! builds its uncertainty techniques around that. This module provides a
//! [`CiSource`] trait with constant, diurnal, trend, and trace-driven
//! implementations, plus published grid-average constants in [`grids`].

use crate::error::CarbonError;
use crate::integral::{exp_antideriv, exp_cos_antideriv, CiIntegral};
use crate::units::{
    count_f64, CarbonIntensity, CarbonIntensitySeconds, Seconds, SECONDS_PER_DAY, SECONDS_PER_YEAR,
};
use cordoba_obs::Counter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Integral-kernel traffic counters: how many point lookups and exact
/// interval integrals the trace kernel served (`--metrics` surfaces these;
/// a run dominated by lookups instead of integrals signals a consumer still
/// on the sampled path).
static TRACE_LOOKUPS: Counter = Counter::new("carbon/trace/lookups");
static TRACE_INTEGRALS: Counter = Counter::new("carbon/trace/integrals");

/// Published lifecycle carbon intensities of common energy sources, in
/// gCO2e/kWh. Values follow IPCC/ACT-style lifecycle figures.
pub mod grids {
    use crate::units::CarbonIntensity;

    /// Coal-fired generation.
    pub const COAL: CarbonIntensity = CarbonIntensity::new(820.0);
    /// Natural-gas generation.
    pub const GAS: CarbonIntensity = CarbonIntensity::new(490.0);
    /// World average grid mix.
    pub const WORLD_AVERAGE: CarbonIntensity = CarbonIntensity::new(475.0);
    /// United States average grid mix (the paper's `CI_use` example).
    pub const US_AVERAGE: CarbonIntensity = CarbonIntensity::new(380.0);
    /// Utility-scale solar photovoltaic.
    pub const SOLAR: CarbonIntensity = CarbonIntensity::new(41.0);
    /// Onshore wind.
    pub const WIND: CarbonIntensity = CarbonIntensity::new(11.0);
    /// Hydroelectric.
    pub const HYDRO: CarbonIntensity = CarbonIntensity::new(24.0);
    /// Nuclear.
    pub const NUCLEAR: CarbonIntensity = CarbonIntensity::new(12.0);
    /// Taiwan average grid mix (typical leading-edge fab location; the
    /// paper's `CI_fab` example of 820 g/kWh corresponds to a coal-heavy
    /// fab energy source).
    pub const TAIWAN: CarbonIntensity = CarbonIntensity::new(560.0);
}

/// A time-varying carbon-intensity signal `CI(t)`.
///
/// `t = 0` is the moment the system enters service. Implementations must
/// return non-negative, finite intensities for all `t >= 0`.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::intensity::{CiSource, ConstantCi, grids};
/// use cordoba_carbon::units::Seconds;
///
/// let ci = ConstantCi::new(grids::US_AVERAGE);
/// assert_eq!(ci.at(Seconds::from_days(100.0)), grids::US_AVERAGE);
/// ```
pub trait CiSource: fmt::Debug {
    /// The intensity at time `t` after deployment.
    fn at(&self, t: Seconds) -> CarbonIntensity;

    /// Mean intensity over `[0, duration]`, estimated with `samples`
    /// midpoint evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    fn mean_over(&self, duration: Seconds, samples: usize) -> CarbonIntensity {
        assert!(samples > 0, "samples must be > 0");
        let dt = duration.value() / count_f64(samples);
        let sum: f64 = (0..samples)
            .map(|i| self.at(Seconds::new((count_f64(i) + 0.5) * dt)).value())
            .sum();
        CarbonIntensity::new(sum / count_f64(samples))
    }
}

/// A constant carbon intensity (a fixed grid mix).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantCi {
    intensity: CarbonIntensity,
}

impl ConstantCi {
    /// Creates a constant source.
    #[must_use]
    pub const fn new(intensity: CarbonIntensity) -> Self {
        Self { intensity }
    }
}

impl CiSource for ConstantCi {
    fn at(&self, _t: Seconds) -> CarbonIntensity {
        self.intensity
    }
}

impl CiIntegral for ConstantCi {
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        self.intensity * (t1 - t0)
    }

    /// The mean of a constant is the constant, bit-exactly (no round trip
    /// through multiply-then-divide).
    fn mean_exact(&self, _t0: Seconds, _t1: Seconds) -> CarbonIntensity {
        self.intensity
    }
}

impl From<CarbonIntensity> for ConstantCi {
    fn from(intensity: CarbonIntensity) -> Self {
        Self::new(intensity)
    }
}

/// A diurnal (sinusoidal) intensity: low mid-day when solar is plentiful,
/// high overnight.
///
/// `CI(t) = mean + amplitude * cos(2π t / period)` with `t = 0` at the
/// overnight peak. The amplitude is clamped during construction so the
/// signal never goes negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCi {
    mean: CarbonIntensity,
    amplitude: CarbonIntensity,
    period: Seconds,
}

impl DiurnalCi {
    /// Creates a diurnal source with a 24 h period.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is negative/non-finite or
    /// `amplitude > mean` (which would produce negative intensities).
    pub fn new(mean: CarbonIntensity, amplitude: CarbonIntensity) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("diurnal mean", mean.value(), 0.0, f64::MAX)?;
        CarbonError::require_in_range("diurnal amplitude", amplitude.value(), 0.0, mean.value())?;
        Ok(Self {
            mean,
            amplitude,
            period: Seconds::new(SECONDS_PER_DAY),
        })
    }

    /// The mean intensity.
    #[must_use]
    pub fn mean(&self) -> CarbonIntensity {
        self.mean
    }
}

impl CiSource for DiurnalCi {
    fn at(&self, t: Seconds) -> CarbonIntensity {
        let phase = core::f64::consts::TAU * t.value() / self.period.value();
        self.mean + self.amplitude * phase.cos()
    }
}

impl CiIntegral for DiurnalCi {
    /// `∫ (m + a·cos(ωt)) dt = m·Δt + (a/ω)·(sin ωt₁ − sin ωt₀)`, here via
    /// the shared `e^{kt}·cos(ωt)` antiderivative at `k = 0`.
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        let w = core::f64::consts::TAU / self.period.value();
        let c1 = exp_cos_antideriv(0.0, w, t1.value());
        let c0 = exp_cos_antideriv(0.0, w, t0.value());
        self.mean * (t1 - t0) + self.amplitude * Seconds::new(c1 - c0)
    }
}

/// An exponentially decarbonizing grid:
/// `CI(t) = start * (1 - annual_decline)^(t in years)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrendCi {
    start: CarbonIntensity,
    annual_decline: f64,
}

impl TrendCi {
    /// Creates a decarbonization trend.
    ///
    /// `annual_decline` is the fraction by which intensity falls each year
    /// (e.g. `0.05` for 5 %/year).
    ///
    /// # Errors
    ///
    /// Returns an error if `annual_decline` is outside `[0, 1)` or `start`
    /// is negative/non-finite.
    pub fn new(start: CarbonIntensity, annual_decline: f64) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("trend start", start.value(), 0.0, f64::MAX)?;
        CarbonError::require_in_range("annual decline", annual_decline, 0.0, 1.0 - 1e-12)?;
        Ok(Self {
            start,
            annual_decline,
        })
    }
}

impl CiSource for TrendCi {
    fn at(&self, t: Seconds) -> CarbonIntensity {
        let years = t.value() / SECONDS_PER_YEAR;
        self.start * (1.0 - self.annual_decline).powf(years)
    }
}

impl CiIntegral for TrendCi {
    /// `CI(t) = start·e^{kt}` with `k = ln(1 − decline)/year ≤ 0`, so
    /// `∫ = start·(e^{kt₁} − e^{kt₀})/k` (and exactly `start·Δt` for a
    /// zero decline, where `k` is exactly zero).
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        let k = (1.0 - self.annual_decline).ln() / SECONDS_PER_YEAR;
        let e1 = exp_antideriv(k, t1.value());
        let e0 = exp_antideriv(k, t0.value());
        self.start * Seconds::new(e1 - e0)
    }
}

/// A trace-driven intensity built from `(time, intensity)` samples with
/// linear interpolation; values are held flat beyond the last sample.
///
/// Construction builds a cumulative trapezoid table (`prefix[i]` is the
/// exact `∫ CI` from the first sample to sample `i`), so point lookups and
/// interval integrals are both O(log n) binary searches instead of linear
/// scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCi {
    samples: Vec<(Seconds, CarbonIntensity)>,
    /// `prefix[i] = ∫_{t_first}^{t_i} CI(t) dt` in (gCO2e/kWh)·s; the trace
    /// is piecewise linear, so each increment is one exact trapezoid.
    prefix: Vec<f64>,
}

impl TraceCi {
    /// Builds a trace from samples sorted by time.
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty, not strictly increasing in
    /// time, or contains negative/non-finite intensities.
    pub fn new(samples: Vec<(Seconds, CarbonIntensity)>) -> Result<Self, CarbonError> {
        if samples.is_empty() {
            return Err(CarbonError::Empty {
                what: "carbon-intensity trace",
            });
        }
        for window in samples.windows(2) {
            if window[1].0.value() <= window[0].0.value() {
                return Err(CarbonError::NotMonotonic {
                    what: "carbon-intensity trace timestamps",
                });
            }
        }
        for &(_, ci) in &samples {
            CarbonError::require_in_range("trace intensity", ci.value(), 0.0, f64::MAX)?;
        }
        let mut prefix = Vec::with_capacity(samples.len());
        prefix.push(0.0);
        let mut acc = 0.0f64;
        for window in samples.windows(2) {
            let (t0, c0) = window[0];
            let (t1, c1) = window[1];
            acc += 0.5 * (c0.value() + c1.value()) * (t1.value() - t0.value());
            prefix.push(acc);
        }
        Ok(Self { samples, prefix })
    }

    /// Index of the first sample at or after `t` (`len` when `t` is past
    /// the last sample; 0 when it is at or before the first, or NaN).
    fn upper_sample(&self, t: Seconds) -> usize {
        self.samples
            .partition_point(|&(ts, _)| ts.value() < t.value())
    }

    /// `∫ CI` from the first sample's timestamp to `t`, with the boundary
    /// values extended flat outside the covered span (matching
    /// [`CiSource::at`]).
    fn cumulative(&self, t: Seconds) -> f64 {
        let (first_t, first_c) = self.samples[0];
        if t.value() <= first_t.value() {
            return first_c.value() * (t.value() - first_t.value());
        }
        let idx = self.upper_sample(t);
        let Some(&(t1, c1)) = self.samples.get(idx) else {
            let (last_t, last_c) = self.samples[self.samples.len() - 1];
            return self.prefix[self.prefix.len() - 1]
                + last_c.value() * (t.value() - last_t.value());
        };
        // t > first_t, so idx >= 1 and (idx-1, idx) brackets t; the partial
        // trapezoid up to the interpolated value completes the integral.
        let (t0, c0) = self.samples[idx - 1];
        let frac = (t.value() - t0.value()) / (t1.value() - t0.value());
        let ci_at_t = c0.value() + (c1.value() - c0.value()) * frac;
        self.prefix[idx - 1] + 0.5 * (c0.value() + ci_at_t) * (t.value() - t0.value())
    }

    /// The number of samples in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace has no samples (never true for constructed
    /// values; provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `[first, last]` timestamp range the trace actually covers.
    ///
    /// Outside this span [`CiSource::at`] holds the boundary value flat, so
    /// fallback chains use the span as the trace tier's validity window.
    #[must_use]
    pub fn span(&self) -> (Seconds, Seconds) {
        let first = self.samples.first().map_or(Seconds::ZERO, |s| s.0);
        let last = self.samples.last().map_or(Seconds::ZERO, |s| s.0);
        (first, last)
    }
}

impl CiSource for TraceCi {
    /// O(log n) binary search for the bracketing samples, then the same
    /// linear interpolation (bit-identically the same arithmetic) as the
    /// linear scan it replaced.
    fn at(&self, t: Seconds) -> CarbonIntensity {
        TRACE_LOOKUPS.incr();
        let first = self.samples[0];
        if t.value() <= first.0.value() {
            return first.1;
        }
        let idx = self.upper_sample(t);
        let Some(&(t1, c1)) = self.samples.get(idx) else {
            return self.samples[self.samples.len() - 1].1;
        };
        let (t0, c0) = self.samples[idx - 1];
        let frac = (t.value() - t0.value()) / (t1.value() - t0.value());
        c0 + (c1 - c0) * frac
    }
}

impl CiIntegral for TraceCi {
    /// Difference of two O(log n) prefix-table lookups; exact for the
    /// trace's piecewise-linear interpolation (each piece is a trapezoid).
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        TRACE_INTEGRALS.incr();
        let c1 = self.cumulative(t1);
        let c0 = self.cumulative(t0);
        CarbonIntensitySeconds::new(c1 - c0)
    }
}

/// A composite grid model: exponential decarbonization modulated by
/// diurnal (solar) and seasonal (heating/hydro) cycles:
///
/// `CI(t) = mean·(1-decline)^years · (1 + a_d·cos(2πt/day)) · (1 + a_s·cos(2πt/year))`
///
/// with `t = 0` at the overnight/winter peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeasonalCi {
    mean: CarbonIntensity,
    diurnal_amplitude: f64,
    seasonal_amplitude: f64,
    annual_decline: f64,
}

impl SeasonalCi {
    /// Creates a composite grid model.
    ///
    /// # Errors
    ///
    /// Returns an error unless the amplitudes are in `[0, 1)` (the product
    /// form then never goes negative), the decline is in `[0, 1)`, and the
    /// mean is non-negative.
    pub fn new(
        mean: CarbonIntensity,
        diurnal_amplitude: f64,
        seasonal_amplitude: f64,
        annual_decline: f64,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("seasonal mean", mean.value(), 0.0, f64::MAX)?;
        CarbonError::require_in_range("diurnal amplitude", diurnal_amplitude, 0.0, 1.0 - 1e-9)?;
        CarbonError::require_in_range("seasonal amplitude", seasonal_amplitude, 0.0, 1.0 - 1e-9)?;
        CarbonError::require_in_range("annual decline", annual_decline, 0.0, 1.0 - 1e-12)?;
        Ok(Self {
            mean,
            diurnal_amplitude,
            seasonal_amplitude,
            annual_decline,
        })
    }

    /// A solar-rich grid with a deep mid-day dip and steady
    /// decarbonization (a California-style duck curve).
    ///
    /// # Panics
    ///
    /// Never panics (static parameters are valid).
    #[must_use]
    pub fn solar_rich() -> Self {
        Self::new(CarbonIntensity::new(260.0), 0.45, 0.10, 0.06)
            .expect("static parameters are valid") // cordoba-lint: allow(no-panic) — parameters are compile-time constants, validated by tests
    }

    /// A coal-heavy grid: high baseline, weak daily structure, slow
    /// decarbonization.
    ///
    /// # Panics
    ///
    /// Never panics (static parameters are valid).
    #[must_use]
    pub fn coal_heavy() -> Self {
        Self::new(CarbonIntensity::new(680.0), 0.08, 0.12, 0.015)
            .expect("static parameters are valid") // cordoba-lint: allow(no-panic) — parameters are compile-time constants, validated by tests
    }

    /// A wind/hydro grid: low baseline with strong seasonal variation.
    ///
    /// # Panics
    ///
    /// Never panics (static parameters are valid).
    #[must_use]
    pub fn wind_hydro() -> Self {
        Self::new(CarbonIntensity::new(90.0), 0.10, 0.35, 0.04)
            .expect("static parameters are valid") // cordoba-lint: allow(no-panic) — parameters are compile-time constants, validated by tests
    }
}

impl CiSource for SeasonalCi {
    fn at(&self, t: Seconds) -> CarbonIntensity {
        let years = t.value() / SECONDS_PER_YEAR;
        let day_phase = core::f64::consts::TAU * t.value() / SECONDS_PER_DAY;
        let year_phase = core::f64::consts::TAU * years;
        self.mean
            * ((1.0 - self.annual_decline).powf(years)
                * (1.0 + self.diurnal_amplitude * day_phase.cos())
                * (1.0 + self.seasonal_amplitude * year_phase.cos()))
    }
}

impl CiIntegral for SeasonalCi {
    /// Expanding `e^{kt}·(1 + a_d·cos ω_d t)(1 + a_s·cos ω_s t)` gives four
    /// analytically integrable terms; the cosine product folds into sum and
    /// difference frequencies via
    /// `cos A·cos B = (cos(A−B) + cos(A+B))/2`. All frequencies involved
    /// (`ω_d`, `ω_s`, `ω_d ± ω_s`) are nonzero, so the shared
    /// `e^{kt}·cos(ωt)` antiderivative applies throughout.
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        let k = (1.0 - self.annual_decline).ln() / SECONDS_PER_YEAR;
        let wd = core::f64::consts::TAU / SECONDS_PER_DAY;
        let ws = core::f64::consts::TAU / SECONDS_PER_YEAR;
        let cross = 0.5 * self.diurnal_amplitude * self.seasonal_amplitude;
        let antideriv = |t: f64| -> f64 {
            exp_antideriv(k, t)
                + self.diurnal_amplitude * exp_cos_antideriv(k, wd, t)
                + self.seasonal_amplitude * exp_cos_antideriv(k, ws, t)
                + cross * (exp_cos_antideriv(k, wd - ws, t) + exp_cos_antideriv(k, wd + ws, t))
        };
        let f1 = antideriv(t1.value());
        let f0 = antideriv(t0.value());
        self.mean * Seconds::new(f1 - f0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasonal_profile_oscillates_and_declines() {
        let ci = SeasonalCi::solar_rich();
        // Mid-day dip vs overnight peak on day one.
        let night = ci.at(Seconds::ZERO);
        let noon = ci.at(Seconds::from_hours(12.0));
        assert!(night.value() > 1.5 * noon.value());
        // Annual mean declines year over year (sample whole years so the
        // cycles average out).
        let y0 = ci.mean_over(Seconds::from_years(1.0), 8_760);
        let shifted = SeasonalCi::solar_rich();
        let mut total = 0.0;
        let samples = 8_760;
        for i in 0..samples {
            let t = Seconds::from_years(2.0)
                + Seconds::from_hours(f64::from(i) * (8_760.0 / f64::from(samples)));
            total += shifted.at(t).value();
        }
        let y2 = total / f64::from(samples);
        assert!(y2 < y0.value() * 0.95, "year-2 mean {y2} vs year-0 {y0}");
    }

    #[test]
    fn seasonal_profiles_stay_non_negative_for_a_decade() {
        for profile in [
            SeasonalCi::solar_rich(),
            SeasonalCi::coal_heavy(),
            SeasonalCi::wind_hydro(),
        ] {
            for hour in (0..87_600).step_by(97) {
                let v = profile.at(Seconds::from_hours(f64::from(hour))).value();
                assert!(v >= 0.0, "{profile:?} at hour {hour}: {v}");
            }
        }
    }

    #[test]
    fn preset_ordering_is_sensible() {
        let t = Seconds::from_days(10.0);
        assert!(SeasonalCi::coal_heavy().at(t) > SeasonalCi::solar_rich().at(t));
        assert!(SeasonalCi::solar_rich().at(t) > SeasonalCi::wind_hydro().at(t));
    }

    #[test]
    fn seasonal_validation() {
        let mean = CarbonIntensity::new(100.0);
        assert!(SeasonalCi::new(mean, 1.0, 0.0, 0.0).is_err());
        assert!(SeasonalCi::new(mean, 0.0, 1.0, 0.0).is_err());
        assert!(SeasonalCi::new(mean, 0.5, 0.5, 1.0).is_err());
        assert!(SeasonalCi::new(CarbonIntensity::new(-1.0), 0.1, 0.1, 0.1).is_err());
        assert!(SeasonalCi::new(mean, 0.5, 0.5, 0.1).is_ok());
    }

    #[test]
    fn constant_is_constant() {
        let ci = ConstantCi::new(grids::US_AVERAGE);
        assert_eq!(ci.at(Seconds::ZERO), CarbonIntensity::new(380.0));
        assert_eq!(ci.at(Seconds::from_years(3.0)), CarbonIntensity::new(380.0));
        assert_eq!(
            ci.mean_over(Seconds::from_days(10.0), 7),
            CarbonIntensity::new(380.0)
        );
    }

    #[test]
    fn constant_from_intensity() {
        let ci: ConstantCi = grids::SOLAR.into();
        assert_eq!(ci.at(Seconds::ZERO), grids::SOLAR);
    }

    #[test]
    fn diurnal_oscillates_around_mean_and_stays_non_negative() {
        let ci = DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(150.0)).unwrap();
        // Peak at t = 0 (overnight), trough at mid-day.
        assert!((ci.at(Seconds::ZERO).value() - 550.0).abs() < 1e-9);
        assert!((ci.at(Seconds::from_hours(12.0)).value() - 250.0).abs() < 1e-6);
        // Mean over a whole number of days recovers the mean.
        let mean = ci.mean_over(Seconds::from_days(2.0), 4_800);
        assert!((mean.value() - 400.0).abs() < 0.5);
        for h in 0..48 {
            assert!(ci.at(Seconds::from_hours(f64::from(h))).value() >= 0.0);
        }
    }

    #[test]
    fn diurnal_rejects_negative_dips() {
        let err = DiurnalCi::new(CarbonIntensity::new(100.0), CarbonIntensity::new(200.0));
        assert!(err.is_err());
    }

    #[test]
    fn trend_decays_annually() {
        let ci = TrendCi::new(CarbonIntensity::new(400.0), 0.10).unwrap();
        assert!((ci.at(Seconds::ZERO).value() - 400.0).abs() < 1e-9);
        assert!((ci.at(Seconds::from_years(1.0)).value() - 360.0).abs() < 1e-9);
        assert!((ci.at(Seconds::from_years(2.0)).value() - 324.0).abs() < 1e-9);
    }

    #[test]
    fn trend_rejects_bad_decline() {
        assert!(TrendCi::new(CarbonIntensity::new(400.0), 1.0).is_err());
        assert!(TrendCi::new(CarbonIntensity::new(400.0), -0.1).is_err());
    }

    #[test]
    fn trace_interpolates_and_clamps() {
        let trace = TraceCi::new(vec![
            (Seconds::new(0.0), CarbonIntensity::new(100.0)),
            (Seconds::new(10.0), CarbonIntensity::new(300.0)),
            (Seconds::new(20.0), CarbonIntensity::new(200.0)),
        ])
        .unwrap();
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.at(Seconds::new(-5.0)), CarbonIntensity::new(100.0));
        assert_eq!(trace.at(Seconds::new(5.0)), CarbonIntensity::new(200.0));
        assert_eq!(trace.at(Seconds::new(15.0)), CarbonIntensity::new(250.0));
        assert_eq!(trace.at(Seconds::new(99.0)), CarbonIntensity::new(200.0));
    }

    #[test]
    fn single_sample_trace_is_flat_everywhere() {
        let trace = TraceCi::new(vec![(Seconds::new(50.0), CarbonIntensity::new(321.0))]).unwrap();
        assert_eq!(trace.len(), 1);
        for t in [-1e9, 0.0, 50.0, 51.0, 1e12] {
            assert_eq!(trace.at(Seconds::new(t)), CarbonIntensity::new(321.0));
        }
        assert_eq!(trace.span(), (Seconds::new(50.0), Seconds::new(50.0)));
        // The integral is the flat extension on both sides of the
        // zero-width span.
        let integral = trace.integral_over(Seconds::new(40.0), Seconds::new(60.0));
        assert!((integral.value() - 321.0 * 20.0).abs() < 1e-9);
        assert_eq!(
            trace.integral_over(Seconds::new(50.0), Seconds::new(50.0)),
            CarbonIntensitySeconds::ZERO
        );
        // Sampled mean over a span that starts at 0 agrees too.
        let sampled = trace.mean_over(Seconds::new(100.0), 16);
        assert!((sampled.value() - 321.0).abs() < 1e-12);
    }

    #[test]
    fn mean_over_zero_duration_returns_the_point_value() {
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        // Every midpoint of a zero-length interval is t = 0.
        let sampled = diurnal.mean_over(Seconds::ZERO, 64);
        assert!((sampled.value() - diurnal.at(Seconds::ZERO).value()).abs() < 1e-12);
        assert_eq!(
            diurnal.mean_exact(Seconds::ZERO, Seconds::ZERO),
            diurnal.at(Seconds::ZERO)
        );
    }

    #[test]
    fn mean_over_single_sample_is_the_midpoint_value() {
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        let d = Seconds::from_hours(6.0);
        assert_eq!(diurnal.mean_over(d, 1), diurnal.at(d / 2.0));
    }

    #[test]
    #[should_panic(expected = "samples must be > 0")]
    fn mean_over_zero_samples_panics_as_documented() {
        let ci = ConstantCi::new(grids::US_AVERAGE);
        let _ = ci.mean_over(Seconds::from_days(1.0), 0);
    }

    #[test]
    fn trace_rejects_empty_and_unsorted() {
        assert!(TraceCi::new(vec![]).is_err());
        let unsorted = vec![
            (Seconds::new(10.0), CarbonIntensity::new(1.0)),
            (Seconds::new(5.0), CarbonIntensity::new(2.0)),
        ];
        assert!(TraceCi::new(unsorted).is_err());
        let negative = vec![(Seconds::new(0.0), CarbonIntensity::new(-1.0))];
        assert!(TraceCi::new(negative).is_err());
    }

    #[test]
    fn grid_constants_are_ordered_sensibly() {
        assert!(grids::COAL > grids::GAS);
        assert!(grids::GAS > grids::US_AVERAGE);
        assert!(grids::US_AVERAGE > grids::SOLAR);
        assert!(grids::SOLAR > grids::WIND);
    }

    #[test]
    fn sources_are_object_safe() {
        let sources: Vec<Box<dyn CiSource>> = vec![
            Box::new(ConstantCi::new(grids::GAS)),
            Box::new(TrendCi::new(grids::GAS, 0.02).unwrap()),
        ];
        assert!(sources[0].at(Seconds::ZERO) > sources[1].at(Seconds::from_years(10.0)));
    }
}
