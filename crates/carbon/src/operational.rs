//! Operational-carbon accounting (paper eq. IV.6 and IV.7).
//!
//! The simple form is `C_operational = CI_use * E` for a known total energy;
//! the general form integrates a time-varying intensity against a power
//! profile: `C_operational = ∫ CI_use(t) P(t) dt`.

use crate::error::CarbonError;
use crate::integral::{PowerIntegral, PowerSegment};
use crate::intensity::CiSource;
use crate::units::{count_f64, CarbonIntensity, GramsCo2e, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Operational carbon for a known total energy at constant intensity
/// (eq. IV.6).
///
/// # Examples
///
/// ```
/// use cordoba_carbon::operational::operational_carbon;
/// use cordoba_carbon::units::{CarbonIntensity, Joules};
///
/// // 332 J per task at 380 gCO2e/kWh.
/// let c = operational_carbon(CarbonIntensity::new(380.0), Joules::new(332.0));
/// assert!((c.value() - 0.03504).abs() < 1e-4);
/// ```
#[must_use]
pub fn operational_carbon(ci: CarbonIntensity, energy: Joules) -> GramsCo2e {
    ci * energy.to_kilowatt_hours()
}

/// A time-varying power draw `P(t)`.
pub trait PowerProfile: fmt::Debug {
    /// Power at time `t` after deployment.
    fn at(&self, t: Seconds) -> Watts;

    /// Total energy over `[0, duration]`, by midpoint integration with
    /// `steps` samples.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    fn energy_over(&self, duration: Seconds, steps: usize) -> Joules {
        assert!(steps > 0, "steps must be > 0");
        let dt = duration.value() / count_f64(steps);
        let sum: f64 = (0..steps)
            .map(|i| self.at(Seconds::new((count_f64(i) + 0.5) * dt)).value())
            .sum();
        Joules::new(sum * dt)
    }
}

/// A constant power draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantPower {
    power: Watts,
}

impl ConstantPower {
    /// Creates a constant profile.
    #[must_use]
    pub const fn new(power: Watts) -> Self {
        Self { power }
    }
}

impl PowerProfile for ConstantPower {
    fn at(&self, _t: Seconds) -> Watts {
        self.power
    }
}

impl PowerIntegral for ConstantPower {
    fn energy_integral(&self, t0: Seconds, t1: Seconds) -> Joules {
        self.power * (t1 - t0)
    }

    fn for_each_segment(&self, t0: Seconds, t1: Seconds, visit: &mut dyn FnMut(PowerSegment)) {
        if t1.value() > t0.value() {
            visit(PowerSegment {
                start: t0,
                end: t1,
                power: self.power,
            });
        }
    }
}

/// A duty-cycled profile: `active` power for the first
/// `duty` fraction of each period, `idle` power (off-state leakage — the
/// paper notes idle time still consumes energy) for the rest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycledPower {
    active: Watts,
    idle: Watts,
    period: Seconds,
    duty: f64,
}

impl DutyCycledPower {
    /// Creates a duty-cycled profile.
    ///
    /// # Errors
    ///
    /// Returns an error if `duty` is outside `[0, 1]`, the period is not
    /// positive, or either power is negative.
    pub fn new(
        active: Watts,
        idle: Watts,
        period: Seconds,
        duty: f64,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("duty", duty, 0.0, 1.0)?;
        CarbonError::require_positive("period", period.value())?;
        CarbonError::require_in_range("active power", active.value(), 0.0, f64::MAX)?;
        CarbonError::require_in_range("idle power", idle.value(), 0.0, f64::MAX)?;
        Ok(Self {
            active,
            idle,
            period,
            duty,
        })
    }

    /// A daily cycle with `active_hours` of use per day.
    ///
    /// # Errors
    ///
    /// Returns an error if `active_hours` is outside `[0, 24]` or powers
    /// are negative.
    pub fn daily(active: Watts, idle: Watts, active_hours: f64) -> Result<Self, CarbonError> {
        CarbonError::require_in_range("active hours", active_hours, 0.0, 24.0)?;
        Self::new(active, idle, Seconds::from_days(1.0), active_hours / 24.0)
    }

    /// Mean power over a full period.
    #[must_use]
    pub fn mean_power(&self) -> Watts {
        self.active * self.duty + self.idle * (1.0 - self.duty)
    }
}

impl DutyCycledPower {
    /// Exact `∫ P` from the period-aligned origin to `t`: whole periods at
    /// the per-period energy plus the partial period's active-then-idle
    /// split. The profile is periodic over all of `t`, so this works for
    /// negative times too.
    fn cumulative_energy(&self, t: Seconds) -> Joules {
        let cycles = (t.value() / self.period.value()).floor();
        let phase = t - self.period * cycles;
        let active_len = self.period * self.duty;
        let per_period = self.active * active_len + self.idle * (self.period - active_len);
        let partial = self.active * phase.min(active_len)
            + self.idle * (phase - active_len).max(Seconds::ZERO);
        per_period * cycles + partial
    }
}

impl PowerProfile for DutyCycledPower {
    fn at(&self, t: Seconds) -> Watts {
        let phase = (t.value() / self.period.value()).rem_euclid(1.0);
        if phase < self.duty {
            self.active
        } else {
            self.idle
        }
    }
}

impl PowerIntegral for DutyCycledPower {
    fn energy_integral(&self, t0: Seconds, t1: Seconds) -> Joules {
        self.cumulative_energy(t1) - self.cumulative_energy(t0)
    }

    /// Walks the periods overlapping `[t0, t1]`, clipping the active
    /// (`[k·T, k·T + duty·T)`) and idle stretches of each to the requested
    /// interval — the half-open active window matches
    /// [`PowerProfile::at`]'s `phase < duty` rule. Zero-width stretches
    /// (duty 0 or 1) are skipped, so degenerate cycles yield one segment
    /// per period. O((t1 − t0)/period) segments.
    fn for_each_segment(&self, t0: Seconds, t1: Seconds, visit: &mut dyn FnMut(PowerSegment)) {
        // `partial_cmp` keeps the guard NaN-safe: a NaN bound is not
        // `Greater`, so the interval is treated as empty.
        if t1.value().partial_cmp(&t0.value()) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let active_len = self.period * self.duty;
        let mut cycle = (t0.value() / self.period.value()).floor();
        loop {
            let start = self.period * cycle;
            if start.value() >= t1.value() {
                break;
            }
            let a0 = start.max(t0);
            let a1 = (start + active_len).min(t1);
            if a1.value() > a0.value() {
                visit(PowerSegment {
                    start: a0,
                    end: a1,
                    power: self.active,
                });
            }
            let i0 = (start + active_len).max(t0);
            let i1 = (start + self.period).min(t1);
            if i1.value() > i0.value() {
                visit(PowerSegment {
                    start: i0,
                    end: i1,
                    power: self.idle,
                });
            }
            cycle += 1.0;
        }
    }
}

/// Operational carbon for a time-varying intensity and power profile
/// (eq. IV.7), by midpoint integration of `CI(t) * P(t)`.
///
/// # Panics
///
/// Panics if `steps == 0`.
#[must_use]
pub fn operational_carbon_profile(
    ci: &dyn CiSource,
    power: &dyn PowerProfile,
    lifetime: Seconds,
    steps: usize,
) -> GramsCo2e {
    assert!(steps > 0, "steps must be > 0");
    let dt = lifetime.value() / count_f64(steps);
    let mut grams = 0.0;
    for i in 0..steps {
        let t = Seconds::new((count_f64(i) + 0.5) * dt);
        let p = power.at(t);
        let e = (p * Seconds::new(dt)).to_kilowatt_hours();
        grams += (ci.at(t) * e).value();
    }
    GramsCo2e::new(grams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{grids, ConstantCi, DiurnalCi};

    #[test]
    fn table_iii_operational_example() {
        // 8.3 W for 1 hour at 380 g/kWh -> 3.154 gCO2e per hour of use.
        let e = Watts::new(8.3) * Seconds::from_hours(1.0);
        let c = operational_carbon(grids::US_AVERAGE, e);
        assert!((c.value() - 3.154).abs() < 1e-3);
    }

    #[test]
    fn profile_integration_matches_closed_form_for_constants() {
        let ci = ConstantCi::new(grids::US_AVERAGE);
        let p = ConstantPower::new(Watts::new(10.0));
        let life = Seconds::from_days(30.0);
        let integrated = operational_carbon_profile(&ci, &p, life, 1_000);
        let closed = operational_carbon(grids::US_AVERAGE, Watts::new(10.0) * life);
        assert!((integrated.value() - closed.value()).abs() / closed.value() < 1e-9);
    }

    #[test]
    fn duty_cycle_energy() {
        // 2 h/day active at 8.3 W, idle at 0.5 W.
        let p = DutyCycledPower::daily(Watts::new(8.3), Watts::new(0.5), 2.0).unwrap();
        let day = p.energy_over(Seconds::from_days(1.0), 24 * 60);
        let expected = 8.3 * 2.0 * crate::units::SECONDS_PER_HOUR
            + 0.5 * 22.0 * crate::units::SECONDS_PER_HOUR;
        assert!((day.value() - expected).abs() / expected < 1e-6);
        let mean = p.mean_power();
        assert!((mean.value() - expected / crate::units::SECONDS_PER_DAY).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_shape() {
        let p = DutyCycledPower::new(Watts::new(4.0), Watts::new(1.0), Seconds::new(10.0), 0.3)
            .unwrap();
        assert_eq!(p.at(Seconds::new(1.0)), Watts::new(4.0));
        assert_eq!(p.at(Seconds::new(5.0)), Watts::new(1.0));
        // Periodic.
        assert_eq!(p.at(Seconds::new(11.0)), Watts::new(4.0));
    }

    #[test]
    fn duty_cycle_validation() {
        assert!(DutyCycledPower::daily(Watts::new(1.0), Watts::new(0.1), 25.0).is_err());
        assert!(
            DutyCycledPower::new(Watts::new(1.0), Watts::new(0.1), Seconds::ZERO, 0.5).is_err()
        );
        assert!(
            DutyCycledPower::new(Watts::new(-1.0), Watts::new(0.1), Seconds::new(1.0), 0.5)
                .is_err()
        );
    }

    #[test]
    fn diurnal_ci_with_constant_power_averages_out() {
        // Over whole days, a diurnal CI with mean == constant CI gives the
        // same operational carbon for constant power.
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(380.0), CarbonIntensity::new(120.0)).unwrap();
        let constant = ConstantCi::new(grids::US_AVERAGE);
        let p = ConstantPower::new(Watts::new(5.0));
        let life = Seconds::from_days(10.0);
        let a = operational_carbon_profile(&diurnal, &p, life, 24_000);
        let b = operational_carbon_profile(&constant, &p, life, 24_000);
        assert!((a.value() - b.value()).abs() / b.value() < 1e-3);
    }

    #[test]
    fn solar_aligned_duty_cycle_cuts_carbon() {
        // Running the duty cycle mid-day (when the diurnal CI dips) emits
        // less carbon than the overnight peak. DiurnalCi peaks at t=0 and
        // dips at 12 h; our duty window is the first `duty` fraction of each
        // day, so shift comparison via two profiles sampled against the
        // diurnal curve directly.
        let ci = DiurnalCi::new(CarbonIntensity::new(380.0), CarbonIntensity::new(120.0)).unwrap();
        let night = DutyCycledPower::daily(Watts::new(8.0), Watts::new(0.0), 4.0).unwrap();
        let life = Seconds::from_days(5.0);
        let night_c = operational_carbon_profile(&ci, &night, life, 24_000);
        // Same energy at constant mean CI.
        let mean_c =
            operational_carbon(CarbonIntensity::new(380.0), night.energy_over(life, 24_000));
        // Overnight window catches the high-CI phase.
        assert!(night_c > mean_c);
    }

    #[test]
    fn zero_energy_zero_carbon() {
        assert_eq!(
            operational_carbon(grids::COAL, Joules::ZERO),
            GramsCo2e::ZERO
        );
    }

    #[test]
    fn energy_over_zero_duration_is_zero() {
        let p = DutyCycledPower::daily(Watts::new(8.3), Watts::new(0.5), 2.0).unwrap();
        assert_eq!(p.energy_over(Seconds::ZERO, 100), Joules::ZERO);
        assert_eq!(
            p.energy_integral(Seconds::ZERO, Seconds::ZERO),
            Joules::ZERO
        );
    }

    #[test]
    fn energy_over_one_step_is_the_midpoint_rectangle() {
        // With a single midpoint sample the whole interval is billed at
        // `at(duration / 2)`.
        let p = DutyCycledPower::new(Watts::new(4.0), Watts::new(1.0), Seconds::new(10.0), 0.3)
            .unwrap();
        let d = Seconds::new(8.0);
        let one = p.energy_over(d, 1);
        let expected = p.at(Seconds::new(4.0)) * d;
        assert_eq!(one, expected);
    }

    #[test]
    #[should_panic(expected = "steps must be > 0")]
    fn energy_over_zero_steps_panics_as_documented() {
        let p = ConstantPower::new(Watts::new(1.0));
        let _ = p.energy_over(Seconds::new(1.0), 0);
    }

    #[test]
    fn duty_cycle_exact_energy_matches_hand_count() {
        // 2 h/day at 8.3 W active, 0.5 W idle: exact over 1 day and over a
        // partial interval straddling the active/idle boundary.
        let p = DutyCycledPower::daily(Watts::new(8.3), Watts::new(0.5), 2.0).unwrap();
        let day = p.energy_integral(Seconds::ZERO, Seconds::from_days(1.0));
        let expected = 8.3 * 2.0 * crate::units::SECONDS_PER_HOUR
            + 0.5 * 22.0 * crate::units::SECONDS_PER_HOUR;
        assert!((day.value() - expected).abs() / expected < 1e-12);
        // [1 h, 3 h] covers one active hour then one idle hour.
        let window = p.energy_integral(Seconds::from_hours(1.0), Seconds::from_hours(3.0));
        let expected = (8.3 + 0.5) * crate::units::SECONDS_PER_HOUR;
        assert!((window.value() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn duty_cycle_exact_energy_is_additive_and_periodic() {
        let p = DutyCycledPower::new(Watts::new(4.0), Watts::new(1.0), Seconds::new(10.0), 0.3)
            .unwrap();
        let a = p.energy_integral(Seconds::new(-7.0), Seconds::new(3.0));
        let b = p.energy_integral(Seconds::new(3.0), Seconds::new(13.0));
        let whole = p.energy_integral(Seconds::new(-7.0), Seconds::new(13.0));
        assert!((a.value() + b.value() - whole.value()).abs() < 1e-9);
        // One full period anywhere equals mean power times the period.
        let per_period = p.mean_power() * Seconds::new(10.0);
        assert!((a.value() - per_period.value()).abs() / per_period.value() < 1e-12);
    }
}
