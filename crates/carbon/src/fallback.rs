//! Fallback chains of carbon-intensity sources.
//!
//! A production deployment ideally runs on a live grid-intensity trace, but
//! feeds go down, cover a bounded time window, and occasionally emit
//! garbage. [`FallbackCi`] chains several [`CiSource`]s in priority order —
//! typically trace → diurnal model → constant grid average — with an
//! optional validity window per tier, so a trace outage degrades to a model
//! instead of failing (or silently extrapolating) the run.
//!
//! Every query is counted per serving tier, so [`FallbackCi::health`] can
//! report after the fact how often the chain degraded below its primary
//! source.
//
// cordoba-lint: allow-file(atomic-ordering) — per-tier hit/rejected tallies
// are monotonic observability counters read only by `health()` snapshots;
// no data is published through them, so Relaxed is sufficient.

use crate::error::CarbonError;
use crate::integral::CiIntegral;
use crate::intensity::{CiSource, ConstantCi, DiurnalCi, TraceCi};
use crate::units::{CarbonIntensity, CarbonIntensitySeconds, Seconds};
use cordoba_obs::{Counter, Event, LabeledCounter};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide mirrors of the per-chain accounting, surfaced through the
/// cordoba-obs registry so `--metrics` and `doctor` can report fallback
/// behavior without holding a reference to every chain. Tier switches and
/// exhaustions additionally go through [`cordoba_obs::record`] as typed
/// events; `crates/carbon/tests/obs_fallback.rs` pins these mirrors to
/// [`FallbackCi::health`].
static FALLBACK_QUERIES: Counter = Counter::new("carbon/fallback/queries");
static FALLBACK_REJECTED: Counter = Counter::new("carbon/fallback/rejected");

/// Per-tier hit counts, labeled positionally after the [`FallbackCi::standard`]
/// chain (trace → diurnal → constant); deeper tiers of a custom chain land
/// in the trailing `other` cell. Exported as
/// `carbon_fallback_tier_hits{tier="..."}` in the Prometheus rendering.
static FALLBACK_TIER_HITS: LabeledCounter = LabeledCounter::new(
    "carbon/fallback/tier_hits",
    "tier",
    &["trace", "diurnal", "constant", "other"],
);

/// The zero-based tier index as the `u64` payload of a tier-switch event.
fn tier_index(index: usize) -> u64 {
    u64::try_from(index).unwrap_or(u64::MAX)
}

/// One prioritized source in a [`FallbackCi`] chain.
#[derive(Debug)]
struct Tier {
    /// Human-readable name used in health reports.
    label: String,
    /// The underlying intensity source.
    source: Box<dyn CiIntegral>,
    /// Inclusive `[from, until]` validity window; `None` means always valid.
    window: Option<(Seconds, Seconds)>,
    /// Queries this tier answered.
    hits: AtomicU64,
    /// Queries this tier was consulted for but answered with a non-finite
    /// or negative intensity.
    rejected: AtomicU64,
}

impl Tier {
    /// `true` when the tier is willing to answer for time `t`.
    fn covers(&self, t: Seconds) -> bool {
        match self.window {
            None => true,
            Some((from, until)) => t.value() >= from.value() && t.value() <= until.value(),
        }
    }
}

/// Builder for [`FallbackCi`] chains; tiers are consulted in the order they
/// are added.
#[derive(Debug, Default)]
pub struct FallbackCiBuilder {
    tiers: Vec<Tier>,
}

impl FallbackCiBuilder {
    /// Appends an always-valid tier.
    #[must_use]
    pub fn tier(mut self, label: impl Into<String>, source: Box<dyn CiIntegral>) -> Self {
        self.tiers.push(Tier {
            label: label.into(),
            source,
            window: None,
            hits: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        self
    }

    /// Appends a tier that only answers for `t` in `[from, until]`.
    #[must_use]
    pub fn tier_within(
        mut self,
        label: impl Into<String>,
        source: Box<dyn CiIntegral>,
        from: Seconds,
        until: Seconds,
    ) -> Self {
        self.tiers.push(Tier {
            label: label.into(),
            source,
            window: Some((from, until)),
            hits: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        self
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::Empty`] when no tier was added, and
    /// [`CarbonError::NotMonotonic`] when a tier's validity window is
    /// inverted (`from > until`) or non-finite.
    pub fn build(self) -> Result<FallbackCi, CarbonError> {
        if self.tiers.is_empty() {
            return Err(CarbonError::Empty {
                what: "fallback chain",
            });
        }
        for tier in &self.tiers {
            if let Some((from, until)) = tier.window {
                if !from.is_finite() || !until.is_finite() || from.value() > until.value() {
                    return Err(CarbonError::NotMonotonic {
                        what: "fallback tier validity window",
                    });
                }
            }
        }
        Ok(FallbackCi {
            tiers: self.tiers,
            queries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        })
    }
}

/// A prioritized chain of [`CiSource`]s with per-tier validity windows and
/// query accounting.
///
/// [`CiSource::at`] walks the tiers in order and returns the first finite,
/// non-negative answer from a tier whose window covers `t`. If every tier
/// declines, the chain returns [`CarbonIntensity::ZERO`] and counts the
/// query as exhausted — callers watching [`FallbackCi::health`] can tell a
/// healthy run from a degraded one.
///
/// # Examples
///
/// ```
/// use cordoba_carbon::fallback::FallbackCi;
/// use cordoba_carbon::intensity::{grids, CiSource, TraceCi};
/// use cordoba_carbon::units::{CarbonIntensity, Seconds};
///
/// let trace = TraceCi::new(vec![
///     (Seconds::new(0.0), CarbonIntensity::new(300.0)),
///     (Seconds::new(3_600.0), CarbonIntensity::new(420.0)),
/// ])?;
/// let chain = FallbackCi::standard(trace, None, grids::US_AVERAGE)?;
///
/// // Inside the trace span: answered by the trace.
/// assert_eq!(chain.at(Seconds::new(0.0)), CarbonIntensity::new(300.0));
/// // Far beyond it: degrades to the constant grid average.
/// assert_eq!(chain.at(Seconds::from_days(30.0)), grids::US_AVERAGE);
/// assert!(chain.health().degraded());
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug)]
pub struct FallbackCi {
    tiers: Vec<Tier>,
    /// Total queries served.
    queries: AtomicU64,
    /// Queries no tier could answer (served as zero intensity).
    exhausted: AtomicU64,
}

impl FallbackCi {
    /// Starts building a chain.
    #[must_use]
    pub fn builder() -> FallbackCiBuilder {
        FallbackCiBuilder::default()
    }

    /// The canonical trace → diurnal → constant chain from the design docs:
    /// the trace answers inside its covered span, an optional diurnal model
    /// answers elsewhere, and `constant` is the unconditional backstop.
    ///
    /// # Errors
    ///
    /// Returns an error when the trace span is invalid (cannot happen for a
    /// constructed [`TraceCi`]).
    pub fn standard(
        trace: TraceCi,
        diurnal: Option<DiurnalCi>,
        constant: CarbonIntensity,
    ) -> Result<Self, CarbonError> {
        let (from, until) = trace.span();
        let mut builder = Self::builder().tier_within("trace", Box::new(trace), from, until);
        if let Some(model) = diurnal {
            builder = builder.tier("diurnal", Box::new(model));
        }
        builder
            .tier("constant", Box::new(ConstantCi::new(constant)))
            .build()
    }

    /// Fraction of the query window `[from, until]` that each tier's
    /// validity window covers, in chain priority order.
    ///
    /// This is the planning-side complement to [`FallbackCi::health`]:
    /// health reports how queries *were* served, coverage reports how a
    /// window *would* be served. A supervised sweep that is stopped early
    /// integrates only a prefix of its lifetime window — pass that partial
    /// window here to see which tiers back the truncated result (e.g. a
    /// trace tier covering 100 % of a 5-hour prefix but 3 % of the full
    /// deployment).
    ///
    /// A zero-length window (`from == until`) reports 1.0 for tiers whose
    /// window contains the instant and 0.0 otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CarbonError::NotMonotonic`] when the window is non-finite
    /// or inverted (`from > until`).
    pub fn tier_coverage(
        &self,
        from: Seconds,
        until: Seconds,
    ) -> Result<Vec<TierCoverage>, CarbonError> {
        if !from.is_finite() || !until.is_finite() || from.value() > until.value() {
            return Err(CarbonError::NotMonotonic {
                what: "fallback coverage query window",
            });
        }
        let span = until.value() - from.value();
        Ok(self
            .tiers
            .iter()
            .map(|tier| {
                let fraction = match tier.window {
                    None => 1.0,
                    Some((lo, hi)) => {
                        // Degenerate point query: the window collapses to an
                        // instant, so coverage is a membership test, not a
                        // ratio. Exact zero is the intended sentinel — any
                        // nonzero span, however small, divides fine below.
                        // cordoba-lint: allow(float-eq)
                        if span == 0.0 {
                            f64::from(u8::from(tier.covers(from)))
                        } else {
                            let overlap =
                                hi.value().min(until.value()) - lo.value().max(from.value());
                            (overlap / span).clamp(0.0, 1.0)
                        }
                    }
                };
                TierCoverage {
                    label: tier.label.clone(),
                    fraction,
                }
            })
            .collect())
    }

    /// Snapshot of the chain's query accounting.
    #[must_use]
    pub fn health(&self) -> FallbackHealth {
        FallbackHealth {
            tiers: self
                .tiers
                .iter()
                .map(|tier| TierHealth {
                    label: tier.label.clone(),
                    hits: tier.hits.load(Ordering::Relaxed),
                    rejected: tier.rejected.load(Ordering::Relaxed),
                })
                .collect(),
            queries: self.queries.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

impl CiSource for FallbackCi {
    fn at(&self, t: Seconds) -> CarbonIntensity {
        self.queries.fetch_add(1, Ordering::Relaxed);
        FALLBACK_QUERIES.incr();
        for (index, tier) in self.tiers.iter().enumerate() {
            if !tier.covers(t) {
                continue;
            }
            let value = tier.source.at(t);
            if value.is_finite() && value.value() >= 0.0 {
                tier.hits.fetch_add(1, Ordering::Relaxed);
                FALLBACK_TIER_HITS.incr(index);
                if index > 0 {
                    cordoba_obs::record(&Event::FallbackTierSwitch {
                        tier: tier_index(index),
                    });
                }
                return value;
            }
            tier.rejected.fetch_add(1, Ordering::Relaxed);
            FALLBACK_REJECTED.incr();
        }
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        cordoba_obs::record(&Event::FallbackExhausted);
        CarbonIntensity::ZERO
    }
}

impl CiIntegral for FallbackCi {
    /// Exact interval integral through the chain.
    ///
    /// `[t0, t1]` is split at every tier window endpoint that falls strictly
    /// inside it, so each sub-interval has a fixed covering-tier set. Each
    /// sub-interval counts as one query: the first covering tier whose
    /// integral is finite and non-negative serves it (a hit); tiers
    /// producing invalid integrals are counted as rejected; a sub-interval
    /// no tier can serve contributes zero and counts as exhausted —
    /// mirroring [`CiSource::at`]'s accounting so [`FallbackCi::health`]
    /// sees the integral path too.
    fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
        // `partial_cmp` keeps the guard NaN-safe: a NaN bound is not
        // `Greater`, so the interval is treated as empty.
        if t1.value().partial_cmp(&t0.value()) != Some(std::cmp::Ordering::Greater) {
            return CarbonIntensitySeconds::ZERO;
        }
        let mut cuts = vec![t0.value(), t1.value()];
        for tier in &self.tiers {
            if let Some((from, until)) = tier.window {
                for edge in [from.value(), until.value()] {
                    if edge > t0.value() && edge < t1.value() {
                        cuts.push(edge);
                    }
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        let mut total = 0.0;
        for pair in cuts.windows(2) {
            let (a, b) = (Seconds::new(pair[0]), Seconds::new(pair[1]));
            self.queries.fetch_add(1, Ordering::Relaxed);
            FALLBACK_QUERIES.incr();
            let mut served = false;
            for (index, tier) in self.tiers.iter().enumerate() {
                if !(tier.covers(a) && tier.covers(b)) {
                    continue;
                }
                let part = tier.source.integral_over(a, b);
                if part.is_finite() && part.value() >= 0.0 {
                    tier.hits.fetch_add(1, Ordering::Relaxed);
                    FALLBACK_TIER_HITS.incr(index);
                    if index > 0 {
                        cordoba_obs::record(&Event::FallbackTierSwitch {
                            tier: tier_index(index),
                        });
                    }
                    total += part.value();
                    served = true;
                    break;
                }
                tier.rejected.fetch_add(1, Ordering::Relaxed);
                FALLBACK_REJECTED.incr();
            }
            if !served {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                cordoba_obs::record(&Event::FallbackExhausted);
            }
        }
        CarbonIntensitySeconds::new(total)
    }
}

/// Window-coverage of one tier over a queried interval, from
/// [`FallbackCi::tier_coverage`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierCoverage {
    /// The tier's label.
    pub label: String,
    /// Fraction of the queried window the tier's validity window covers,
    /// in `[0, 1]` (1.0 for unwindowed tiers).
    pub fraction: f64,
}

/// Query accounting for one tier of a [`FallbackCi`] chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierHealth {
    /// The tier's label.
    pub label: String,
    /// Queries this tier answered.
    pub hits: u64,
    /// Queries this tier answered with an invalid (non-finite or negative)
    /// intensity, forcing a further fallback.
    pub rejected: u64,
}

/// Snapshot of a [`FallbackCi`] chain's accounting, from
/// [`FallbackCi::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackHealth {
    /// Per-tier accounting, in chain priority order.
    pub tiers: Vec<TierHealth>,
    /// Total queries served by the chain.
    pub queries: u64,
    /// Queries no tier could answer (served as zero intensity).
    pub exhausted: u64,
}

impl FallbackHealth {
    /// `true` when any query was answered below the primary tier (or not at
    /// all) — i.e. the chain has actually degraded at least once.
    #[must_use]
    pub fn degraded(&self) -> bool {
        let primary_hits = self.tiers.first().map_or(0, |t| t.hits);
        self.exhausted > 0 || primary_hits < self.queries
    }
}

impl fmt::Display for FallbackHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fallback chain: {} queries, {} exhausted ({})",
            self.queries,
            self.exhausted,
            if self.degraded() {
                "DEGRADED"
            } else {
                "healthy"
            }
        )?;
        for (i, tier) in self.tiers.iter().enumerate() {
            write!(
                f,
                "{}  tier {} `{}`: {} hits, {} rejected",
                if i > 0 { "\n" } else { "" },
                i,
                tier.label,
                tier.hits,
                tier.rejected
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::grids;

    fn short_trace() -> TraceCi {
        TraceCi::new(vec![
            (Seconds::new(0.0), CarbonIntensity::new(100.0)),
            (Seconds::new(100.0), CarbonIntensity::new(200.0)),
        ])
        .unwrap()
    }

    #[test]
    fn empty_chain_is_rejected() {
        assert!(matches!(
            FallbackCi::builder().build(),
            Err(CarbonError::Empty { .. })
        ));
    }

    #[test]
    fn inverted_window_is_rejected() {
        let err = FallbackCi::builder()
            .tier_within(
                "bad",
                Box::new(short_trace()),
                Seconds::new(10.0),
                Seconds::new(0.0),
            )
            .build();
        assert!(matches!(err, Err(CarbonError::NotMonotonic { .. })));
    }

    #[test]
    fn primary_tier_answers_inside_its_window() {
        let chain = FallbackCi::standard(short_trace(), None, grids::US_AVERAGE).unwrap();
        assert_eq!(chain.at(Seconds::new(50.0)), CarbonIntensity::new(150.0));
        let health = chain.health();
        assert_eq!(health.queries, 1);
        assert_eq!(health.tiers[0].hits, 1);
        assert!(!health.degraded());
    }

    #[test]
    fn falls_back_outside_the_window() {
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        let chain = FallbackCi::standard(short_trace(), Some(diurnal), grids::US_AVERAGE).unwrap();
        // t = 0 h after the span: diurnal peak (mean + amplitude at phase 0
        // of the day)... actually t=200 s is near the overnight peak.
        let v = chain.at(Seconds::new(200.0));
        assert!(v.value() > 400.0);
        let health = chain.health();
        assert_eq!(health.tiers[0].hits, 0);
        assert_eq!(health.tiers[1].hits, 1);
        assert!(health.degraded());
    }

    #[test]
    fn rejects_invalid_values_and_keeps_falling() {
        /// A deliberately broken source for testing.
        #[derive(Debug)]
        struct NanCi;
        impl CiSource for NanCi {
            fn at(&self, _t: Seconds) -> CarbonIntensity {
                CarbonIntensity::new(f64::NAN)
            }
        }
        impl CiIntegral for NanCi {
            fn integral_over(&self, _t0: Seconds, _t1: Seconds) -> CarbonIntensitySeconds {
                CarbonIntensitySeconds::new(f64::NAN)
            }
        }

        let chain = FallbackCi::builder()
            .tier("broken", Box::new(NanCi))
            .tier("constant", Box::new(ConstantCi::new(grids::WIND)))
            .build()
            .unwrap();
        assert_eq!(chain.at(Seconds::ZERO), grids::WIND);
        let health = chain.health();
        assert_eq!(health.tiers[0].rejected, 1);
        assert_eq!(health.tiers[1].hits, 1);
        assert!(health.degraded());
    }

    #[test]
    fn exhausted_chain_returns_zero_not_nan() {
        #[derive(Debug)]
        struct NegativeCi;
        impl CiSource for NegativeCi {
            fn at(&self, _t: Seconds) -> CarbonIntensity {
                CarbonIntensity::new(-10.0)
            }
        }
        impl CiIntegral for NegativeCi {
            fn integral_over(&self, t0: Seconds, t1: Seconds) -> CarbonIntensitySeconds {
                CarbonIntensity::new(-10.0) * (t1 - t0)
            }
        }

        let chain = FallbackCi::builder()
            .tier("negative", Box::new(NegativeCi))
            .build()
            .unwrap();
        assert_eq!(chain.at(Seconds::new(5.0)), CarbonIntensity::ZERO);
        // The integral path also rejects the negative tier and serves zero.
        assert_eq!(
            chain.integral_over(Seconds::ZERO, Seconds::new(10.0)),
            CarbonIntensitySeconds::ZERO
        );
        let health = chain.health();
        assert_eq!(health.exhausted, 2);
        assert_eq!(health.tiers[0].rejected, 2);
        assert!(health.degraded());
    }

    #[test]
    fn nan_query_time_degrades_gracefully() {
        let chain = FallbackCi::standard(short_trace(), None, grids::US_AVERAGE).unwrap();
        let v = chain.at(Seconds::new(f64::NAN));
        // The windowed trace tier declines (NaN comparisons are false); the
        // constant backstop answers.
        assert_eq!(v, grids::US_AVERAGE);
    }

    #[test]
    fn health_display_lists_tiers() {
        let chain = FallbackCi::standard(short_trace(), None, grids::US_AVERAGE).unwrap();
        let _ = chain.at(Seconds::new(1e9));
        let text = chain.health().to_string();
        assert!(text.contains("DEGRADED"));
        assert!(text.contains("`trace`"));
        assert!(text.contains("`constant`"));
    }

    #[test]
    fn tier_coverage_reports_partial_windows() {
        // Trace covers [0, 100] s; the diurnal and constant tiers are
        // unwindowed.
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        let chain = FallbackCi::standard(short_trace(), Some(diurnal), grids::US_AVERAGE).unwrap();
        // A truncated run that only reached t = 50 s: the trace fully backs
        // the partial window.
        let partial = chain
            .tier_coverage(Seconds::ZERO, Seconds::new(50.0))
            .unwrap();
        assert_eq!(partial.len(), 3);
        assert!((partial[0].fraction - 1.0).abs() < 1e-12);
        assert!((partial[1].fraction - 1.0).abs() < 1e-12);
        // The full deployment window: the trace backs only a quarter of it.
        let full = chain
            .tier_coverage(Seconds::ZERO, Seconds::new(400.0))
            .unwrap();
        assert!((full[0].fraction - 0.25).abs() < 1e-12);
        assert!((full[2].fraction - 1.0).abs() < 1e-12);
        // Entirely past the trace window: zero trace coverage.
        let past = chain
            .tier_coverage(Seconds::new(200.0), Seconds::new(300.0))
            .unwrap();
        assert!(past[0].fraction.abs() < 1e-12);
        // Zero-length window: point containment.
        let inside = chain
            .tier_coverage(Seconds::new(50.0), Seconds::new(50.0))
            .unwrap();
        assert!((inside[0].fraction - 1.0).abs() < 1e-12);
        let outside = chain
            .tier_coverage(Seconds::new(500.0), Seconds::new(500.0))
            .unwrap();
        assert!(outside[0].fraction.abs() < 1e-12);
        // Invalid windows are rejected.
        assert!(chain
            .tier_coverage(Seconds::new(10.0), Seconds::ZERO)
            .is_err());
        assert!(chain
            .tier_coverage(Seconds::new(f64::NAN), Seconds::ZERO)
            .is_err());
    }

    #[test]
    fn mean_over_integrates_through_the_chain() {
        let chain = FallbackCi::standard(short_trace(), None, grids::US_AVERAGE).unwrap();
        let mean = chain.mean_over(Seconds::new(100.0), 100);
        assert!(mean.value() > 100.0 && mean.value() < 200.0);
    }

    #[test]
    fn interval_integral_falls_through_a_trace_gap() {
        // The trace covers [0, 100] s; integrating over [50, 150] s must
        // split at the window edge, serve the first half from the trace and
        // the second from the diurnal tier, and account both.
        let diurnal =
            DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap();
        let chain = FallbackCi::standard(
            short_trace(),
            Some(DiurnalCi::new(CarbonIntensity::new(400.0), CarbonIntensity::new(100.0)).unwrap()),
            grids::US_AVERAGE,
        )
        .unwrap();
        let total = chain.integral_over(Seconds::new(50.0), Seconds::new(150.0));
        let trace_part = short_trace().integral_over(Seconds::new(50.0), Seconds::new(100.0));
        let diurnal_part = diurnal.integral_over(Seconds::new(100.0), Seconds::new(150.0));
        let expected = trace_part.value() + diurnal_part.value();
        assert!((total.value() - expected).abs() < 1e-9 * expected.abs().max(1.0));

        let health = chain.health();
        assert_eq!(health.queries, 2);
        assert_eq!(health.tiers[0].hits, 1, "trace serves [50, 100]");
        assert_eq!(health.tiers[1].hits, 1, "diurnal serves [100, 150]");
        assert_eq!(health.exhausted, 0);
        assert!(health.degraded());
    }

    #[test]
    fn interval_integral_matches_mean_exact_through_the_chain() {
        let chain = FallbackCi::standard(short_trace(), None, grids::US_AVERAGE).unwrap();
        // Fully inside the trace span: exact trapezoid of the linear ramp.
        let inside = chain.integral_over(Seconds::ZERO, Seconds::new(100.0));
        assert!((inside.value() - 150.0 * 100.0).abs() < 1e-9);
        // Empty and inverted intervals serve zero without touching health.
        let before = chain.health().queries;
        assert_eq!(
            chain.integral_over(Seconds::new(5.0), Seconds::new(5.0)),
            CarbonIntensitySeconds::ZERO
        );
        assert_eq!(chain.health().queries, before);
    }
}
