//! The obs counters wired through [`FallbackCi`] must agree exactly with
//! the chain's own [`FallbackCi::health`] accounting: `carbon/fallback/*`
//! and `events/fallback_*` are the *same* numbers surfaced through a
//! different channel, and this test pins them together.
//!
//! Counters are process-global, so the whole contract lives in one
//! `#[test]` in its own integration binary.

use cordoba_carbon::fallback::FallbackCi;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::intensity::{grids, CiSource, ConstantCi, TraceCi};
use cordoba_carbon::units::{CarbonIntensity, Seconds};

/// Current value of a named counter in the global registry (0 if untouched).
fn counter(name: &str) -> u64 {
    cordoba_obs::counter_snapshot()
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn fallback_counters_match_the_health_report() {
    cordoba_obs::set_metrics_enabled(true);
    let before_queries = counter("carbon/fallback/queries");
    let before_rejected = counter("carbon/fallback/rejected");
    let before_switches = counter("events/fallback_tier_switch");
    let before_exhausted = counter("events/fallback_exhausted");

    // A three-tier chain that exercises every accounting path:
    //  * "trace"    answers only inside [0, 3600] s;
    //  * "poison"   always covers but always produces NaN (rejected);
    //  * "backstop" answers only inside [0, 10_000] s.
    let trace = TraceCi::new(vec![
        (Seconds::new(0.0), CarbonIntensity::new(300.0)),
        (Seconds::from_hours(1.0), CarbonIntensity::new(420.0)),
    ])
    .unwrap();
    let chain = FallbackCi::builder()
        .tier_within(
            "trace",
            Box::new(trace),
            Seconds::new(0.0),
            Seconds::from_hours(1.0),
        )
        .tier(
            "poison",
            Box::new(ConstantCi::new(CarbonIntensity::new(f64::NAN))),
        )
        .tier_within(
            "backstop",
            Box::new(ConstantCi::new(grids::US_AVERAGE)),
            Seconds::new(0.0),
            Seconds::new(10_000.0),
        )
        .build()
        .unwrap();

    // Primary hit: inside the trace window, no tier switch.
    assert_eq!(chain.at(Seconds::new(0.0)), CarbonIntensity::new(300.0));
    // Degraded hit: trace declines, poison rejects, backstop answers.
    assert_eq!(chain.at(Seconds::new(5_000.0)), grids::US_AVERAGE);
    // Exhausted: past every window, poison still rejects.
    assert_eq!(chain.at(Seconds::new(20_000.0)), CarbonIntensity::ZERO);
    // Integral path: split at the trace-window edge into [0, 3600] (trace
    // hit) and [3600, 7200] (poison rejects, backstop hit + tier switch).
    let integral = chain.integral_over(Seconds::new(0.0), Seconds::new(7_200.0));
    assert!(integral.value() > 0.0);

    let health = chain.health();
    assert_eq!(health.queries, 5, "{health:?}");
    assert_eq!(health.exhausted, 1, "{health:?}");
    assert!(health.degraded());

    let d_queries = counter("carbon/fallback/queries") - before_queries;
    let d_rejected = counter("carbon/fallback/rejected") - before_rejected;
    let d_switches = counter("events/fallback_tier_switch") - before_switches;
    let d_exhausted = counter("events/fallback_exhausted") - before_exhausted;
    cordoba_obs::set_metrics_enabled(false);

    assert_eq!(d_queries, health.queries, "{health:?}");
    assert_eq!(d_exhausted, health.exhausted, "{health:?}");
    let rejected_total: u64 = health.tiers.iter().map(|t| t.rejected).sum();
    assert_eq!(d_rejected, rejected_total, "{health:?}");
    // A tier switch is recorded exactly when a non-primary tier serves.
    let non_primary_hits: u64 = health.tiers.iter().skip(1).map(|t| t.hits).sum();
    assert_eq!(d_switches, non_primary_hits, "{health:?}");
    assert_eq!(d_switches, 2, "{health:?}");

    // With metrics off the chain's own accounting still runs, but the
    // global counters stay frozen.
    let _ = chain.at(Seconds::new(100.0));
    assert_eq!(chain.health().queries, 6);
    assert_eq!(
        counter("carbon/fallback/queries") - before_queries,
        d_queries
    );
}
