//! # cordoba-store
//!
//! Content-addressed persistent memoization for CORDOBA's deterministic
//! pipelines (ROADMAP item 5).
//!
//! The DSE pipeline is bit-reproducible at any thread count, which makes
//! every expensive result a pure function of its inputs — and a pure
//! function of hashable inputs can be stored. This crate provides the two
//! halves of that substrate:
//!
//! * [`KeyBuilder`] / [`StoreKey`] — a stable in-crate 128-bit FNV-1a hash
//!   over a canonical byte encoding (f64s as raw IEEE-754 bits, matching
//!   the `SweepCheckpoint` convention; strings length-prefixed). Consumers
//!   feed in everything the result depends on: config fingerprints, the
//!   CI-source fingerprint, `TechTuning` parameters, sweep axes.
//! * [`Store`] — a disk-backed map from `(kind, key)` to payload lines,
//!   with versioned entry framing, a code-version salt
//!   ([`CODE_VERSION_SALT`]) for wholesale invalidation, atomic writes, and
//!   graceful handling of corrupt or truncated files (any damage is a miss
//!   and a recompute, never a panic and never a wrong answer).
//!
//! Payload encoding of domain types deliberately lives in the consumer
//! crates (`cordoba-accel` for embodied carbon, `cordoba` for sweeps): the
//! store only moves opaque text lines, so it depends on nothing but
//! `cordoba-obs` for `store_hit` / `store_miss` / `store_write` telemetry.

pub mod codec;
pub mod io;
pub mod key;

pub use codec::{hex_f64, parse_hex_f64};
pub use io::{EntryInfo, Store, CODE_VERSION_SALT, FORMAT_HEADER};
pub use key::{KeyBuilder, StoreKey};
