//! Bit-exact text codec for payload lines.
//!
//! Store payloads are text lines; floats inside them must survive a
//! round-trip without losing a single bit, so they are written as the
//! 16-hex-digit IEEE-754 bit pattern (`f64::to_bits`) — the same
//! convention `SweepCheckpoint` uses. Decimal formatting is *not* used
//! anywhere in a payload: `0.1` has no finite decimal that reparses to the
//! same bits at every precision, hex bits always do.

/// Renders an `f64` as its 16-hex-digit raw bit pattern.
#[must_use]
pub fn hex_f64(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Nibble value per ASCII byte; `0xFF` marks a non-hex byte. A table
/// lookup per digit keeps bulk decode (tens of thousands of cells per
/// warm tCDP matrix) well below `from_str_radix`, which re-validates
/// radix, sign, and overflow per call.
const HEX_NIBBLE: [u8; 256] = {
    let mut table = [0xFFu8; 256];
    let mut digit = 0u8;
    while digit < 10 {
        table[(b'0' + digit) as usize] = digit;
        digit += 1;
    }
    let mut letter = 0u8;
    while letter < 6 {
        table[(b'a' + letter) as usize] = 10 + letter;
        table[(b'A' + letter) as usize] = 10 + letter;
        letter += 1;
    }
    table
};

/// Parses a [`hex_f64`]-rendered value back to the identical bits.
/// Exactly 16 hex digits (either case) are accepted — no signs, spaces,
/// or radix prefixes, unlike `from_str_radix`.
#[must_use]
pub fn parse_hex_f64(text: &str) -> Option<f64> {
    let bytes: &[u8; 16] = text.as_bytes().try_into().ok()?;
    let mut bits = 0u64;
    let mut invalid = 0u8;
    for &b in bytes {
        let nibble = HEX_NIBBLE[b as usize];
        invalid |= nibble;
        bits = (bits << 4) | u64::from(nibble & 0x0F);
    }
    // One branch for the whole value: any non-hex byte sets the 0xF0 bits.
    (invalid & 0xF0 == 0).then(|| f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_bit_exact() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            f64::NAN,
            123.456e-78,
        ] {
            let text = hex_f64(v);
            assert_eq!(text.len(), 16);
            let back = parse_hex_f64(&text).expect("valid hex");
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn malformed_hex_is_rejected() {
        assert_eq!(parse_hex_f64(""), None);
        assert_eq!(parse_hex_f64("3ff"), None);
        assert_eq!(parse_hex_f64("zzzzzzzzzzzzzzzz"), None);
        assert_eq!(parse_hex_f64("3ff00000000000000"), None);
    }
}
