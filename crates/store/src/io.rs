//! Disk-backed store: versioned entry files under a caller-supplied root.
//!
//! Layout: `<root>/<kind>/<32-hex-key>.entry`, one entry per file. Each
//! file is line-oriented text with a versioned header, the code-version
//! salt, the kind and key echoed back (so a renamed or mis-filed entry is
//! detected), a payload line count, the payload, and an `end` marker:
//!
//! ```text
//! cordoba-store entry v1
//! salt <code-version-salt>
//! kind <kind>
//! key <32-hex>
//! lines <N>
//! <payload line 1>
//! ...
//! <payload line N>
//! end
//! ```
//!
//! Any deviation — truncation, corruption, a foreign header, a salt minted
//! by a different code version, a count mismatch — parses as a graceful
//! miss, never a panic: the store recomputes and overwrites. Writes go to a
//! temp file in the same directory and are published with an atomic rename,
//! so readers never observe a half-written entry.

// cordoba-lint: allow-file(ambient-input) — this module IS the persistence
// edge the `ambient-input` rule routes I/O toward: every read and write
// stays under a root directory passed in explicitly by the caller, results
// are keyed by content hashes that already encode all inputs, and a stale
// or damaged file degrades to a recompute, never to a wrong answer.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cordoba_obs::{record, Event, LabeledCounter};

use crate::key::StoreKey;

/// Store operation counts by kind, exported as `store_ops{op="..."}`;
/// mirrors the `events/store_*` counters in one labeled family.
static STORE_OPS: LabeledCounter =
    LabeledCounter::new("store/ops", "op", &["hit", "miss", "write"]);

/// First line of every entry file; bump the version when the framing
/// changes.
pub const FORMAT_HEADER: &str = "cordoba-store entry v1";

/// Default code-version salt. Bump whenever simulator semantics change so
/// every previously stored result misses and is recomputed.
pub const CODE_VERSION_SALT: &str = "cordoba-core-v9";

/// File extension for entry files.
const ENTRY_EXT: &str = "entry";

/// A content-addressed, disk-backed result store.
///
/// ```
/// use cordoba_store::{KeyBuilder, Store};
///
/// let dir = std::env::temp_dir().join("cordoba-store-doc");
/// let store = Store::open(&dir)?;
/// let mut k = KeyBuilder::new("demo");
/// k.push_u64(7);
/// let key = k.finish();
/// store.put("demo", key, &["payload line".to_string()])?;
/// assert_eq!(store.get("demo", key), Some(vec!["payload line".to_string()]));
/// store.evict(None);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
    salt: String,
}

/// Metadata for one stored entry, as listed by [`Store::entries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// The entry kind (subdirectory name).
    pub kind: String,
    /// The content hash (file stem).
    pub key: StoreKey,
    /// On-disk size in bytes.
    pub bytes: u64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`, salted with the
    /// built-in [`CODE_VERSION_SALT`].
    ///
    /// # Errors
    /// Returns the underlying I/O error when the root cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_salt(dir, CODE_VERSION_SALT)
    }

    /// Opens a store with an explicit code-version salt (tests use this to
    /// exercise invalidation; production code should use [`Store::open`]).
    ///
    /// # Errors
    /// Returns the underlying I/O error when the root cannot be created.
    pub fn open_with_salt(dir: impl AsRef<Path>, salt: &str) -> io::Result<Self> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            salt: salt.to_string(),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The code-version salt entries are minted with.
    #[must_use]
    pub fn salt(&self) -> &str {
        &self.salt
    }

    /// `true` for kinds that are safe path segments (`[a-z0-9_-]+` style).
    fn valid_kind(kind: &str) -> bool {
        !kind.is_empty()
            && kind
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    }

    fn entry_path(&self, kind: &str, key: StoreKey) -> PathBuf {
        self.root
            .join(kind)
            .join(format!("{}.{ENTRY_EXT}", key.to_hex()))
    }

    /// Looks up the payload for `(kind, key)`.
    ///
    /// Returns `None` — and records a `store_miss` event — when the entry
    /// is absent, truncated, corrupted, mis-filed, or salted by a different
    /// code version. A valid entry records `store_hit` and returns its
    /// payload lines.
    #[must_use]
    pub fn get(&self, kind: &str, key: StoreKey) -> Option<Vec<String>> {
        let payload = self.read_entry(kind, key);
        if payload.is_some() {
            STORE_OPS.incr(0);
            record(&Event::StoreHit);
        } else {
            STORE_OPS.incr(1);
            record(&Event::StoreMiss);
        }
        payload
    }

    fn read_entry(&self, kind: &str, key: StoreKey) -> Option<Vec<String>> {
        if !Self::valid_kind(kind) {
            return None;
        }
        let text = fs::read_to_string(self.entry_path(kind, key)).ok()?;
        // A valid entry always ends `end\n`; anything else is truncation.
        if !text.ends_with('\n') {
            return None;
        }
        let mut lines = text.lines();
        if lines.next()? != FORMAT_HEADER {
            return None;
        }
        if lines.next()?.strip_prefix("salt ")? != self.salt {
            return None;
        }
        if lines.next()?.strip_prefix("kind ")? != kind {
            return None;
        }
        if StoreKey::from_hex(lines.next()?.strip_prefix("key ")?)? != key {
            return None;
        }
        let count: usize = lines.next()?.strip_prefix("lines ")?.parse().ok()?;
        let mut payload = Vec::with_capacity(count);
        for _ in 0..count {
            payload.push(lines.next()?.to_string());
        }
        if lines.next()? != "end" || lines.next().is_some() {
            return None;
        }
        Some(payload)
    }

    /// Writes the payload for `(kind, key)`, atomically replacing any
    /// existing entry, and records a `store_write` event.
    ///
    /// # Errors
    /// Rejects invalid kinds and payload lines containing newlines with
    /// [`io::ErrorKind::InvalidInput`]; otherwise surfaces the underlying
    /// filesystem error.
    pub fn put(&self, kind: &str, key: StoreKey, lines: &[String]) -> io::Result<()> {
        if !Self::valid_kind(kind) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("store kind {kind:?} is not a safe path segment"),
            ));
        }
        if lines.iter().any(|l| l.contains('\n')) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "store payload lines must not contain newlines",
            ));
        }
        let dir = self.root.join(kind);
        fs::create_dir_all(&dir)?;
        let mut body = String::new();
        body.push_str(FORMAT_HEADER);
        body.push('\n');
        body.push_str(&format!("salt {}\n", self.salt));
        body.push_str(&format!("kind {kind}\n"));
        body.push_str(&format!("key {}\n", key.to_hex()));
        body.push_str(&format!("lines {}\n", lines.len()));
        for line in lines {
            body.push_str(line);
            body.push('\n');
        }
        body.push_str("end\n");
        // Write-then-rename so a concurrent reader sees either the old
        // entry or the new one, never a prefix.
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), key.to_hex()));
        fs::write(&tmp, body)?;
        let result = fs::rename(&tmp, self.entry_path(kind, key));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result?;
        STORE_OPS.incr(2);
        record(&Event::StoreWrite);
        Ok(())
    }

    /// `true` when a readable, valid entry exists for `(kind, key)`.
    ///
    /// Unlike [`Store::get`] this records no events, so probes do not skew
    /// hit/miss counters.
    #[must_use]
    pub fn contains(&self, kind: &str, key: StoreKey) -> bool {
        self.read_entry(kind, key).is_some()
    }

    /// Lists every entry file in the store, sorted by `(kind, key)` so the
    /// listing is deterministic regardless of directory iteration order.
    ///
    /// Unreadable directories or stray files are skipped, not errors: the
    /// listing reflects what [`Store::get`] could plausibly serve.
    #[must_use]
    pub fn entries(&self) -> Vec<EntryInfo> {
        let mut out = Vec::new();
        let Ok(kinds) = fs::read_dir(&self.root) else {
            return out;
        };
        for kind_entry in kinds.flatten() {
            let kind = kind_entry.file_name().to_string_lossy().into_owned();
            if !Self::valid_kind(&kind) {
                continue;
            }
            let Ok(files) = fs::read_dir(kind_entry.path()) else {
                continue;
            };
            for file in files.flatten() {
                let name = file.file_name().to_string_lossy().into_owned();
                let Some(stem) = name.strip_suffix(&format!(".{ENTRY_EXT}")) else {
                    continue;
                };
                let Some(key) = StoreKey::from_hex(stem) else {
                    continue;
                };
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                out.push(EntryInfo {
                    kind: kind.clone(),
                    key,
                    bytes,
                });
            }
        }
        out.sort_by(|a, b| (&a.kind, a.key).cmp(&(&b.kind, b.key)));
        out
    }

    /// Removes entries — all of them, or only one kind — returning how many
    /// entry files were deleted. Unremovable files are skipped.
    pub fn evict(&self, kind: Option<&str>) -> usize {
        let mut removed = 0;
        for info in self.entries() {
            if kind.is_some_and(|k| k != info.kind) {
                continue;
            }
            if fs::remove_file(self.entry_path(&info.kind, info.key)).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("cordoba-store-test-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        Store::open(&dir).expect("temp store opens")
    }

    fn key_of(n: u64) -> StoreKey {
        let mut k = KeyBuilder::new("test");
        k.push_u64(n);
        k.finish()
    }

    #[test]
    fn put_get_round_trip() {
        let store = temp_store("round-trip");
        let key = key_of(1);
        let lines = vec!["a 1".to_string(), String::new(), "c 3".to_string()];
        assert_eq!(store.get("sweep", key), None);
        store.put("sweep", key, &lines).expect("put succeeds");
        assert_eq!(store.get("sweep", key), Some(lines));
        assert!(store.contains("sweep", key));
    }

    #[test]
    fn truncated_and_corrupted_entries_miss_gracefully() {
        let store = temp_store("corrupt");
        let key = key_of(2);
        let lines = vec!["x".to_string(), "y".to_string()];
        store.put("sweep", key, &lines).expect("put succeeds");
        let path = store.entry_path("sweep", key);
        let full = fs::read_to_string(&path).expect("entry readable");
        // Every strict prefix of a valid entry is a miss, never a panic.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).expect("truncate");
            assert_eq!(store.get("sweep", key), None, "prefix of {cut} bytes");
        }
        // Arbitrary garbage is a miss too.
        fs::write(&path, "not an entry\u{0}\u{ff}").expect("garbage");
        assert_eq!(store.get("sweep", key), None);
        // Trailing junk after `end` invalidates the entry.
        fs::write(&path, format!("{full}trailing\n")).expect("suffix");
        assert_eq!(store.get("sweep", key), None);
        // Restoring the exact bytes restores the hit.
        fs::write(&path, &full).expect("restore");
        assert_eq!(store.get("sweep", key), Some(lines));
    }

    #[test]
    fn salt_mismatch_invalidates() {
        let dir = std::env::temp_dir().join("cordoba-store-test-salt");
        let _ = fs::remove_dir_all(&dir);
        let v1 = Store::open_with_salt(&dir, "code-v1").expect("v1 opens");
        let key = key_of(3);
        v1.put("sweep", key, &["line".to_string()]).expect("put");
        assert!(v1.contains("sweep", key));
        let v2 = Store::open_with_salt(&dir, "code-v2").expect("v2 opens");
        assert_eq!(v2.get("sweep", key), None);
        // Recomputing under the new salt overwrites in place.
        v2.put("sweep", key, &["new".to_string()]).expect("put v2");
        assert_eq!(v2.get("sweep", key), Some(vec!["new".to_string()]));
        assert_eq!(v1.get("sweep", key), None);
    }

    #[test]
    fn mis_filed_entries_miss() {
        let store = temp_store("mis-filed");
        let key = key_of(4);
        let other = key_of(5);
        store.put("sweep", key, &["line".to_string()]).expect("put");
        // Copy the entry under a different key's file name: key echo fails.
        let bytes = fs::read(store.entry_path("sweep", key)).expect("read");
        fs::write(store.entry_path("sweep", other), &bytes).expect("copy");
        assert_eq!(store.get("sweep", other), None);
        // Same bytes under a different kind: kind echo fails.
        fs::create_dir_all(store.root().join("runs")).expect("mkdir");
        fs::write(store.entry_path("runs", key), &bytes).expect("copy kind");
        assert_eq!(store.get("runs", key), None);
    }

    #[test]
    fn invalid_inputs_are_rejected_without_panicking() {
        let store = temp_store("invalid");
        let key = key_of(6);
        assert!(store.put("../escape", key, &[]).is_err());
        assert!(store.put("", key, &[]).is_err());
        assert!(store.put("ok", key, &["a\nb".to_string()]).is_err());
        assert_eq!(store.get("../escape", key), None);
    }

    #[test]
    fn entries_listing_and_evict() {
        let store = temp_store("listing");
        let (k1, k2, k3) = (key_of(7), key_of(8), key_of(9));
        store.put("sweep", k1, &["a".to_string()]).expect("put");
        store.put("sweep", k2, &["b".to_string()]).expect("put");
        store.put("runs", k3, &["c".to_string()]).expect("put");
        let listing = store.entries();
        assert_eq!(listing.len(), 3);
        let kinds: Vec<&str> = listing.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["runs", "sweep", "sweep"]);
        assert!(listing.iter().all(|e| e.bytes > 0));
        assert_eq!(store.evict(Some("sweep")), 2);
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.evict(None), 1);
        assert!(store.entries().is_empty());
    }

    #[test]
    fn empty_payload_round_trips() {
        let store = temp_store("empty");
        let key = key_of(10);
        store.put("sweep", key, &[]).expect("put");
        assert_eq!(store.get("sweep", key), Some(Vec::new()));
    }
}
