//! Stable content-addressed keys over a canonical byte encoding.
//!
//! A [`StoreKey`] is a 128-bit FNV-1a hash of a canonical byte stream fed
//! through a [`KeyBuilder`]. The encoding rules keep keys bit-stable across
//! platforms, compiler versions, and thread counts:
//!
//! * `f64` values contribute their raw IEEE-754 bits (`f64::to_bits`),
//!   matching the `SweepCheckpoint` hex convention — two floats produce the
//!   same key contribution iff they are bit-identical;
//! * integers contribute fixed-width little-endian bytes;
//! * strings are length-prefixed so adjacent fields cannot alias
//!   (`"ab" + "c"` and `"a" + "bc"` hash differently).
//!
//! The hash is implemented in-crate (no external dependencies) and is *not*
//! cryptographic: it defends against accidental collisions in a result
//! cache, not against adversaries.

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A stable 128-bit content hash identifying one store entry.
///
/// Rendered as 32 lowercase hex digits — the on-disk file stem and the
/// handle users pass to `replay <hash>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey(u128);

impl StoreKey {
    /// The raw 128-bit value.
    #[must_use]
    pub fn value(self) -> u128 {
        self.0
    }

    /// Renders the key as 32 lowercase hex digits.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a key from exactly 32 hex digits (case-insensitive).
    #[must_use]
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Self)
    }
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming builder for a [`StoreKey`].
///
/// ```
/// use cordoba_store::KeyBuilder;
///
/// let mut k = KeyBuilder::new("op_time_sweep");
/// k.push_f64(1.5);
/// k.push_u64(29);
/// k.push_str("xr_5_kernels");
/// let key = k.finish();
/// assert_eq!(key.to_hex().len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    state: u128,
}

impl KeyBuilder {
    /// Starts a key stream for one entry kind; the kind participates in the
    /// hash so identical payloads under different kinds cannot collide.
    #[must_use]
    pub fn new(kind: &str) -> Self {
        let mut builder = Self { state: FNV_OFFSET };
        builder.push_str(kind);
        builder
    }

    /// Feeds raw bytes into the hash.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u128::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn push_u64(&mut self, value: u64) {
        self.push_bytes(&value.to_le_bytes());
    }

    /// Feeds an `f64` as its raw IEEE-754 bit pattern.
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Feeds a string, length-prefixed so field boundaries cannot alias.
    pub fn push_str(&mut self, value: &str) {
        self.push_u64(value.len() as u64);
        self.push_bytes(value.as_bytes());
    }

    /// Finalizes the stream into a [`StoreKey`].
    #[must_use]
    pub fn finish(self) -> StoreKey {
        StoreKey(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic() {
        let build = || {
            let mut k = KeyBuilder::new("kind");
            k.push_f64(3.5);
            k.push_u64(7);
            k.push_str("name");
            k.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let mut a = KeyBuilder::new("k");
        a.push_str("ab");
        a.push_str("c");
        let mut b = KeyBuilder::new("k");
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn kind_participates_in_key() {
        let mut a = KeyBuilder::new("eval_space");
        a.push_u64(1);
        let mut b = KeyBuilder::new("op_time_sweep");
        b.push_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_keying_is_bit_exact() {
        let mut a = KeyBuilder::new("k");
        a.push_f64(0.0);
        let mut b = KeyBuilder::new("k");
        b.push_f64(-0.0);
        // +0.0 == -0.0 numerically but the bit patterns differ; canonical
        // encoding keys on bits, so these are distinct entries.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trip() {
        let mut k = KeyBuilder::new("k");
        k.push_u64(42);
        let key = k.finish();
        let hex = key.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(StoreKey::from_hex(&hex), Some(key));
        assert_eq!(StoreKey::from_hex("zz"), None);
        assert_eq!(StoreKey::from_hex(&hex[..31]), None);
    }
}
