//! Framework-level error type.
//!
//! The framework layer composes substrate crates with their own error
//! types: carbon-model validation ([`CarbonError`]) and cost-table lookups
//! ([`MissingKernel`]). [`CoreError`] unifies them so design-space
//! evaluation can propagate either without panicking (the
//! `evaluate_space`/`accel_design_point` paths formerly `expect`ed
//! cost-table hits).

use cordoba_carbon::CarbonError;
use cordoba_workloads::cost::MissingKernel;
use core::fmt;

/// Errors produced by the framework layer.
///
/// # Examples
///
/// ```
/// use cordoba::CoreError;
/// use cordoba_carbon::CarbonError;
///
/// let err = CoreError::from(CarbonError::Empty { what: "design points" });
/// assert!(err.to_string().contains("design points"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A carbon-model parameter or result was invalid.
    Carbon(CarbonError),
    /// A task referenced a kernel the cost table has no entry for.
    MissingKernel(MissingKernel),
    /// A supervised parallel worker panicked while evaluating this unit of
    /// work; the panic was isolated (the process survived) and its payload
    /// message is carried here.
    Panicked(String),
    /// A supervision-layer invariant failed: a serialized checkpoint did
    /// not parse or validate, or a resume was fed mismatched inputs.
    Supervision(String),
}

impl From<CarbonError> for CoreError {
    fn from(err: CarbonError) -> Self {
        Self::Carbon(err)
    }
}

impl From<MissingKernel> for CoreError {
    fn from(err: MissingKernel) -> Self {
        Self::MissingKernel(err)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Carbon(err) => err.fmt(f),
            Self::MissingKernel(err) => err.fmt(f),
            Self::Panicked(message) => write!(f, "evaluation panicked: {message}"),
            Self::Supervision(message) => write!(f, "supervision: {message}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Carbon(err) => Some(err),
            Self::MissingKernel(err) => Some(err),
            Self::Panicked(_) | Self::Supervision(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_delegate() {
        let err = CoreError::from(CarbonError::Empty { what: "trace" });
        assert_eq!(err.to_string(), "trace must not be empty");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoreError>();
    }
}
