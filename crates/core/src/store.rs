//! Warm-start entry points: sweep results memoized through the
//! content-addressed [`cordoba_store::Store`].
//!
//! The DSE pipeline is deterministic and bit-reproducible at every thread
//! count (pinned by the `par`/`obs`/supervision property suites), so each
//! expensive result — [`evaluate_space`], [`evaluate_space_multi`],
//! [`OpTimeSweep`], [`BetaSweep`] — is a pure function of its typed inputs.
//! The `*_stored` wrappers below derive a canonical [`StoreKey`] over
//! *everything* the result depends on (config shapes including the full
//! `TechTuning`, task kernel mixes, the embodied model, the use-phase
//! carbon intensity, the sweep axis) and consult the store before
//! computing; misses compute through the ordinary path and write the
//! result behind.
//!
//! Three invariants make this safe:
//!
//! * **Canonical encoding** — every `f64` participates in the key and the
//!   payload as its raw IEEE-754 bits (the `SweepCheckpoint` convention),
//!   so a warm result is bit-identical to the cold compute, not merely
//!   close.
//! * **Versioned entries** — payloads carry their own framing and the
//!   store's code-version salt; any simulator change that bumps
//!   [`cordoba_store::CODE_VERSION_SALT`] invalidates every prior entry
//!   wholesale.
//! * **Graceful degradation** — a corrupt, truncated, or undecodable entry
//!   is a miss and a recompute, never an error and never a stale answer;
//!   store write failures are swallowed because persistence is an
//!   accelerant, not a correctness dependency.

use crate::dse::{evaluate_space, evaluate_space_multi, OpTimeSweep};
use crate::error::CoreError;
use crate::lagrange::BetaSweep;
use crate::metrics::DesignPoint;
use crate::pareto::Point2;
use cordoba_accel::config::{AcceleratorConfig, MemoryIntegration};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::units::{CarbonIntensity, GramsCo2e, Joules, Seconds, SquareCentimeters};
use cordoba_carbon::yield_model::YieldModel;
use cordoba_carbon::CarbonError;
use cordoba_store::{hex_f64, parse_hex_f64, KeyBuilder, Store, StoreKey};
use cordoba_workloads::task::Task;

/// Store kind for [`evaluate_space_stored`] entries.
pub const KIND_EVAL_SPACE: &str = "eval_space";
/// Store kind for [`evaluate_space_multi_stored`] entries.
pub const KIND_EVAL_SPACE_MULTI: &str = "eval_space_multi";
/// Store kind for [`op_time_sweep_stored`] entries.
pub const KIND_OP_TIME_SWEEP: &str = "op_time_sweep";
/// Store kind for [`beta_sweep_stored`] entries.
pub const KIND_BETA_SWEEP: &str = "beta_sweep";

/// Feeds one configuration — name, geometry, and the *full* tech tuning —
/// into a key. Unlike the embodied-cache fingerprint, delay and energy
/// depend on every tuning field, and the name flows into the output
/// `DesignPoint`s, so everything participates.
fn push_config(k: &mut KeyBuilder, config: &AcceleratorConfig) {
    k.push_str(config.name());
    k.push_u64(u64::from(config.mac_units()));
    k.push_f64(config.sram().value());
    match config.integration() {
        MemoryIntegration::OnDie => k.push_u64(0),
        MemoryIntegration::Stacked3d { dies } => {
            k.push_u64(1);
            k.push_u64(u64::from(dies));
        }
    }
    let t = config.tuning();
    k.push_u64(u64::from(t.node.nanometers()));
    k.push_f64(t.clock.value());
    k.push_f64(t.utilization);
    k.push_f64(t.utilization_knee_units);
    k.push_f64(t.mac_energy.value());
    k.push_f64(t.sram_energy_per_byte_1mib.value());
    k.push_f64(t.sram_energy_exponent);
    k.push_f64(t.sram_bytes_per_mac);
    k.push_f64(t.dram_energy_per_byte.value());
    k.push_f64(t.stacked_sram_energy_factor);
    k.push_f64(t.dram_bandwidth.value());
    k.push_f64(t.leakage_per_sram_mib.value());
    k.push_f64(t.leakage_per_mac_unit.value());
    k.push_f64(t.leakage_base.value());
    k.push_f64(t.mac_unit_area_mm2);
    k.push_f64(t.sram_area_mm2_per_mib);
    k.push_f64(t.base_area_mm2);
    k.push_f64(t.io_traffic_fraction);
    k.push_f64(t.refetch_exponent);
    k.push_f64(t.refetch_scale);
}

/// Feeds a task's name and kernel mix into a key.
fn push_task(k: &mut KeyBuilder, task: &Task) {
    k.push_str(task.name());
    for kernel in task.kernels() {
        k.push_str(kernel.short_name());
        k.push_f64(task.calls_for(kernel));
    }
}

/// Feeds the embodied model's parameters into a key.
fn push_model(k: &mut KeyBuilder, model: &EmbodiedModel) {
    k.push_f64(model.ci_fab().value());
    match model.yield_model() {
        YieldModel::Murphy => k.push_u64(0),
        YieldModel::Poisson => k.push_u64(1),
        YieldModel::Seeds => k.push_u64(2),
        YieldModel::BoseEinstein { layers } => {
            k.push_u64(3);
            k.push_u64(u64::from(layers));
        }
        YieldModel::Fixed { fraction } => {
            k.push_u64(4);
            k.push_f64(fraction);
        }
        // `YieldModel` is non-exhaustive; key any future variant by its
        // debug rendering so it cannot collide with the tags above.
        other => {
            k.push_u64(u64::MAX);
            k.push_str(&format!("{other:?}"));
        }
    }
    k.push_f64(model.packaging_per_die().value());
}

/// Feeds a design point into a key (for results computed *from* points,
/// like [`OpTimeSweep`] and [`BetaSweep`]).
fn push_point(k: &mut KeyBuilder, point: &DesignPoint) {
    k.push_str(&point.name);
    k.push_f64(point.delay.value());
    k.push_f64(point.energy.value());
    k.push_f64(point.embodied.value());
    k.push_f64(point.area.value());
}

/// The content-address of one [`evaluate_space`] call.
#[must_use]
pub fn evaluate_space_key(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
) -> StoreKey {
    let mut k = KeyBuilder::new(KIND_EVAL_SPACE);
    push_model(&mut k, embodied);
    push_task(&mut k, task);
    k.push_u64(configs.len() as u64);
    for config in configs {
        push_config(&mut k, config);
    }
    k.finish()
}

/// The content-address of one [`evaluate_space_multi`] call.
#[must_use]
pub fn evaluate_space_multi_key(
    configs: &[AcceleratorConfig],
    tasks: &[Task],
    embodied: &EmbodiedModel,
) -> StoreKey {
    let mut k = KeyBuilder::new(KIND_EVAL_SPACE_MULTI);
    push_model(&mut k, embodied);
    k.push_u64(tasks.len() as u64);
    for task in tasks {
        push_task(&mut k, task);
    }
    k.push_u64(configs.len() as u64);
    for config in configs {
        push_config(&mut k, config);
    }
    k.finish()
}

/// The content-address of one [`OpTimeSweep`] evaluation.
#[must_use]
pub fn op_time_sweep_key(
    points: &[DesignPoint],
    task_counts: &[f64],
    ci_use: CarbonIntensity,
) -> StoreKey {
    let mut k = KeyBuilder::new(KIND_OP_TIME_SWEEP);
    k.push_f64(ci_use.value());
    k.push_u64(task_counts.len() as u64);
    for &n in task_counts {
        k.push_f64(n);
    }
    k.push_u64(points.len() as u64);
    for point in points {
        push_point(&mut k, point);
    }
    k.finish()
}

/// The content-address of one [`BetaSweep::run`] call.
#[must_use]
pub fn beta_sweep_key(candidates: &[DesignPoint]) -> StoreKey {
    let mut k = KeyBuilder::new(KIND_BETA_SWEEP);
    k.push_u64(candidates.len() as u64);
    for point in candidates {
        push_point(&mut k, point);
    }
    k.finish()
}

fn encode_points(points: &[DesignPoint]) -> Vec<String> {
    let mut lines = Vec::with_capacity(points.len() + 1);
    lines.push(format!("points {}", points.len()));
    for p in points {
        lines.push(format!(
            "p {} {} {} {} {}",
            hex_f64(p.delay.value()),
            hex_f64(p.energy.value()),
            hex_f64(p.embodied.value()),
            hex_f64(p.area.value()),
            p.name
        ));
    }
    lines
}

/// Decodes one section written by [`encode_points`], consuming lines from
/// the iterator. Returns `None` on any structural damage.
fn decode_points<'a>(lines: &mut impl Iterator<Item = &'a String>) -> Option<Vec<DesignPoint>> {
    let count: usize = lines.next()?.strip_prefix("points ")?.parse().ok()?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let mut fields = lines.next()?.strip_prefix("p ")?.splitn(5, ' ');
        let delay = parse_hex_f64(fields.next()?)?;
        let energy = parse_hex_f64(fields.next()?)?;
        let embodied = parse_hex_f64(fields.next()?)?;
        let area = parse_hex_f64(fields.next()?)?;
        let name = fields.next()?;
        points.push(
            DesignPoint::new(
                name,
                Seconds::new(delay),
                Joules::new(energy),
                GramsCo2e::new(embodied),
                SquareCentimeters::new(area),
            )
            .ok()?,
        );
    }
    Some(points)
}

/// [`evaluate_space`] with a persistent warm path: a prior result for the
/// identical `(configs, task, model)` inputs is served from `store`
/// bit-identically; otherwise the space is evaluated normally and the
/// result written behind.
///
/// # Errors
///
/// Exactly the errors of [`evaluate_space`]; store damage never surfaces.
pub fn evaluate_space_stored(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
    store: &Store,
) -> Result<Vec<DesignPoint>, CoreError> {
    let key = evaluate_space_key(configs, task, embodied);
    if let Some(lines) = store.get(KIND_EVAL_SPACE, key) {
        let mut it = lines.iter();
        if let Some(points) = decode_points(&mut it).filter(|p| {
            p.len() == configs.len() && it.next().is_none() // fully consumed
        }) {
            return Ok(points);
        }
    }
    let points = evaluate_space(configs, task, embodied)?;
    let _ = store.put(KIND_EVAL_SPACE, key, &encode_points(&points));
    Ok(points)
}

/// [`evaluate_space_multi`] with a persistent warm path; one entry covers
/// the whole multi-task call.
///
/// # Errors
///
/// Exactly the errors of [`evaluate_space_multi`].
pub fn evaluate_space_multi_stored(
    configs: &[AcceleratorConfig],
    tasks: &[Task],
    embodied: &EmbodiedModel,
    store: &Store,
) -> Result<Vec<Vec<DesignPoint>>, CoreError> {
    let key = evaluate_space_multi_key(configs, tasks, embodied);
    if let Some(lines) = store.get(KIND_EVAL_SPACE_MULTI, key) {
        if let Some(per_task) = decode_multi(&lines, tasks.len(), configs.len()) {
            return Ok(per_task);
        }
    }
    let per_task = evaluate_space_multi(configs, tasks, embodied)?;
    let mut lines = vec![format!("tasks {}", per_task.len())];
    for points in &per_task {
        lines.extend(encode_points(points));
    }
    let _ = store.put(KIND_EVAL_SPACE_MULTI, key, &lines);
    Ok(per_task)
}

fn decode_multi(
    lines: &[String],
    task_count: usize,
    config_count: usize,
) -> Option<Vec<Vec<DesignPoint>>> {
    let mut it = lines.iter();
    let tasks: usize = it.next()?.strip_prefix("tasks ")?.parse().ok()?;
    if tasks != task_count {
        return None;
    }
    let mut per_task = Vec::with_capacity(tasks);
    for _ in 0..tasks {
        let points = decode_points(&mut it)?;
        if points.len() != config_count {
            return None;
        }
        per_task.push(points);
    }
    it.next().is_none().then_some(per_task)
}

/// [`OpTimeSweep::new`] with a persistent warm path: on a hit the tCDP
/// matrix is restored bit-for-bit from the store without calling the
/// simulator at all.
///
/// # Errors
///
/// Exactly the errors of [`OpTimeSweep::new`].
pub fn op_time_sweep_stored(
    points: Vec<DesignPoint>,
    task_counts: Vec<f64>,
    ci_use: CarbonIntensity,
    store: &Store,
) -> Result<OpTimeSweep, CarbonError> {
    let key = op_time_sweep_key(&points, &task_counts, ci_use);
    if let Some(lines) = store.get(KIND_OP_TIME_SWEEP, key) {
        if let Some(matrix) = decode_matrix(&lines, task_counts.len(), points.len()) {
            if let Some(sweep) =
                OpTimeSweep::from_flat(points.clone(), task_counts.clone(), ci_use, matrix)
            {
                return Ok(sweep);
            }
        }
    }
    let sweep = OpTimeSweep::new(points, task_counts, ci_use)?;
    let _ = store.put(KIND_OP_TIME_SWEEP, key, &encode_matrix(&sweep));
    Ok(sweep)
}

fn encode_matrix(sweep: &OpTimeSweep) -> Vec<String> {
    let width = sweep.points.len();
    let mut lines = vec![format!("rows {} width {}", sweep.task_counts.len(), width)];
    for row in sweep.tcdp_matrix().chunks_exact(width.max(1)) {
        let mut line = String::with_capacity(2 + 17 * row.len());
        line.push('r');
        for &cell in row {
            line.push(' ');
            line.push_str(&hex_f64(cell));
        }
        lines.push(line);
    }
    lines
}

fn decode_matrix(lines: &[String], rows: usize, width: usize) -> Option<Vec<f64>> {
    let mut it = lines.iter();
    let header = it.next()?;
    if *header != format!("rows {rows} width {width}") {
        return None;
    }
    let mut matrix = Vec::with_capacity(rows * width);
    for _ in 0..rows {
        let mut cells = 0usize;
        for field in it.next()?.strip_prefix("r ")?.split(' ') {
            matrix.push(parse_hex_f64(field)?);
            cells += 1;
        }
        if cells != width {
            return None;
        }
    }
    it.next().is_none().then_some(matrix)
}

/// [`BetaSweep::run`] with a persistent warm path.
#[must_use]
pub fn beta_sweep_stored(candidates: &[DesignPoint], store: &Store) -> BetaSweep {
    let key = beta_sweep_key(candidates);
    if let Some(lines) = store.get(KIND_BETA_SWEEP, key) {
        if let Some(sweep) = decode_beta(&lines, candidates.len()) {
            return sweep;
        }
    }
    let sweep = BetaSweep::run(candidates);
    let _ = store.put(KIND_BETA_SWEEP, key, &encode_beta(&sweep));
    sweep
}

fn encode_beta(sweep: &BetaSweep) -> Vec<String> {
    let mut lines = Vec::with_capacity(sweep.points.len() + 3);
    lines.push(format!("points {}", sweep.points.len()));
    for p in &sweep.points {
        lines.push(format!("p {} {} {}", hex_f64(p.x), hex_f64(p.y), p.name));
    }
    let render = |tag: &str, indices: &[usize]| {
        let mut line = tag.to_string();
        for i in indices {
            line.push(' ');
            line.push_str(&i.to_string());
        }
        line
    };
    lines.push(render("pareto", &sweep.pareto));
    lines.push(render("support", &sweep.support));
    lines
}

fn decode_beta(lines: &[String], candidate_count: usize) -> Option<BetaSweep> {
    let mut it = lines.iter();
    let count: usize = it.next()?.strip_prefix("points ")?.parse().ok()?;
    if count != candidate_count {
        return None;
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let mut fields = it.next()?.strip_prefix("p ")?.splitn(3, ' ');
        let x = parse_hex_f64(fields.next()?)?;
        let y = parse_hex_f64(fields.next()?)?;
        let name = fields.next()?;
        points.push(Point2::new(name, x, y));
    }
    let indices = |line: &str, tag: &str| -> Option<Vec<usize>> {
        let rest = line.strip_prefix(tag)?;
        let mut out = Vec::new();
        for field in rest.split(' ').filter(|f| !f.is_empty()) {
            let idx: usize = field.parse().ok()?;
            if idx >= count {
                return None;
            }
            out.push(idx);
        }
        Some(out)
    };
    let pareto = indices(it.next()?, "pareto")?;
    let support = indices(it.next()?, "support")?;
    it.next().is_none().then_some(BetaSweep {
        points,
        pareto,
        support,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::log_sweep;
    use cordoba_accel::space::design_space;
    use cordoba_carbon::intensity::grids;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("cordoba-core-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).expect("temp store opens")
    }

    #[test]
    fn evaluate_space_round_trips_bit_exactly() {
        let store = temp_store("eval");
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let model = EmbodiedModel::default();
        let cold = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        let fresh = evaluate_space(&configs, &task, &model).unwrap();
        assert_eq!(cold, fresh);
        let warm = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        for (w, f) in warm.iter().zip(&fresh) {
            assert_eq!(w.name, f.name);
            assert_eq!(w.delay.value().to_bits(), f.delay.value().to_bits());
            assert_eq!(w.energy.value().to_bits(), f.energy.value().to_bits());
            assert_eq!(w.embodied.value().to_bits(), f.embodied.value().to_bits());
            assert_eq!(w.area.value().to_bits(), f.area.value().to_bits());
        }
    }

    #[test]
    fn op_time_sweep_round_trips_bit_exactly() {
        let store = temp_store("sweep");
        let configs = design_space();
        let task = Task::xr_5_kernels();
        let model = EmbodiedModel::default();
        let points = evaluate_space(&configs, &task, &model).unwrap();
        let counts = log_sweep(4, 9, 2);
        let cold = op_time_sweep_stored(points.clone(), counts.clone(), grids::US_AVERAGE, &store)
            .unwrap();
        let fresh = OpTimeSweep::new(points.clone(), counts.clone(), grids::US_AVERAGE).unwrap();
        assert_eq!(cold, fresh);
        let warm = op_time_sweep_stored(points, counts, grids::US_AVERAGE, &store).unwrap();
        let (a, b) = (warm.tcdp_matrix(), fresh.tcdp_matrix());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn multi_and_beta_round_trip() {
        let store = temp_store("multi-beta");
        let configs = design_space();
        let tasks = [Task::ai_5_kernels(), Task::xr_5_kernels()];
        let model = EmbodiedModel::default();
        let cold = evaluate_space_multi_stored(&configs, &tasks, &model, &store).unwrap();
        let warm = evaluate_space_multi_stored(&configs, &tasks, &model, &store).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(
            cold,
            evaluate_space_multi(&configs, &tasks, &model).unwrap()
        );

        let candidates = &cold[0];
        let beta_cold = beta_sweep_stored(candidates, &store);
        let beta_warm = beta_sweep_stored(candidates, &store);
        assert_eq!(beta_cold, beta_warm);
        assert_eq!(beta_cold, BetaSweep::run(candidates));
    }

    #[test]
    fn keys_react_to_every_input() {
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let model = EmbodiedModel::default();
        let base = evaluate_space_key(&configs, &task, &model);
        assert_ne!(
            base,
            evaluate_space_key(&configs[..configs.len() - 1], &task, &model)
        );
        assert_ne!(
            base,
            evaluate_space_key(&configs, &Task::xr_5_kernels(), &model)
        );
        let hot = model
            .clone()
            .with_ci_fab(cordoba_carbon::units::CarbonIntensity::new(999.0));
        assert_ne!(base, evaluate_space_key(&configs, &task, &hot));

        let points = evaluate_space(&configs, &task, &model).unwrap();
        let counts = log_sweep(4, 6, 1);
        let sweep_base = op_time_sweep_key(&points, &counts, grids::US_AVERAGE);
        assert_ne!(
            sweep_base,
            op_time_sweep_key(&points, &counts, grids::SOLAR)
        );
        assert_ne!(
            sweep_base,
            op_time_sweep_key(&points, &log_sweep(4, 6, 2), grids::US_AVERAGE)
        );
    }

    #[test]
    fn corrupt_entries_recompute_instead_of_failing() {
        let store = temp_store("corrupt");
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let model = EmbodiedModel::default();
        let fresh = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        // Overwrite the entry with a *structurally valid* store file whose
        // payload is semantically damaged: decode fails, compute happens.
        let key = evaluate_space_key(&configs, &task, &model);
        store
            .put(KIND_EVAL_SPACE, key, &["points 999".to_string()])
            .unwrap();
        let recovered = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        assert_eq!(recovered, fresh);
        // The recompute healed the entry in place.
        let healed = evaluate_space_stored(&configs, &task, &model, &store).unwrap();
        assert_eq!(healed, fresh);
    }
}
