//! The six-IC worked example of the paper's §III (Tables I and II,
//! Figures 2 and 3).
//!
//! Six candidate ICs "A".."F" trade clock frequency against energy per
//! cycle. Table I shows that IC "D" maximizes inference throughput under a
//! fixed *energy* budget because it is EDP-optimal; Table II converts the
//! budget to *carbon* (adding embodied carbon per IC) and shows the
//! tCDP-optimal IC "E" wins instead — and that
//! `throughput ∝ 1 / tCDP` exactly.

use crate::metrics::{DesignPoint, OperationalContext};
use cordoba_carbon::intensity::grids;
use cordoba_carbon::units::{
    CarbonIntensity, GramsCo2e, Hertz, Joules, Seconds, SquareCentimeters,
};
use serde::{Deserialize, Serialize};

/// Clock cycles needed for one inference (Table I row \[3\]).
pub const CYCLES_PER_INFERENCE: f64 = 100e6;

/// One candidate IC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateIc {
    /// Single-letter name "A".."F".
    pub name: String,
    /// Clock frequency.
    pub clock: Hertz,
    /// Average energy per clock cycle.
    pub energy_per_cycle: Joules,
}

impl CandidateIc {
    /// Inference throughput of one IC (Table I row \[4\]).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.clock.value() / CYCLES_PER_INFERENCE
    }

    /// Time per inference (Table II row \[4\]).
    #[must_use]
    pub fn time_per_inference(&self) -> Seconds {
        CYCLES_PER_INFERENCE / self.clock
    }

    /// Power of one IC (Table I row \[6\]).
    #[must_use]
    pub fn power(&self) -> cordoba_carbon::units::Watts {
        self.energy_per_cycle * self.clock
    }

    /// Energy per inference (Table I row \[8\]).
    #[must_use]
    pub fn energy_per_inference(&self) -> Joules {
        self.energy_per_cycle * CYCLES_PER_INFERENCE
    }

    /// EDP in J·s (Table I row \[11\]: `[8] / [4]`).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_per_inference().value() * self.time_per_inference().value()
    }
}

/// The paper's six candidate ICs "A".."F" (Fig. 2).
#[must_use]
pub fn candidates() -> Vec<CandidateIc> {
    let mk = |name: &str, ghz, nj| CandidateIc {
        name: name.to_owned(),
        clock: Hertz::from_gigahertz(ghz),
        energy_per_cycle: Joules::from_nanojoules(nj),
    };
    vec![
        mk("A", 0.02, 1.9),
        mk("B", 0.20, 2.0),
        mk("C", 0.40, 2.5),
        mk("D", 0.80, 4.0),
        mk("E", 1.60, 10.0),
        mk("F", 3.20, 50.0),
    ]
}

/// Scenario parameters shared by Table I and Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Required overall throughput (Table I: 1000 inf/s).
    pub required_throughput: f64,
    /// Fixed energy budget per service interval (Table I/II: 9.5 J).
    pub energy_budget: Joules,
    /// Use-phase carbon intensity (Table II row \[5\]: 380 g/kWh).
    pub ci_use: CarbonIntensity,
    /// Embodied carbon per IC (Table II row \[6\]: 3000 gCO2e).
    pub embodied_per_ic: GramsCo2e,
    /// Hardware lifetime (Table II row \[7\]: 1.05e7 s).
    pub lifetime: Seconds,
    /// Service interval (Table II row \[C1\]: 0.1 s).
    pub service: Seconds,
}

impl Default for Scenario {
    fn default() -> Self {
        Self {
            required_throughput: 1000.0,
            energy_budget: Joules::new(9.5),
            ci_use: grids::US_AVERAGE,
            embodied_per_ic: GramsCo2e::new(3000.0),
            lifetime: Seconds::new(1.05e7),
            service: Seconds::new(0.1),
        }
    }
}

impl Scenario {
    /// Inferences per IC lifetime (Table II row \[10\]: `[7] / [C1]`).
    #[must_use]
    pub fn inferences_per_lifetime(&self) -> f64 {
        self.lifetime.value() / self.service.value()
    }

    /// The fixed carbon budget equivalent to the energy budget
    /// (Table II row \[C4\]).
    #[must_use]
    pub fn carbon_budget(&self) -> GramsCo2e {
        self.ci_use * self.energy_budget.to_kilowatt_hours()
    }
}

/// One row of Table I (energy-aware analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// The IC.
    pub ic: CandidateIc,
    /// \[4\] inference throughput of one IC (inf/s).
    pub throughput: f64,
    /// \[5\] ICs in parallel to meet the required throughput.
    pub ics_for_required_throughput: f64,
    /// \[6\] power of each IC (W).
    pub power: f64,
    /// \[7\] overall power of all parallel ICs (W).
    pub overall_power: f64,
    /// \[8\] energy per inference (J).
    pub energy_per_inference: f64,
    /// \[9\] ICs affordable under the energy budget.
    pub ics_for_energy_budget: f64,
    /// \[10\] throughput of all budget ICs (inf/s).
    pub budget_throughput: f64,
    /// \[11\] EDP (J·s).
    pub edp: f64,
}

/// Computes Table I.
#[must_use]
pub fn table_one(scenario: &Scenario) -> Vec<TableOneRow> {
    candidates()
        .into_iter()
        .map(|ic| {
            let throughput = ic.throughput();
            let e_inf = ic.energy_per_inference().value();
            let ics_budget = scenario.energy_budget.value() / e_inf;
            TableOneRow {
                throughput,
                ics_for_required_throughput: scenario.required_throughput / throughput,
                power: ic.power().value(),
                overall_power: scenario.required_throughput / throughput * ic.power().value(),
                energy_per_inference: e_inf,
                ics_for_energy_budget: ics_budget,
                budget_throughput: ics_budget * throughput,
                edp: ic.edp(),
                ic,
            }
        })
        .collect()
}

/// One row of Table II (carbon-aware analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableTwoRow {
    /// The IC.
    pub ic: CandidateIc,
    /// \[4\] time per inference (s).
    pub time_per_inference: f64,
    /// \[13\] operational CCI (gCO2e/inf).
    pub cci_operational: f64,
    /// \[14\] embodied CCI (gCO2e/inf).
    pub cci_embodied: f64,
    /// \[15\] total CCI (gCO2e/inf).
    pub cci: f64,
    /// \[16\] inferences affordable per service interval under the carbon
    /// budget.
    pub budget_inferences: f64,
    /// \[17\] throughput per service interval (`[16] / [4]`).
    pub budget_throughput: f64,
    /// \[18\] total lifetime carbon tC (gCO2e).
    pub total_carbon: f64,
    /// \[19\] tCDP (gCO2e·s).
    pub tcdp: f64,
}

/// Computes Table II.
#[must_use]
pub fn table_two(scenario: &Scenario) -> Vec<TableTwoRow> {
    let n_inf = scenario.inferences_per_lifetime();
    let budget = scenario.carbon_budget().value();
    candidates()
        .into_iter()
        .map(|ic| {
            let t_inf = ic.time_per_inference().value();
            let e_inf_kwh = ic.energy_per_inference().to_kilowatt_hours();
            let cci_op = (scenario.ci_use * e_inf_kwh).value();
            let cci_emb = scenario.embodied_per_ic.value() / n_inf;
            let cci = cci_op + cci_emb;
            let total_carbon = n_inf * cci;
            TableTwoRow {
                time_per_inference: t_inf,
                cci_operational: cci_op,
                cci_embodied: cci_emb,
                cci,
                budget_inferences: budget / cci,
                budget_throughput: budget / cci / t_inf,
                total_carbon,
                tcdp: total_carbon * t_inf,
                ic,
            }
        })
        .collect()
}

/// The six ICs as [`DesignPoint`]s (task = one inference) for the Fig. 3
/// metric comparison, paired with the Table II operational context.
///
/// # Panics
///
/// Panics only if the static scenario constants are invalid (they are not).
#[must_use]
pub fn design_points(scenario: &Scenario) -> (Vec<DesignPoint>, OperationalContext) {
    let points = candidates()
        .into_iter()
        .map(|ic| {
            let delay = ic.time_per_inference();
            let energy = ic.energy_per_inference();
            DesignPoint::new(
                ic.name,
                delay,
                energy,
                scenario.embodied_per_ic,
                SquareCentimeters::new(1.0),
            )
            .expect("static IC parameters are valid") // cordoba-lint: allow(no-panic) — Table I constants, validated by tests
        })
        .collect();
    let ctx = OperationalContext::new(scenario.inferences_per_lifetime(), scenario.ci_use)
        .expect("static scenario parameters are valid"); // cordoba-lint: allow(no-panic) — Table I constants, validated by tests
    (points, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{argmin, MetricKind};

    fn by_name<'a, T>(rows: &'a [T], name: &str, f: impl Fn(&T) -> &CandidateIc) -> &'a T {
        rows.iter().find(|r| f(r).name == name).unwrap()
    }

    #[test]
    fn table_one_matches_paper_values() {
        let rows = table_one(&Scenario::default());
        let a = by_name(&rows, "A", |r| &r.ic);
        assert!((a.throughput - 0.2).abs() < 1e-12);
        assert!((a.ics_for_required_throughput - 5000.0).abs() < 1e-6);
        assert!((a.power - 0.038).abs() < 1e-9);
        assert!((a.overall_power - 190.0).abs() < 1e-6);
        assert!((a.energy_per_inference - 0.19).abs() < 1e-12);
        assert!((a.ics_for_energy_budget - 50.0).abs() < 1e-9);
        assert!((a.budget_throughput - 10.0).abs() < 1e-9);
        assert!((a.edp - 0.95).abs() < 1e-9);

        let d = by_name(&rows, "D", |r| &r.ic);
        assert!((d.edp - 0.05).abs() < 1e-12);
        assert!((d.budget_throughput - 190.0).abs() < 1e-6);

        let f = by_name(&rows, "F", |r| &r.ic);
        assert!((f.overall_power - 5000.0).abs() < 1e-6);
        assert!((f.edp - 0.15625).abs() < 1e-9);
    }

    #[test]
    fn ic_d_is_edp_optimal() {
        let rows = table_one(&Scenario::default());
        let best = rows.iter().min_by(|a, b| a.edp.total_cmp(&b.edp)).unwrap();
        assert_eq!(best.ic.name, "D");
        // And D maximizes throughput under the energy budget.
        let fastest = rows
            .iter()
            .max_by(|a, b| a.budget_throughput.total_cmp(&b.budget_throughput))
            .unwrap();
        assert_eq!(fastest.ic.name, "D");
    }

    #[test]
    fn ic_a_minimizes_power_despite_being_slowest() {
        let rows = table_one(&Scenario::default());
        let min_power = rows
            .iter()
            .min_by(|a, b| a.overall_power.total_cmp(&b.overall_power))
            .unwrap();
        assert_eq!(min_power.ic.name, "A");
        let slowest = rows
            .iter()
            .min_by(|a, b| a.throughput.total_cmp(&b.throughput))
            .unwrap();
        assert_eq!(slowest.ic.name, "A");
    }

    #[test]
    fn table_two_matches_paper_values() {
        let scenario = Scenario::default();
        assert!((scenario.inferences_per_lifetime() - 1.05e8).abs() < 1.0);
        assert!((scenario.carbon_budget().value() - 1.003e-3).abs() < 1e-6);

        let rows = table_two(&scenario);
        let a = by_name(&rows, "A", |r| &r.ic);
        assert!((a.time_per_inference - 5.0).abs() < 1e-9);
        assert!((a.cci_operational - 2.01e-5).abs() < 5e-8);
        assert!((a.cci_embodied - 2.857e-5).abs() < 1e-8);
        assert!((a.cci - 4.86e-5).abs() < 5e-8);
        assert!((a.total_carbon - 5108.0).abs() < 10.0);
        assert!((a.tcdp - 25541.0).abs() < 60.0);

        let e = by_name(&rows, "E", |r| &r.ic);
        assert!((e.tcdp - 881.0).abs() < 5.0);
        assert!((e.budget_throughput - 119.7).abs() < 1.5);
    }

    #[test]
    fn ic_e_is_tcdp_optimal_and_wins_the_carbon_budget() {
        let rows = table_two(&Scenario::default());
        let best = rows
            .iter()
            .min_by(|a, b| a.tcdp.total_cmp(&b.tcdp))
            .unwrap();
        assert_eq!(best.ic.name, "E");
        let fastest = rows
            .iter()
            .max_by(|a, b| a.budget_throughput.total_cmp(&b.budget_throughput))
            .unwrap();
        assert_eq!(fastest.ic.name, "E");
    }

    #[test]
    fn ic_a_is_tc_and_cci_optimal_but_slow() {
        // Optimizing tC (or CCI) picks the slowest design — the §III-B
        // pitfall.
        let rows = table_two(&Scenario::default());
        let min_tc = rows
            .iter()
            .min_by(|a, b| a.total_carbon.total_cmp(&b.total_carbon))
            .unwrap();
        assert_eq!(min_tc.ic.name, "A");
        let min_cci = rows.iter().min_by(|a, b| a.cci.total_cmp(&b.cci)).unwrap();
        assert_eq!(min_cci.ic.name, "A");
    }

    #[test]
    fn throughput_times_tcdp_is_constant() {
        // "relative inference throughput enabled by each IC is precisely
        // quantified by its relative tCDP": row [17] x row [19] = const.
        let rows = table_two(&Scenario::default());
        let products: Vec<f64> = rows.iter().map(|r| r.budget_throughput * r.tcdp).collect();
        for p in &products[1..] {
            assert!(
                (p - products[0]).abs() / products[0] < 1e-9,
                "products {products:?}"
            );
        }
    }

    #[test]
    fn design_points_agree_with_table_two() {
        let scenario = Scenario::default();
        let (points, ctx) = design_points(&scenario);
        let rows = table_two(&scenario);
        for (p, r) in points.iter().zip(rows.iter()) {
            assert_eq!(p.name, r.ic.name);
            assert!(
                (p.tcdp(&ctx).value() - r.tcdp).abs() / r.tcdp < 1e-9,
                "{}: {} vs {}",
                p.name,
                p.tcdp(&ctx).value(),
                r.tcdp
            );
        }
        // Metric argmins match the table story.
        assert_eq!(argmin(&points, MetricKind::Edp, &ctx).unwrap().name, "D");
        assert_eq!(argmin(&points, MetricKind::Tcdp, &ctx).unwrap().name, "E");
        assert_eq!(
            argmin(&points, MetricKind::TotalCarbon, &ctx).unwrap().name,
            "A"
        );
    }

    #[test]
    fn tcdp_optimal_is_less_energy_efficient_than_edp_optimal() {
        // Fig. 3(b): "E" has worse EDP but less total carbon pressure than
        // "D" would at the same operational profile.
        let (points, _) = design_points(&Scenario::default());
        let d = points.iter().find(|p| p.name == "D").unwrap();
        let e = points.iter().find(|p| p.name == "E").unwrap();
        assert!(e.edp() > d.edp());
        assert!(e.delay < d.delay);
    }
}
