//! Carbon- and energy-efficiency metrics (§III).
//!
//! The central object is a [`DesignPoint`]: one hardware candidate
//! characterized by its task delay `D`, task energy `E`, embodied carbon,
//! die area, and power. Metrics are evaluated against an
//! [`OperationalContext`] — how many times the task runs over the
//! hardware's life and at what use-phase carbon intensity — because total
//! carbon (and therefore tCDP and CCI) is meaningless without one.
//!
//! | resource | per-task metric | rate-weighted metric |
//! |----------|-----------------|----------------------|
//! | energy   | `E_task` (J)    | EDP (J·s)            |
//! | carbon   | CCI (gCO2e/task)| tCDP (gCO2e·s)       |

use cordoba_carbon::operational::operational_carbon;
use cordoba_carbon::units::{
    CarbonIntensity, GramSecondsCo2e, GramsCo2e, JouleSeconds, Joules, Seconds, SquareCentimeters,
    Watts,
};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One candidate hardware design, characterized for a fixed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Candidate name (e.g. `"a48"`, `"3D_2K_8M"`, `"IC-E"`).
    pub name: String,
    /// Execution time of one task (`D`).
    pub delay: Seconds,
    /// Energy of one task execution (`E`).
    pub energy: Joules,
    /// Embodied carbon of manufacturing the hardware.
    pub embodied: GramsCo2e,
    /// Total die area (for area constraints and Fig. 7).
    pub area: SquareCentimeters,
}

impl DesignPoint {
    /// Creates a design point.
    ///
    /// # Errors
    ///
    /// Returns an error if delay/energy/area are not positive or embodied
    /// carbon is negative.
    pub fn new(
        name: impl Into<String>,
        delay: Seconds,
        energy: Joules,
        embodied: GramsCo2e,
        area: SquareCentimeters,
    ) -> Result<Self, CarbonError> {
        CarbonError::require_positive("delay", delay.value())?;
        CarbonError::require_positive("energy", energy.value())?;
        CarbonError::require_in_range("embodied", embodied.value(), 0.0, f64::MAX)?;
        CarbonError::require_positive("area", area.value())?;
        Ok(Self {
            name: name.into(),
            delay,
            energy,
            embodied,
            area,
        })
    }

    /// Average power over a task execution.
    #[must_use]
    pub fn power(&self) -> Watts {
        self.energy / self.delay
    }

    /// Energy-delay product (J·s — "Joules per Hz").
    #[must_use]
    pub fn edp(&self) -> JouleSeconds {
        self.energy * self.delay
    }

    /// Energy-delay² product (J·s²).
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        self.energy.value() * self.delay.value() * self.delay.value()
    }

    /// Operational carbon over `ctx.tasks` executions.
    #[must_use]
    pub fn operational(&self, ctx: &OperationalContext) -> GramsCo2e {
        operational_carbon(ctx.ci_use, self.energy * ctx.tasks)
    }

    /// Total lifetime carbon `tC = C_embodied + C_operational` (§IV).
    #[must_use]
    pub fn total_carbon(&self, ctx: &OperationalContext) -> GramsCo2e {
        self.embodied + self.operational(ctx)
    }

    /// Computational carbon intensity `CCI = tC / N_task` \[50\].
    #[must_use]
    pub fn cci(&self, ctx: &OperationalContext) -> GramsCo2e {
        self.total_carbon(ctx) / ctx.tasks
    }

    /// Total-carbon-delay product `tCDP = tC · D` (gCO2e·s — the paper's
    /// carbon-efficiency metric).
    #[must_use]
    pub fn tcdp(&self, ctx: &OperationalContext) -> GramSecondsCo2e {
        self.total_carbon(ctx) * self.delay
    }

    /// Total-carbon-delay² product (gCO2e·s²) — shown in §III-C to lack
    /// the justification `tCDP` has; provided for comparison studies.
    #[must_use]
    pub fn tcd2p(&self, ctx: &OperationalContext) -> f64 {
        self.total_carbon(ctx).value() * self.delay.value() * self.delay.value()
    }

    /// The embodied share of total carbon, in `[0, 1]`.
    #[must_use]
    pub fn embodied_share(&self, ctx: &OperationalContext) -> f64 {
        self.embodied.value() / self.total_carbon(ctx).value()
    }

    /// `C_embodied · D` — the x-axis of the paper's Fig. 12 uncertainty
    /// analysis (§IV-B).
    #[must_use]
    pub fn embodied_delay(&self) -> GramSecondsCo2e {
        self.embodied * self.delay
    }

    /// `E · D` per task execution — the y-axis of Fig. 12.
    #[must_use]
    pub fn energy_delay(&self) -> JouleSeconds {
        self.energy * self.delay
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: D={:.3e} s, E={:.3e} J, C_emb={:.1} gCO2e",
            self.name,
            self.delay.value(),
            self.energy.value(),
            self.embodied.value()
        )
    }
}

/// How the hardware is used over its life: task count and grid intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperationalContext {
    /// Number of task executions over the hardware lifetime
    /// (the paper's "operational time in number of inferences").
    pub tasks: f64,
    /// Use-phase carbon intensity.
    pub ci_use: CarbonIntensity,
}

impl OperationalContext {
    /// Creates a context.
    ///
    /// # Errors
    ///
    /// Returns an error if `tasks` is not positive or the intensity is
    /// negative.
    pub fn new(tasks: f64, ci_use: CarbonIntensity) -> Result<Self, CarbonError> {
        CarbonError::require_positive("tasks", tasks)?;
        CarbonError::require_in_range("ci_use", ci_use.value(), 0.0, f64::MAX)?;
        Ok(Self { tasks, ci_use })
    }

    /// A context at the paper's default 380 gCO2e/kWh.
    ///
    /// # Panics
    ///
    /// Panics if `tasks` is not positive (use [`OperationalContext::new`]
    /// for fallible construction).
    #[must_use]
    pub fn us_grid(tasks: f64) -> Self {
        Self::new(tasks, cordoba_carbon::intensity::grids::US_AVERAGE)
            .expect("tasks must be positive") // cordoba-lint: allow(no-panic) — documented "# Panics" contract
    }
}

/// Which metric an optimization targets (§III-C: the target should derive
/// from the application scenario, not a preconceived carbon/delay weight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MetricKind {
    /// Energy per task.
    Energy,
    /// Energy-delay product.
    Edp,
    /// Energy-delay² product.
    Ed2p,
    /// Total lifetime carbon.
    TotalCarbon,
    /// Carbon per task.
    Cci,
    /// Total-carbon-delay product (the paper's carbon-efficiency metric).
    Tcdp,
    /// Total-carbon-delay² product.
    Tcd2p,
    /// Task delay alone.
    Delay,
    /// Die area alone.
    Area,
}

impl MetricKind {
    /// Evaluates this metric for `point` under `ctx`. All metrics are
    /// "lower is better".
    #[must_use]
    pub fn evaluate(self, point: &DesignPoint, ctx: &OperationalContext) -> f64 {
        match self {
            Self::Energy => point.energy.value(),
            Self::Edp => point.edp().value(),
            Self::Ed2p => point.ed2p(),
            Self::TotalCarbon => point.total_carbon(ctx).value(),
            Self::Cci => point.cci(ctx).value(),
            Self::Tcdp => point.tcdp(ctx).value(),
            Self::Tcd2p => point.tcd2p(ctx),
            Self::Delay => point.delay.value(),
            Self::Area => point.area.value(),
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Energy => "E_task",
            Self::Edp => "EDP",
            Self::Ed2p => "ED2P",
            Self::TotalCarbon => "tC",
            Self::Cci => "CCI",
            Self::Tcdp => "tCDP",
            Self::Tcd2p => "tCD2P",
            Self::Delay => "D",
            Self::Area => "A",
        }
    }
}

/// Finds the point minimizing `metric` under `ctx`.
///
/// Returns `None` for an empty slice.
#[must_use]
pub fn argmin<'a>(
    points: &'a [DesignPoint],
    metric: MetricKind,
    ctx: &OperationalContext,
) -> Option<&'a DesignPoint> {
    points
        .iter()
        .min_by(|a, b| metric.evaluate(a, ctx).total_cmp(&metric.evaluate(b, ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_carbon::units::JOULES_PER_KILOWATT_HOUR;

    fn point(name: &str, d: f64, e: f64, emb: f64) -> DesignPoint {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        )
        .unwrap()
    }

    #[test]
    fn edp_and_power() {
        let p = point("x", 0.125, 0.4, 3000.0);
        assert!((p.edp().value() - 0.05).abs() < 1e-12);
        assert!((p.power().value() - 3.2).abs() < 1e-12);
        assert!((p.ed2p() - 0.00625).abs() < 1e-12);
    }

    #[test]
    fn total_carbon_splits_into_components() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 1000.0); // 1 kWh per task
        let ctx = OperationalContext::us_grid(10.0);
        assert!((p.operational(&ctx).value() - 3800.0).abs() < 1e-9);
        assert!((p.total_carbon(&ctx).value() - 4800.0).abs() < 1e-9);
        assert!((p.cci(&ctx).value() - 480.0).abs() < 1e-9);
        assert!((p.tcdp(&ctx).value() - 4800.0).abs() < 1e-9);
        assert!((p.embodied_share(&ctx) - 1000.0 / 4800.0).abs() < 1e-12);
        assert!((p.tcd2p(&ctx) - 4800.0).abs() < 1e-9);
    }

    #[test]
    fn embodied_dominates_at_low_task_counts() {
        let p = point("x", 1.0, 100.0, 3000.0);
        let low = OperationalContext::us_grid(1.0);
        let high = OperationalContext::us_grid(1e9);
        assert!(p.embodied_share(&low) > 0.99);
        assert!(p.embodied_share(&high) < 0.01);
    }

    #[test]
    fn fig12_axes() {
        let p = point("x", 2.0, 5.0, 100.0);
        assert_eq!(
            p.embodied_delay(),
            GramsCo2e::new(100.0) * Seconds::new(2.0)
        );
        assert_eq!(p.energy_delay(), Joules::new(5.0) * Seconds::new(2.0));
    }

    #[test]
    fn metric_kind_evaluation_is_consistent() {
        let p = point("x", 0.5, 2.0, 10.0);
        let ctx = OperationalContext::us_grid(100.0);
        assert_eq!(MetricKind::Delay.evaluate(&p, &ctx), 0.5);
        assert_eq!(MetricKind::Energy.evaluate(&p, &ctx), 2.0);
        assert_eq!(MetricKind::Edp.evaluate(&p, &ctx), p.edp().value());
        assert_eq!(MetricKind::Tcdp.evaluate(&p, &ctx), p.tcdp(&ctx).value());
        assert_eq!(MetricKind::Cci.evaluate(&p, &ctx), p.cci(&ctx).value());
        assert_eq!(MetricKind::Area.evaluate(&p, &ctx), 1.0);
        assert_eq!(MetricKind::Tcdp.label(), "tCDP");
    }

    #[test]
    fn argmin_picks_different_winners_per_metric() {
        // The §III story: E_task picks the slow design, EDP/tCDP do not.
        let slow_frugal = point("A", 5.0, 0.19, 3000.0);
        let fast = point("B", 0.5, 0.2, 3000.0);
        let points = vec![slow_frugal, fast];
        let ctx = OperationalContext::us_grid(1e6);
        assert_eq!(argmin(&points, MetricKind::Energy, &ctx).unwrap().name, "A");
        assert_eq!(argmin(&points, MetricKind::Edp, &ctx).unwrap().name, "B");
        assert_eq!(argmin(&points, MetricKind::Tcdp, &ctx).unwrap().name, "B");
        assert!(argmin(&[], MetricKind::Edp, &ctx).is_none());
    }

    #[test]
    fn validation() {
        assert!(DesignPoint::new(
            "bad",
            Seconds::ZERO,
            Joules::new(1.0),
            GramsCo2e::new(1.0),
            SquareCentimeters::new(1.0)
        )
        .is_err());
        assert!(DesignPoint::new(
            "bad",
            Seconds::new(1.0),
            Joules::new(1.0),
            GramsCo2e::new(-1.0),
            SquareCentimeters::new(1.0)
        )
        .is_err());
        assert!(OperationalContext::new(0.0, CarbonIntensity::new(380.0)).is_err());
        assert!(OperationalContext::new(1.0, CarbonIntensity::new(-1.0)).is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = point("a48", 0.5, 2.0, 10.0).to_string();
        assert!(s.contains("a48") && s.contains("gCO2e"));
    }
}
