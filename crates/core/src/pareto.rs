//! Pareto frontiers and lower convex hulls in two dimensions.
//!
//! §IV-B eliminates designs that cannot be tCDP-optimal for *any* value of
//! the unknown `CI_use(t)` by keeping only the Pareto-optimal curve of
//! `E·D` versus `C_embodied·D`. Strictly, the β-scalarization of eq. IV.9
//! selects the *lower convex hull* of that point set — a subset of the
//! Pareto frontier. Both are provided; the ablation bench compares them.

use serde::{Deserialize, Serialize};

/// A named point in a 2-D minimize-both objective space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// Candidate name.
    pub name: String,
    /// First objective (lower is better).
    pub x: f64,
    /// Second objective (lower is better).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[must_use]
    pub fn new(name: impl Into<String>, x: f64, y: f64) -> Self {
        Self {
            name: name.into(),
            x,
            y,
        }
    }

    /// `true` when `self` dominates `other`: no worse in both objectives
    /// and strictly better in at least one.
    #[must_use]
    pub fn dominates(&self, other: &Point2) -> bool {
        self.x <= other.x && self.y <= other.y && (self.x < other.x || self.y < other.y)
    }
}

/// Indices of the Pareto-optimal (non-dominated) points, in input order.
///
/// Duplicate coordinates are all retained (none strictly dominates the
/// other). Runs in `O(n log n)` via a sort-based skyline scan and returns
/// exactly the index set of the all-pairs reference
/// [`pareto_indices_naive`] on every input, including NaN and infinite
/// coordinates.
///
/// # Examples
///
/// ```
/// use cordoba::pareto::{pareto_indices, Point2};
///
/// let pts = vec![
///     Point2::new("good-x", 1.0, 5.0),
///     Point2::new("dominated", 2.0, 6.0),
///     Point2::new("good-y", 3.0, 1.0),
/// ];
/// assert_eq!(pareto_indices(&pts), vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_indices(points: &[Point2]) -> Vec<usize> {
    // NaN coordinates compare false to everything, so under the dominance
    // rules such points never dominate and are never dominated: they
    // always survive and play no part in the scan.
    let mut survivors: Vec<usize> = Vec::new();
    let mut order: Vec<usize> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        if p.x.is_nan() || p.y.is_nan() {
            survivors.push(i);
        } else {
            order.push(i);
        }
    }
    // Sort by (x, y); `total_cmp` keeps -0.0 next to 0.0, and the group
    // scan below treats numerically equal x values as one group.
    order.sort_by(|&a, &b| {
        points[a]
            .x
            .total_cmp(&points[b].x)
            .then(points[a].y.total_cmp(&points[b].y))
    });

    // Skyline scan: walk groups of equal x left to right, tracking the
    // best (smallest) y seen at strictly smaller x. A point survives iff
    // nothing at strictly smaller x has y <= its own (that point would
    // dominate via strictly better x) and nothing in its own group has a
    // strictly smaller y (equal x, strictly better y). `has_prev`
    // matters: seeding `best_prev` with +inf would wrongly dominate a
    // first-group point whose y is +inf.
    let mut best_prev = f64::INFINITY;
    let mut has_prev = false;
    let mut g = 0;
    while g < order.len() {
        let group_x = points[order[g]].x;
        let mut end = g + 1;
        // Numeric group boundary without float `==`: the sort is
        // ascending, so a later point stays in the group exactly while
        // `group_x >= x` — NaN was filtered above, and `>=` (unlike
        // `total_cmp`) keeps -0.0 and 0.0 in one group.
        while end < order.len() && group_x >= points[order[end]].x {
            end += 1;
        }
        // The group is sorted by y, so its first element holds the
        // group's minimum y.
        let group_min_y = points[order[g]].y;
        for &idx in &order[g..end] {
            let y = points[idx].y;
            let dominated_by_prev = has_prev && y >= best_prev;
            let dominated_in_group = group_min_y < y;
            if !dominated_by_prev && !dominated_in_group {
                survivors.push(idx);
            }
        }
        best_prev = best_prev.min(group_min_y);
        has_prev = true;
        g = end;
    }
    survivors.sort_unstable();
    survivors
}

/// Reference all-pairs `O(n²)` Pareto filter.
///
/// Kept as the executable specification for [`pareto_indices`]: property
/// tests assert index-set equality between the two on every seed, and the
/// bench suite measures the skyline speedup against this baseline.
#[must_use]
pub fn pareto_indices_naive(points: &[Point2]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&points[i]))
        })
        .collect()
}

/// The Pareto-optimal points themselves.
#[must_use]
pub fn pareto_front(points: &[Point2]) -> Vec<Point2> {
    pareto_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Indices of the lower convex hull (the support set of all linear
/// scalarizations `x + β·y`, `β ∈ [0, ∞)`), sorted by increasing `x`.
///
/// These are exactly the designs some Lagrange multiplier β can make
/// optimal in eq. IV.9; they are a subset of [`pareto_indices`].
#[must_use]
pub fn lower_hull_indices(points: &[Point2]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    // Start from the Pareto front sorted by x ascending (y then descends).
    let mut front = pareto_indices(points);
    front.sort_by(|&a, &b| {
        points[a]
            .x
            .total_cmp(&points[b].x)
            .then(points[a].y.total_cmp(&points[b].y))
    });
    front.dedup_by(|&mut a, &mut b| points[a].x == points[b].x && points[a].y == points[b].y);
    // Monotone-chain lower hull over the front.
    let mut hull: Vec<usize> = Vec::with_capacity(front.len());
    for &i in &front {
        while hull.len() >= 2 {
            let a = &points[hull[hull.len() - 2]];
            let b = &points[hull[hull.len() - 1]];
            let c = &points[i];
            // Keep b only if it lies strictly below segment a-c; cross > 0
            // means the chain turns left (convex for a lower hull).
            let cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull
}

/// A named point in a k-dimensional minimize-all objective space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointK {
    /// Candidate name.
    pub name: String,
    /// Objective values (all lower-is-better).
    pub objectives: Vec<f64>,
}

impl PointK {
    /// Creates a point.
    #[must_use]
    pub fn new(name: impl Into<String>, objectives: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            objectives,
        }
    }

    /// `true` when `self` dominates `other` (no worse everywhere, strictly
    /// better somewhere). Points of mismatched dimension never dominate.
    #[must_use]
    pub fn dominates(&self, other: &PointK) -> bool {
        if self.objectives.len() != other.objectives.len() {
            return false;
        }
        let mut strictly = false;
        for (a, b) in self.objectives.iter().zip(&other.objectives) {
            if a > b {
                return false;
            }
            if a < b {
                strictly = true;
            }
        }
        strictly
    }
}

/// Indices of the k-dimensional Pareto-optimal points, in input order.
///
/// Used for elimination when *multiple* carbon factors are unknown
/// simultaneously (e.g. both `CI_use(t)` and `CI_fab`, §IV-B's suggested
/// extension): any design dominated in
/// (`materials·D`, `fab_energy·D`, `E·D`) cannot be tCDP-optimal for any
/// non-negative pair of intensities.
///
/// # Examples
///
/// ```
/// use cordoba::pareto::{pareto_indices_kd, PointK};
///
/// let pts = vec![
///     PointK::new("a", vec![1.0, 5.0, 2.0]),
///     PointK::new("b", vec![2.0, 6.0, 3.0]), // dominated by a
///     PointK::new("c", vec![3.0, 1.0, 9.0]),
/// ];
/// assert_eq!(pareto_indices_kd(&pts), vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_indices_kd(points: &[PointK]) -> Vec<usize> {
    // The pre-sort argument below needs finite sums: with an infinity (or
    // NaN) in play, a dominator's objective sum is no longer strictly
    // smaller than its victim's, so fall back to the all-pairs reference.
    let all_finite = points
        .iter()
        .all(|p| p.objectives.iter().all(|o| o.is_finite()));
    if !all_finite {
        return pareto_indices_kd_naive(points);
    }
    // Sort by ascending objective sum. If `a` dominates `b` then `a` is
    // <= everywhere and < somewhere, so sum(a) < sum(b) strictly: every
    // dominator precedes its victims. By transitivity a rejected
    // dominator's own (accepted) dominator also dominates the victim, so
    // each candidate only needs checking against the accepted front —
    // still O(n²) worst case, but the front is typically tiny and the
    // scan short-circuits on the first hit.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        let sum = |i: usize| points[i].objectives.iter().sum::<f64>();
        sum(a).total_cmp(&sum(b))
    });
    let mut front: Vec<usize> = Vec::new();
    for &i in &order {
        if !front.iter().any(|&j| points[j].dominates(&points[i])) {
            front.push(i);
        }
    }
    front.sort_unstable();
    front
}

/// Reference all-pairs k-dimensional Pareto filter (the executable
/// specification for [`pareto_indices_kd`]'s pre-sorted fast path, and its
/// fallback for non-finite objectives).
#[must_use]
pub fn pareto_indices_kd_naive(points: &[PointK]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&points[i]))
        })
        .collect()
}

/// Fraction of `points` eliminated by keeping only the Pareto front.
///
/// Returns 0 for an empty input.
#[must_use]
pub fn elimination_fraction(points: &[Point2]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    1.0 - pareto_indices(points).len() as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(format!("p{i}"), x, y))
            .collect()
    }

    #[test]
    fn domination_rules() {
        let a = Point2::new("a", 1.0, 1.0);
        let b = Point2::new("b", 2.0, 2.0);
        let c = Point2::new("c", 1.0, 2.0);
        let d = Point2::new("d", 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&d)); // equal points do not dominate
        assert!(c.dominates(&b)); // c dominates b (x smaller, y equal)
    }

    #[test]
    fn front_of_staircase() {
        let points = pts(&[(1.0, 5.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (5.0, 1.5)]);
        let front = pareto_indices(&points);
        assert_eq!(front, vec![0, 1, 2, 4]); // (4,4) dominated by (3,2)
    }

    #[test]
    fn hull_is_subset_of_front() {
        // (2.0, 3.1) is Pareto-optimal but above the chord from (1,5) to
        // (3,2): no β can select it.
        let points = pts(&[(1.0, 5.0), (2.0, 3.6), (3.0, 2.0)]);
        let front = pareto_indices(&points);
        assert_eq!(front.len(), 3);
        let hull = lower_hull_indices(&points);
        assert_eq!(hull, vec![0, 2]);
    }

    #[test]
    fn hull_keeps_convex_knees() {
        let points = pts(&[(1.0, 5.0), (2.0, 2.5), (3.0, 2.0)]);
        let hull = lower_hull_indices(&points);
        assert_eq!(hull, vec![0, 1, 2]);
    }

    #[test]
    fn every_hull_point_wins_some_beta() {
        let points = pts(&[
            (1.0, 9.0),
            (2.0, 4.0),
            (4.0, 2.0),
            (8.0, 1.0),
            (3.0, 8.0),
            (6.0, 6.0),
        ]);
        let hull = lower_hull_indices(&points);
        for &i in &hull {
            let mut wins = false;
            for exp in -60..=60 {
                let beta = 2f64.powi(exp);
                let best = (0..points.len())
                    .min_by(|&a, &b| {
                        (points[a].x + beta * points[a].y)
                            .total_cmp(&(points[b].x + beta * points[b].y))
                    })
                    .unwrap();
                if best == i {
                    wins = true;
                    break;
                }
            }
            assert!(wins, "hull point {i} never wins a scalarization");
        }
    }

    #[test]
    fn no_off_front_point_wins_any_beta() {
        let points = pts(&[(1.0, 5.0), (2.0, 6.0), (3.0, 2.0)]);
        // p1 is dominated; for every beta it must lose.
        for exp in -40..=40 {
            let beta = 2f64.powi(exp);
            let best = (0..points.len())
                .min_by(|&a, &b| {
                    (points[a].x + beta * points[a].y)
                        .total_cmp(&(points[b].x + beta * points[b].y))
                })
                .unwrap();
            assert_ne!(best, 1);
        }
    }

    #[test]
    fn elimination_fraction_counts_dominated() {
        let points = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (0.5, 4.0)]);
        // Front: (1,1) and (0.5,4). 2 of 4 eliminated.
        assert!((elimination_fraction(&points) - 0.5).abs() < 1e-12);
        assert_eq!(elimination_fraction(&[]), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pareto_indices(&[]).is_empty());
        assert!(lower_hull_indices(&[]).is_empty());
        let single = pts(&[(1.0, 1.0)]);
        assert_eq!(pareto_indices(&single), vec![0]);
        assert_eq!(lower_hull_indices(&single), vec![0]);
        // Duplicates are all kept on the front, deduped on the hull.
        let dup = pts(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(pareto_indices(&dup).len(), 2);
        assert_eq!(lower_hull_indices(&dup).len(), 1);
    }

    #[test]
    fn kd_domination_and_front() {
        let pts = vec![
            PointK::new("a", vec![1.0, 1.0, 1.0]),
            PointK::new("b", vec![1.0, 1.0, 2.0]), // dominated by a
            PointK::new("c", vec![0.5, 2.0, 3.0]),
            PointK::new("d", vec![2.0, 0.5, 3.0]),
        ];
        assert!(pts[0].dominates(&pts[1]));
        assert!(!pts[1].dominates(&pts[0]));
        assert!(!pts[2].dominates(&pts[3]));
        assert_eq!(pareto_indices_kd(&pts), vec![0, 2, 3]);
        // Equal points do not dominate each other.
        let eq = vec![
            PointK::new("x", vec![1.0, 2.0]),
            PointK::new("y", vec![1.0, 2.0]),
        ];
        assert_eq!(pareto_indices_kd(&eq).len(), 2);
        // Dimension mismatch never dominates.
        let odd = PointK::new("odd", vec![0.0]);
        assert!(!odd.dominates(&pts[0]));
        assert!(pareto_indices_kd(&[]).is_empty());
    }

    #[test]
    fn kd_front_reduces_to_2d_front() {
        let coords = [(1.0, 5.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (5.0, 1.5)];
        let p2 = pts(&coords);
        let pk: Vec<PointK> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| PointK::new(format!("p{i}"), vec![x, y]))
            .collect();
        assert_eq!(pareto_indices(&p2), pareto_indices_kd(&pk));
    }

    /// Deterministic xorshift stream for the agreement tests.
    fn xorshift_points(seed: u64, n: usize) -> Vec<Point2> {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Point2::new(format!("r{i}"), next() * 100.0, next() * 100.0))
            .collect()
    }

    #[test]
    fn skyline_matches_naive_on_random_clouds() {
        for seed in 1..=20u64 {
            let points = xorshift_points(seed, 300);
            assert_eq!(
                pareto_indices(&points),
                pareto_indices_naive(&points),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn skyline_matches_naive_on_degenerate_coordinates() {
        let inf = f64::INFINITY;
        let cases: Vec<Vec<Point2>> = vec![
            pts(&[(0.0, -0.0), (-0.0, 0.0), (1.0, 1.0)]),
            pts(&[(inf, 0.0), (0.0, inf), (inf, inf), (1.0, 1.0)]),
            pts(&[(inf, inf), (inf, inf)]),
            pts(&[(f64::NAN, 1.0), (1.0, f64::NAN), (0.5, 0.5), (2.0, 2.0)]),
            pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 2.0), (2.0, 1.0)]),
            pts(&[(-inf, 5.0), (0.0, 5.0), (-inf, 4.0)]),
            Vec::new(),
        ];
        for (k, points) in cases.iter().enumerate() {
            assert_eq!(
                pareto_indices(points),
                pareto_indices_naive(points),
                "case {k}"
            );
        }
    }

    #[test]
    fn kd_presort_matches_naive() {
        let mut state = 99u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for dims in [1usize, 2, 3, 4] {
            let points: Vec<PointK> = (0..120)
                .map(|i| PointK::new(format!("k{i}"), (0..dims).map(|_| next() * 10.0).collect()))
                .collect();
            assert_eq!(
                pareto_indices_kd(&points),
                pareto_indices_kd_naive(&points),
                "dims {dims}"
            );
        }
        // Non-finite objectives take the fallback and still agree.
        let weird = vec![
            PointK::new("a", vec![f64::INFINITY, 0.0]),
            PointK::new("b", vec![0.0, f64::NAN]),
            PointK::new("c", vec![1.0, 1.0]),
            PointK::new("d", vec![2.0, 2.0]),
        ];
        assert_eq!(pareto_indices_kd(&weird), pareto_indices_kd_naive(&weird));
    }

    #[test]
    fn front_returns_points() {
        let points = pts(&[(1.0, 2.0), (2.0, 1.0), (2.0, 2.0)]);
        let front = pareto_front(&points);
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].name, "p0");
    }
}
