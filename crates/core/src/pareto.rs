//! Pareto frontiers and lower convex hulls in two dimensions.
//!
//! §IV-B eliminates designs that cannot be tCDP-optimal for *any* value of
//! the unknown `CI_use(t)` by keeping only the Pareto-optimal curve of
//! `E·D` versus `C_embodied·D`. Strictly, the β-scalarization of eq. IV.9
//! selects the *lower convex hull* of that point set — a subset of the
//! Pareto frontier. Both are provided; the ablation bench compares them.

use serde::{Deserialize, Serialize};

/// A named point in a 2-D minimize-both objective space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// Candidate name.
    pub name: String,
    /// First objective (lower is better).
    pub x: f64,
    /// Second objective (lower is better).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    #[must_use]
    pub fn new(name: impl Into<String>, x: f64, y: f64) -> Self {
        Self {
            name: name.into(),
            x,
            y,
        }
    }

    /// `true` when `self` dominates `other`: no worse in both objectives
    /// and strictly better in at least one.
    #[must_use]
    pub fn dominates(&self, other: &Point2) -> bool {
        self.x <= other.x && self.y <= other.y && (self.x < other.x || self.y < other.y)
    }
}

/// Indices of the Pareto-optimal (non-dominated) points, in input order.
///
/// Duplicate coordinates are all retained (none strictly dominates the
/// other).
///
/// # Examples
///
/// ```
/// use cordoba::pareto::{pareto_indices, Point2};
///
/// let pts = vec![
///     Point2::new("good-x", 1.0, 5.0),
///     Point2::new("dominated", 2.0, 6.0),
///     Point2::new("good-y", 3.0, 1.0),
/// ];
/// assert_eq!(pareto_indices(&pts), vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_indices(points: &[Point2]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&points[i]))
        })
        .collect()
}

/// The Pareto-optimal points themselves.
#[must_use]
pub fn pareto_front(points: &[Point2]) -> Vec<Point2> {
    pareto_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Indices of the lower convex hull (the support set of all linear
/// scalarizations `x + β·y`, `β ∈ [0, ∞)`), sorted by increasing `x`.
///
/// These are exactly the designs some Lagrange multiplier β can make
/// optimal in eq. IV.9; they are a subset of [`pareto_indices`].
#[must_use]
pub fn lower_hull_indices(points: &[Point2]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    // Start from the Pareto front sorted by x ascending (y then descends).
    let mut front = pareto_indices(points);
    front.sort_by(|&a, &b| {
        points[a]
            .x
            .total_cmp(&points[b].x)
            .then(points[a].y.total_cmp(&points[b].y))
    });
    front.dedup_by(|&mut a, &mut b| points[a].x == points[b].x && points[a].y == points[b].y);
    // Monotone-chain lower hull over the front.
    let mut hull: Vec<usize> = Vec::with_capacity(front.len());
    for &i in &front {
        while hull.len() >= 2 {
            let a = &points[hull[hull.len() - 2]];
            let b = &points[hull[hull.len() - 1]];
            let c = &points[i];
            // Keep b only if it lies strictly below segment a-c; cross > 0
            // means the chain turns left (convex for a lower hull).
            let cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
            if cross <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull
}

/// A named point in a k-dimensional minimize-all objective space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointK {
    /// Candidate name.
    pub name: String,
    /// Objective values (all lower-is-better).
    pub objectives: Vec<f64>,
}

impl PointK {
    /// Creates a point.
    #[must_use]
    pub fn new(name: impl Into<String>, objectives: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            objectives,
        }
    }

    /// `true` when `self` dominates `other` (no worse everywhere, strictly
    /// better somewhere). Points of mismatched dimension never dominate.
    #[must_use]
    pub fn dominates(&self, other: &PointK) -> bool {
        if self.objectives.len() != other.objectives.len() {
            return false;
        }
        let mut strictly = false;
        for (a, b) in self.objectives.iter().zip(&other.objectives) {
            if a > b {
                return false;
            }
            if a < b {
                strictly = true;
            }
        }
        strictly
    }
}

/// Indices of the k-dimensional Pareto-optimal points, in input order.
///
/// Used for elimination when *multiple* carbon factors are unknown
/// simultaneously (e.g. both `CI_use(t)` and `CI_fab`, §IV-B's suggested
/// extension): any design dominated in
/// (`materials·D`, `fab_energy·D`, `E·D`) cannot be tCDP-optimal for any
/// non-negative pair of intensities.
///
/// # Examples
///
/// ```
/// use cordoba::pareto::{pareto_indices_kd, PointK};
///
/// let pts = vec![
///     PointK::new("a", vec![1.0, 5.0, 2.0]),
///     PointK::new("b", vec![2.0, 6.0, 3.0]), // dominated by a
///     PointK::new("c", vec![3.0, 1.0, 9.0]),
/// ];
/// assert_eq!(pareto_indices_kd(&pts), vec![0, 2]);
/// ```
#[must_use]
pub fn pareto_indices_kd(points: &[PointK]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.dominates(&points[i]))
        })
        .collect()
}

/// Fraction of `points` eliminated by keeping only the Pareto front.
///
/// Returns 0 for an empty input.
#[must_use]
pub fn elimination_fraction(points: &[Point2]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    1.0 - pareto_indices(points).len() as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(format!("p{i}"), x, y))
            .collect()
    }

    #[test]
    fn domination_rules() {
        let a = Point2::new("a", 1.0, 1.0);
        let b = Point2::new("b", 2.0, 2.0);
        let c = Point2::new("c", 1.0, 2.0);
        let d = Point2::new("d", 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&d)); // equal points do not dominate
        assert!(!c.dominates(&b) || c.dominates(&b)); // c dominates b (x smaller, y equal)
        assert!(c.dominates(&b));
    }

    #[test]
    fn front_of_staircase() {
        let points = pts(&[(1.0, 5.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (5.0, 1.5)]);
        let front = pareto_indices(&points);
        assert_eq!(front, vec![0, 1, 2, 4]); // (4,4) dominated by (3,2)
    }

    #[test]
    fn hull_is_subset_of_front() {
        // (2.0, 3.1) is Pareto-optimal but above the chord from (1,5) to
        // (3,2): no β can select it.
        let points = pts(&[(1.0, 5.0), (2.0, 3.6), (3.0, 2.0)]);
        let front = pareto_indices(&points);
        assert_eq!(front.len(), 3);
        let hull = lower_hull_indices(&points);
        assert_eq!(hull, vec![0, 2]);
    }

    #[test]
    fn hull_keeps_convex_knees() {
        let points = pts(&[(1.0, 5.0), (2.0, 2.5), (3.0, 2.0)]);
        let hull = lower_hull_indices(&points);
        assert_eq!(hull, vec![0, 1, 2]);
    }

    #[test]
    fn every_hull_point_wins_some_beta() {
        let points = pts(&[
            (1.0, 9.0),
            (2.0, 4.0),
            (4.0, 2.0),
            (8.0, 1.0),
            (3.0, 8.0),
            (6.0, 6.0),
        ]);
        let hull = lower_hull_indices(&points);
        for &i in &hull {
            let mut wins = false;
            for exp in -60..=60 {
                let beta = 2f64.powi(exp);
                let best = (0..points.len())
                    .min_by(|&a, &b| {
                        (points[a].x + beta * points[a].y)
                            .total_cmp(&(points[b].x + beta * points[b].y))
                    })
                    .unwrap();
                if best == i {
                    wins = true;
                    break;
                }
            }
            assert!(wins, "hull point {i} never wins a scalarization");
        }
    }

    #[test]
    fn no_off_front_point_wins_any_beta() {
        let points = pts(&[(1.0, 5.0), (2.0, 6.0), (3.0, 2.0)]);
        // p1 is dominated; for every beta it must lose.
        for exp in -40..=40 {
            let beta = 2f64.powi(exp);
            let best = (0..points.len())
                .min_by(|&a, &b| {
                    (points[a].x + beta * points[a].y)
                        .total_cmp(&(points[b].x + beta * points[b].y))
                })
                .unwrap();
            assert_ne!(best, 1);
        }
    }

    #[test]
    fn elimination_fraction_counts_dominated() {
        let points = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (0.5, 4.0)]);
        // Front: (1,1) and (0.5,4). 2 of 4 eliminated.
        assert!((elimination_fraction(&points) - 0.5).abs() < 1e-12);
        assert_eq!(elimination_fraction(&[]), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pareto_indices(&[]).is_empty());
        assert!(lower_hull_indices(&[]).is_empty());
        let single = pts(&[(1.0, 1.0)]);
        assert_eq!(pareto_indices(&single), vec![0]);
        assert_eq!(lower_hull_indices(&single), vec![0]);
        // Duplicates are all kept on the front, deduped on the hull.
        let dup = pts(&[(1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(pareto_indices(&dup).len(), 2);
        assert_eq!(lower_hull_indices(&dup).len(), 1);
    }

    #[test]
    fn kd_domination_and_front() {
        let pts = vec![
            PointK::new("a", vec![1.0, 1.0, 1.0]),
            PointK::new("b", vec![1.0, 1.0, 2.0]), // dominated by a
            PointK::new("c", vec![0.5, 2.0, 3.0]),
            PointK::new("d", vec![2.0, 0.5, 3.0]),
        ];
        assert!(pts[0].dominates(&pts[1]));
        assert!(!pts[1].dominates(&pts[0]));
        assert!(!pts[2].dominates(&pts[3]));
        assert_eq!(pareto_indices_kd(&pts), vec![0, 2, 3]);
        // Equal points do not dominate each other.
        let eq = vec![
            PointK::new("x", vec![1.0, 2.0]),
            PointK::new("y", vec![1.0, 2.0]),
        ];
        assert_eq!(pareto_indices_kd(&eq).len(), 2);
        // Dimension mismatch never dominates.
        let odd = PointK::new("odd", vec![0.0]);
        assert!(!odd.dominates(&pts[0]));
        assert!(pareto_indices_kd(&[]).is_empty());
    }

    #[test]
    fn kd_front_reduces_to_2d_front() {
        let coords = [(1.0, 5.0), (2.0, 3.0), (3.0, 2.0), (4.0, 4.0), (5.0, 1.5)];
        let p2 = pts(&coords);
        let pk: Vec<PointK> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| PointK::new(format!("p{i}"), vec![x, y]))
            .collect();
        assert_eq!(pareto_indices(&p2), pareto_indices_kd(&pk));
    }

    #[test]
    fn front_returns_points() {
        let points = pts(&[(1.0, 2.0), (2.0, 1.0), (2.0, 2.0)]);
        let front = pareto_front(&points);
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].name, "p0");
    }
}
