//! # CORDOBA
//!
//! A from-scratch Rust implementation of **CORDOBA: Carbon-Efficient
//! Optimization Framework for Computing Systems** (Elgamal et al.,
//! HPCA 2025).
//!
//! CORDOBA optimizes *carbon efficiency*, quantified by the **total
//! Carbon Delay Product** — `tCDP = tC · D`, the product of a system's
//! lifetime carbon footprint (embodied + operational) and its task
//! execution time. Where EDP (J·s) balances energy against delay, tCDP
//! (gCO2e·s) additionally balances *embodied* carbon against energy
//! efficiency, which changes which designs win (§III).
//!
//! This crate is the framework layer; the substrates live in sibling
//! crates:
//!
//! | crate | role |
//! |-------|------|
//! | `cordoba_carbon` | units, ACT-style embodied carbon, yield/wafer models, CI sources |
//! | `cordoba_tech` | alpha-power MOSFET, DVFS, node scaling |
//! | `cordoba_workloads` | the 15 AI/XR kernels, 5 tasks, eq. IV.2/IV.4 |
//! | `cordoba_accel` | roofline accelerator simulator, 121-config space, 3D stacking |
//! | `cordoba_soc` | VR SoC cores, traces, scheduler, provisioning |
//!
//! Framework modules:
//!
//! * [`metrics`] — `DesignPoint`, `OperationalContext`, EDP/CCI/tCDP/...;
//! * [`case_ics`] — the §III six-IC worked example (Tables I & II);
//! * [`optimize`] — eq. IV.1 constrained minimization;
//! * [`pareto`] / [`lagrange`] — §IV-B elimination under unknown `CI_use(t)`;
//! * [`dse`] — operational-time sweeps and design-space elimination (Fig. 8);
//! * [`attrib`] — the carbon attribution ledger: embodied vs operational
//!   vs quarantined-loss decomposition of a sweep's tCDP, reconciled
//!   bit-for-bit against the sweep matrix;
//! * [`supervise`] — deadlines, cancellation, panic isolation, and
//!   checkpoint/resume for the long-running pipelines above;
//! * [`uncertainty`] — Fig. 6 domain studies, robustness and regret;
//! * [`stats`] / [`report`] — analysis and reporting helpers.
//!
//! # Quickstart
//!
//! ```
//! use cordoba::prelude::*;
//! use cordoba_accel::space::design_space;
//! use cordoba_carbon::embodied::EmbodiedModel;
//! use cordoba_carbon::intensity::grids;
//! use cordoba_workloads::task::Task;
//!
//! // Characterize the 121-accelerator design space for the XR task...
//! let points = evaluate_space(
//!     &design_space(),
//!     &Task::xr_5_kernels(),
//!     &EmbodiedModel::default(),
//! )?;
//! // ...and sweep operational time to find every possibly-optimal design.
//! let sweep = OpTimeSweep::new(points, log_sweep(4, 10, 2), grids::US_AVERAGE)?;
//! assert!(sweep.elimination_fraction() > 0.9);
//! # Ok::<(), cordoba::CoreError>(())
//! ```

pub mod attrib;
pub mod case_ics;
pub mod chart;
pub mod dse;
pub mod error;
pub mod lagrange;
pub mod metrics;
pub mod mix;
pub mod optimize;
pub mod pareto;
pub mod report;
pub mod stats;
pub mod store;
pub mod supervise;
pub mod uncertainty;

pub use error::CoreError;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::attrib::{
        AttributionReport, BetaAttribution, ConfigAttribution, QuarantinedLoss, TaskCountTotals,
    };
    pub use crate::case_ics::{candidates, design_points, table_one, table_two, Scenario};
    pub use crate::chart::AsciiChart;
    pub use crate::dse::{
        accel_design_point, evaluate_space, evaluate_space_multi, evaluate_space_resilient,
        evaluate_space_resilient_with_threads, evaluate_space_with_threads, log_sweep, EvalFailure,
        OpTimeSweep, ResilientEval,
    };
    pub use crate::error::CoreError;
    pub use crate::lagrange::{
        beta_for_context, BetaSolve, BetaSweep, BetaTransition, TwoFactorSweep,
    };
    pub use crate::metrics::{argmin, DesignPoint, MetricKind, OperationalContext};
    pub use crate::mix::LifetimeMix;
    pub use crate::optimize::{Constraints, OptimizationProblem, Solution};
    pub use crate::pareto::{
        elimination_fraction, lower_hull_indices, pareto_front, pareto_indices, pareto_indices_kd,
        pareto_indices_kd_naive, pareto_indices_naive, Point2, PointK,
    };
    pub use crate::report::{fmt_num, fmt_ratio, Table};
    pub use crate::store::{
        beta_sweep_stored, evaluate_space_multi_stored, evaluate_space_stored, op_time_sweep_stored,
    };
    pub use crate::supervise::{
        evaluate_space_supervised, evaluate_space_supervised_with_threads,
        op_time_sweep_supervised, op_time_sweep_supervised_with_threads, PartialSweep,
        SupervisedEval, SupervisedSweep, SweepCheckpoint,
    };
    pub use crate::uncertainty::{
        context_for_embodied_share, domain_analysis, monte_carlo_regret,
        monte_carlo_regret_supervised, monte_carlo_source_tcdp,
        monte_carlo_source_tcdp_sampled_with_threads, monte_carlo_source_tcdp_supervised,
        monte_carlo_source_tcdp_with_threads, monte_carlo_tcdp, monte_carlo_tcdp_supervised,
        scenario_regret, tcdp_under_source, tcdp_under_source_sampled, DomainAnalysis, DomainClass,
        MonteCarloSpec, MonteCarloSummary, SourceMonteCarloSpec, SupervisedMonteCarlo,
        SupervisedRegret,
    };
}
