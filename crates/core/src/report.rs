//! Plain-text table and CSV writers used by the bench harness to print the
//! paper's rows and series.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use cordoba::report::Table;
///
/// let mut t = Table::new(vec!["IC".into(), "EDP".into()]);
/// t.row(vec!["D".into(), "0.050".into()]);
/// let text = t.render();
/// assert!(text.contains("IC") && text.contains("0.050"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are kept as-is.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let _ = write!(out, "{cell:width$}  ");
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

/// Formats a float with engineering-friendly precision: scientific for
/// very large/small magnitudes, fixed otherwise.
#[must_use]
pub fn fmt_num(v: f64) -> String {
    let a = v.abs();
    // cordoba-lint: allow(float-eq) — exact zero formats as "0", not 0.000e0
    if v == 0.0 {
        "0".into()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a ratio as `N.NNx`.
#[must_use]
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()])
            .row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "1" and "2.5" start at the same offset.
        let off_a = lines[2].find('1').unwrap();
        let off_b = lines[3].find('2').unwrap();
        assert_eq!(off_a, off_b);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name".into(), "note".into()]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,note\n"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.05), "0.0500");
        assert_eq!(fmt_num(123.456), "123.5");
        assert!(fmt_num(1e9).contains('e'));
        assert!(fmt_num(1e-9).contains('e'));
        assert_eq!(fmt_ratio(6.9), "6.90x");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(vec!["only".into()]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.contains("only"));
    }
}
