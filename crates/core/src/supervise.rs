//! Supervised design-space evaluation and checkpointable sweeps.
//!
//! The framework-layer face of the execution-supervision substrate in
//! [`cordoba_par::supervise`]: every long-running pipeline here accepts a
//! [`Supervisor`] and, instead of running all-or-nothing, returns a
//! *partial result keyed by input index* when the supervisor stops it —
//! plus enough state to resume later and land on the exact bits an
//! uninterrupted run would have produced.
//!
//! * [`evaluate_space_supervised`] — design-space characterization with
//!   per-configuration outcomes (done / quarantined / pending) and
//!   in-place [`SupervisedEval::resume_with_threads`];
//! * [`op_time_sweep_supervised`] — the Fig. 8 tCDP grid with row-level
//!   checkpointing: an interrupted sweep yields a [`PartialSweep`] whose
//!   [`SweepCheckpoint`] serializes to a deterministic text format
//!   ([`SweepCheckpoint::to_text`]) the CLI writes to disk and resumes
//!   from (`dse --deadline … --checkpoint …` / `dse --resume …`).
//!
//! # Determinism argument
//!
//! Every work unit (one configuration, one sweep row) is a pure function
//! of its input index; supervision only decides *whether* a unit runs now,
//! later, or never — never *how*. Completed units are stored by index and
//! merged in index order, and `f64`s cross the checkpoint boundary as
//! exact bit patterns (`f64::to_bits` hex), so
//! `interrupt-at-any-point + resume == uninterrupted` bit-for-bit at any
//! thread count. The property suite in `crates/robust` pins this.

use crate::dse::{EvalBatch, EvalFailure, OpTimeSweep, ResilientEval};
use crate::error::CoreError;
use crate::metrics::{DesignPoint, OperationalContext};
use cordoba_accel::config::AcceleratorConfig;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use cordoba_carbon::CarbonError;
use cordoba_obs::Event;
use cordoba_par::supervise::{Outcome, StopReason, Supervisor};
use cordoba_workloads::task::Task;
use std::fmt::Write as _;

/// Per-configuration state of a supervised space evaluation.
#[derive(Debug, Clone, PartialEq)]
enum EvalSlot {
    /// Characterized successfully.
    Done(DesignPoint),
    /// Quarantined: evaluation returned an error or panicked.
    Failed(EvalFailure),
    /// Not attempted yet (the run stopped first).
    Pending,
}

/// Outcome of [`evaluate_space_supervised`]: one slot per configuration,
/// resumable in place until every slot is resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedEval {
    slots: Vec<EvalSlot>,
    stop: Option<StopReason>,
}

impl SupervisedEval {
    /// Why the last run/resume stopped early, or `None` when every
    /// configuration has been attempted.
    #[must_use]
    pub fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// `true` when every configuration was attempted (done or quarantined).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stop.is_none()
    }

    /// Indices of configurations not yet attempted, ascending.
    #[must_use]
    pub fn pending_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, EvalSlot::Pending).then_some(i))
            .collect()
    }

    /// Configurations attempted so far (done + quarantined).
    #[must_use]
    pub fn attempted(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, EvalSlot::Pending))
            .count()
    }

    /// Total configurations in the evaluation.
    #[must_use]
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Attempted fraction in `[0, 1]` (1.0 for an empty space).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.slots.is_empty() {
            return 1.0;
        }
        self.attempted() as f64 / self.slots.len() as f64
    }

    /// The completed evaluation as a [`ResilientEval`] (points and
    /// quarantined failures, both in input order), or `None` while
    /// configurations are still pending.
    #[must_use]
    pub fn to_resilient(&self) -> Option<ResilientEval> {
        if !self.is_complete() {
            return None;
        }
        let mut result = ResilientEval::default();
        for slot in &self.slots {
            match slot {
                EvalSlot::Done(point) => result.points.push(point.clone()),
                EvalSlot::Failed(failure) => result.failures.push(failure.clone()),
                EvalSlot::Pending => return None,
            }
        }
        Some(result)
    }

    /// Attempts the still-pending configurations under `sup`, merging by
    /// input index. A fresh unbounded supervisor completes the evaluation;
    /// the merged result is bit-identical to an uninterrupted run at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] when `configs` does not match the
    /// evaluation this state was created from (length mismatch).
    pub fn resume_with_threads(
        &mut self,
        configs: &[AcceleratorConfig],
        task: &Task,
        embodied: &EmbodiedModel,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CoreError> {
        if configs.len() != self.slots.len() {
            return Err(CoreError::Supervision(format!(
                "resume got {} configs but the evaluation has {} slots",
                configs.len(),
                self.slots.len()
            )));
        }
        self.advance(configs, task, embodied, sup, threads);
        Ok(())
    }

    /// Runs the supervised map over the pending indices and fills slots.
    fn advance(
        &mut self,
        configs: &[AcceleratorConfig],
        task: &Task,
        embodied: &EmbodiedModel,
        sup: &Supervisor,
        threads: usize,
    ) {
        let pending = self.pending_indices();
        if pending.is_empty() {
            self.stop = None;
            return;
        }
        // The batch state (SoA tuning arrays, task plan, embodied memo) is
        // built once per advance; the supervised map still isolates panics
        // and checks the stop flag per configuration, so interrupt/resume
        // semantics are unchanged from the scalar path.
        let batch = EvalBatch::new(configs, task, embodied);
        let run = cordoba_par::par_map_supervised_hinted(
            &pending,
            threads,
            cordoba_par::CostHint::per_item_ns(crate::dse::EVAL_NS_PER_CONFIG),
            sup,
            |_, &idx| batch.design_point(idx),
        );
        for (&idx, outcome) in pending.iter().zip(run.outcomes) {
            match outcome {
                Outcome::Done(Ok(point)) => self.slots[idx] = EvalSlot::Done(point),
                Outcome::Done(Err(error)) => {
                    cordoba_obs::record(&Event::Quarantine);
                    self.slots[idx] = EvalSlot::Failed(EvalFailure {
                        name: configs[idx].name().to_string(),
                        error,
                    });
                }
                Outcome::Panicked(message) => {
                    cordoba_obs::record(&Event::Quarantine);
                    self.slots[idx] = EvalSlot::Failed(EvalFailure {
                        name: configs[idx].name().to_string(),
                        error: CoreError::Panicked(message),
                    });
                }
                Outcome::Skipped => {}
            }
        }
        self.stop = run.stop;
    }
}

/// Characterizes a configuration list under supervision: cooperative
/// cancellation and deadline checks before every configuration, and panic
/// isolation — a panicking evaluation is quarantined as an
/// [`EvalFailure`] with [`CoreError::Panicked`] instead of aborting the
/// process. Uses [`cordoba_par::effective_threads`] workers.
#[must_use]
pub fn evaluate_space_supervised(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
    sup: &Supervisor,
) -> SupervisedEval {
    evaluate_space_supervised_with_threads(
        configs,
        task,
        embodied,
        sup,
        cordoba_par::effective_threads(),
    )
}

/// [`evaluate_space_supervised`] with an explicit worker-thread count
/// (1 = the exact sequential path). Completed slots are bit-identical at
/// every thread count.
#[must_use]
pub fn evaluate_space_supervised_with_threads(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
    sup: &Supervisor,
    threads: usize,
) -> SupervisedEval {
    let _span = cordoba_obs::span_with(
        "core/evaluate_space_supervised",
        "configs",
        u64::try_from(configs.len()).unwrap_or(u64::MAX),
    );
    let mut eval = SupervisedEval {
        slots: vec![EvalSlot::Pending; configs.len()],
        stop: None,
    };
    eval.advance(configs, task, embodied, sup, threads);
    eval
}

/// Outcome of a supervised operational-time sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisedSweep {
    /// Every row was computed; the sweep is bit-identical to
    /// [`OpTimeSweep::with_threads`] on the same inputs.
    Complete(OpTimeSweep),
    /// The supervisor stopped the sweep; the partial result can be
    /// serialized and resumed.
    Partial(PartialSweep),
}

impl SupervisedSweep {
    /// The completed sweep, if the run finished.
    #[must_use]
    pub fn complete(self) -> Option<OpTimeSweep> {
        match self {
            Self::Complete(sweep) => Some(sweep),
            Self::Partial(_) => None,
        }
    }

    /// The partial result, if the run was interrupted.
    #[must_use]
    pub fn partial(self) -> Option<PartialSweep> {
        match self {
            Self::Complete(_) => None,
            Self::Partial(partial) => Some(partial),
        }
    }
}

/// An interrupted sweep: the checkpoint holding every computed row plus
/// the reason the run stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSweep {
    /// Resumable sweep state (serialize with [`SweepCheckpoint::to_text`]).
    pub checkpoint: SweepCheckpoint,
    /// Why the sweep stopped.
    pub reason: StopReason,
}

impl PartialSweep {
    /// A one-paragraph human-readable coverage report for CLI output and
    /// logs.
    #[must_use]
    pub fn coverage_report(&self) -> String {
        self.checkpoint.coverage_report()
    }
}

/// Resumable state of an interrupted [`OpTimeSweep`]: the inputs plus
/// every tCDP row already computed, keyed by row index.
///
/// The serialized form ([`to_text`](Self::to_text) /
/// [`from_text`](Self::from_text)) is a line-oriented text format in which
/// every `f64` is stored as the 16-hex-digit big-endian rendering of its
/// IEEE-754 bit pattern, so a round-tripped checkpoint resumes to results
/// bit-identical to an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    points: Vec<DesignPoint>,
    task_counts: Vec<f64>,
    ci_use: CarbonIntensity,
    /// `rows[n]` is the tCDP row for `task_counts[n]`, `None` while
    /// pending.
    rows: Vec<Option<Vec<f64>>>,
    /// Why the originating run stopped.
    reason: StopReason,
}

/// Magic first line of the checkpoint format (versioned).
const CHECKPOINT_HEADER: &str = "cordoba-sweep-checkpoint v1";

/// Renders an `f64` as its exact bit pattern.
fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses [`hex_f64`] output back to the exact same `f64`.
fn parse_hex_f64(token: &str, what: &str) -> Result<f64, CoreError> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| CoreError::Supervision(format!("checkpoint: bad {what} value `{token}`")))
}

impl SweepCheckpoint {
    /// The candidate designs.
    #[must_use]
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// The operational-time axis.
    #[must_use]
    pub fn task_counts(&self) -> &[f64] {
        &self.task_counts
    }

    /// The use-phase carbon intensity.
    #[must_use]
    pub fn ci_use(&self) -> CarbonIntensity {
        self.ci_use
    }

    /// Why the originating run stopped.
    #[must_use]
    pub fn reason(&self) -> StopReason {
        self.reason
    }

    /// Rows already computed.
    #[must_use]
    pub fn completed_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Total rows in the sweep.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Completed fraction in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        self.completed_rows() as f64 / self.rows.len() as f64
    }

    /// Indices of rows still pending, ascending.
    #[must_use]
    pub fn pending_rows(&self) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect()
    }

    /// A one-paragraph human-readable coverage report.
    #[must_use]
    pub fn coverage_report(&self) -> String {
        format!(
            "sweep interrupted ({}): {}/{} rows complete ({:.1}%), {} designs",
            self.reason,
            self.completed_rows(),
            self.total_rows(),
            self.coverage() * 100.0,
            self.points.len(),
        )
    }

    /// Computes the still-pending rows under `sup` and merges by row
    /// index. With a fresh unbounded supervisor this always completes, and
    /// the resulting [`OpTimeSweep`] is bit-identical to an uninterrupted
    /// [`OpTimeSweep::with_threads`] at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Carbon`] when a pending row's task count is
    /// invalid and [`CoreError::Panicked`] when a row computation panics
    /// (first failing row in input order, either way).
    pub fn resume_with_threads(
        mut self,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<SupervisedSweep, CoreError> {
        let advance = advance_rows(
            &mut self.rows,
            &self.points,
            &self.task_counts,
            self.ci_use,
            sup,
            threads,
        )?;
        match advance {
            Advance::CompleteFlat(flat) => {
                // The streaming path fills exactly rows × points cells, so
                // the size check cannot fail; the error arm keeps this
                // total without a panic path.
                OpTimeSweep::from_flat(self.points, self.task_counts, self.ci_use, flat)
                    .map(SupervisedSweep::Complete)
                    .ok_or(CoreError::Carbon(CarbonError::Empty {
                        what: "tcdp matrix",
                    }))
            }
            Advance::Rows(None) => {
                let tcdp: Vec<Vec<f64>> = self.rows.into_iter().flatten().collect();
                Ok(SupervisedSweep::Complete(OpTimeSweep::from_rows(
                    self.points,
                    self.task_counts,
                    self.ci_use,
                    tcdp,
                )))
            }
            Advance::Rows(Some(reason)) => {
                self.reason = reason;
                Ok(SupervisedSweep::Partial(PartialSweep {
                    checkpoint: self,
                    reason,
                }))
            }
        }
    }

    /// [`resume_with_threads`](Self::resume_with_threads) with
    /// [`cordoba_par::effective_threads`] workers.
    ///
    /// # Errors
    ///
    /// See [`resume_with_threads`](Self::resume_with_threads).
    pub fn resume(self, sup: &Supervisor) -> Result<SupervisedSweep, CoreError> {
        let threads = cordoba_par::effective_threads();
        self.resume_with_threads(sup, threads)
    }

    /// Serializes the checkpoint to its deterministic text form and
    /// records a checkpoint-written supervision event.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        // Writing to a String cannot fail; the let-bindings keep clippy's
        // unused-result lint satisfied without unwraps.
        let _ = writeln!(out, "{CHECKPOINT_HEADER}");
        let _ = writeln!(out, "reason {}", self.reason.token());
        let _ = writeln!(out, "ci_use {}", hex_f64(self.ci_use.value()));
        let _ = writeln!(out, "task_counts {}", self.task_counts.len());
        for count in &self.task_counts {
            let _ = writeln!(out, "c {}", hex_f64(*count));
        }
        let _ = writeln!(out, "points {}", self.points.len());
        for p in &self.points {
            let _ = writeln!(
                out,
                "p {} {} {} {} {}",
                hex_f64(p.delay.value()),
                hex_f64(p.energy.value()),
                hex_f64(p.embodied.value()),
                hex_f64(p.area.value()),
                p.name,
            );
        }
        let _ = writeln!(out, "rows {}", self.completed_rows());
        for (idx, row) in self.rows.iter().enumerate() {
            if let Some(values) = row {
                let _ = write!(out, "r {idx}");
                for v in values {
                    let _ = write!(out, " {}", hex_f64(*v));
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out, "end");
        cordoba_obs::record(&Event::CheckpointWritten {
            completed: u64::try_from(self.completed_rows()).unwrap_or(u64::MAX),
        });
        out
    }

    /// Parses and validates a checkpoint written by
    /// [`to_text`](Self::to_text), recording a checkpoint-restored
    /// supervision event on success.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] for any structural problem —
    /// wrong header, truncated sections, malformed values, out-of-range or
    /// duplicate row indices, row width not matching the point count — and
    /// [`CoreError::Carbon`] when a restored design point fails
    /// [`DesignPoint::new`] validation.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let bad = |msg: String| CoreError::Supervision(format!("checkpoint: {msg}"));
        let mut lines = text.lines();
        let mut next = |what: &str| {
            lines
                .next()
                .ok_or_else(|| bad(format!("truncated before {what}")))
        };
        if next("header")? != CHECKPOINT_HEADER {
            return Err(bad("unrecognized header".to_string()));
        }
        let reason_line = next("reason")?;
        let reason = reason_line
            .strip_prefix("reason ")
            .and_then(StopReason::from_token)
            .ok_or_else(|| bad(format!("bad reason line `{reason_line}`")))?;
        let ci_line = next("ci_use")?;
        let ci_hex = ci_line
            .strip_prefix("ci_use ")
            .ok_or_else(|| bad(format!("bad ci_use line `{ci_line}`")))?;
        let ci_use = CarbonIntensity::new(parse_hex_f64(ci_hex, "ci_use")?);

        let counts_line = next("task_counts")?;
        let n: usize = counts_line
            .strip_prefix("task_counts ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad task_counts line `{counts_line}`")))?;
        if n == 0 {
            return Err(bad("empty task-count axis".to_string()));
        }
        let mut task_counts = Vec::with_capacity(n);
        for _ in 0..n {
            let line = next("task count")?;
            let hex = line
                .strip_prefix("c ")
                .ok_or_else(|| bad(format!("bad count line `{line}`")))?;
            task_counts.push(parse_hex_f64(hex, "task count")?);
        }

        let points_line = next("points")?;
        let m: usize = points_line
            .strip_prefix("points ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad points line `{points_line}`")))?;
        if m == 0 {
            return Err(bad("empty design-point list".to_string()));
        }
        let mut points = Vec::with_capacity(m);
        for _ in 0..m {
            let line = next("design point")?;
            // `p <delay> <energy> <embodied> <area> <name…>`; the name is
            // the verbatim rest of the line, so it may contain spaces.
            let mut tokens = line.splitn(6, ' ');
            let tag = tokens.next();
            let (Some("p"), Some(d), Some(e), Some(emb), Some(area), Some(name)) = (
                tag,
                tokens.next(),
                tokens.next(),
                tokens.next(),
                tokens.next(),
                tokens.next(),
            ) else {
                return Err(bad(format!("bad point line `{line}`")));
            };
            points.push(DesignPoint::new(
                name,
                Seconds::new(parse_hex_f64(d, "delay")?),
                cordoba_carbon::units::Joules::new(parse_hex_f64(e, "energy")?),
                cordoba_carbon::units::GramsCo2e::new(parse_hex_f64(emb, "embodied")?),
                cordoba_carbon::units::SquareCentimeters::new(parse_hex_f64(area, "area")?),
            )?);
        }

        let rows_line = next("rows")?;
        let done: usize = rows_line
            .strip_prefix("rows ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad rows line `{rows_line}`")))?;
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; n];
        for _ in 0..done {
            let line = next("row")?;
            let mut tokens = line.split_whitespace();
            if tokens.next() != Some("r") {
                return Err(bad(format!("bad row line `{line}`")));
            }
            let idx: usize = tokens
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad(format!("bad row index in `{line}`")))?;
            if idx >= n {
                return Err(bad(format!("row index {idx} out of range (rows: {n})")));
            }
            if rows[idx].is_some() {
                return Err(bad(format!("duplicate row index {idx}")));
            }
            let values = tokens
                .map(|tok| parse_hex_f64(tok, "row"))
                .collect::<Result<Vec<f64>, CoreError>>()?;
            if values.len() != m {
                return Err(bad(format!(
                    "row {idx} has {} values, expected {m}",
                    values.len()
                )));
            }
            rows[idx] = Some(values);
        }
        if next("end")? != "end" {
            return Err(bad("missing end marker".to_string()));
        }
        cordoba_obs::record(&Event::CheckpointRestored {
            completed: u64::try_from(done).unwrap_or(u64::MAX),
        });
        Ok(Self {
            points,
            task_counts,
            ci_use,
            rows,
            reason,
        })
    }
}

/// Computes the pending rows of a tCDP matrix under supervision, filling
/// `rows` by index. Returns the stop reason when interrupted, or the first
/// (in input order) row error.
/// How [`advance_rows`] finished.
enum Advance {
    /// Clean finish on the sequential streaming path: the complete
    /// row-major tCDP matrix, never split into per-row vectors.
    CompleteFlat(Vec<f64>),
    /// `rows` was updated in place (the chunked path, resumed subsets, or
    /// an interrupted streaming run); `Some` carries the stop reason.
    Rows(Option<StopReason>),
}

/// Sequential fast path for a fresh sweep: streams every row straight into
/// one flat row-major matrix — no per-row allocation and no completion
/// merge copy, matching the unsupervised [`OpTimeSweep::with_threads`]
/// sequential path. Supervision semantics are identical to the chunked
/// engine at one worker: a stop check before every row, per-row panic
/// isolation, per-attempt progress accounting, and work continuing past a
/// failed row so counters and events agree with the chunked path.
fn advance_rows_streaming(
    rows: &mut [Option<Vec<f64>>],
    points: &[DesignPoint],
    task_counts: &[f64],
    ci_use: CarbonIntensity,
    sup: &Supervisor,
) -> Result<Advance, CoreError> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let width = points.len();
    let mut flat: Vec<f64> = Vec::with_capacity(width.saturating_mul(task_counts.len()));
    let mut completed_rows = 0usize;
    let mut first_error: Option<CoreError> = None;
    let mut stopped = false;
    for &n in task_counts {
        if sup.should_stop().is_some() {
            stopped = true;
            break;
        }
        let base = flat.len();
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(), CarbonError> {
            let ctx = OperationalContext::new(n, ci_use)?;
            flat.extend(points.iter().map(|p| p.tcdp(&ctx).value()));
            Ok(())
        }));
        match attempt {
            Ok(Ok(())) => {
                sup.note_completed(1);
                completed_rows += 1;
            }
            Ok(Err(error)) => {
                // An input-validation error still counts as an attempted
                // unit, exactly like the chunked path.
                sup.note_completed(1);
                if first_error.is_none() {
                    first_error = Some(CoreError::Carbon(error));
                }
            }
            Err(payload) => {
                sup.note_panicked();
                cordoba_obs::record(&Event::ChunkPanic);
                flat.truncate(base);
                if first_error.is_none() {
                    first_error = Some(CoreError::Panicked(panic_message(payload.as_ref())));
                }
            }
        }
    }
    if let Some(error) = first_error {
        return Err(error);
    }
    if !stopped {
        return Ok(Advance::CompleteFlat(flat));
    }
    // Interrupted: split the streamed prefix into per-row checkpoint slots
    // (every attempted row succeeded, so the prefix is densely packed).
    let reason = sup.record_stop(sup.should_stop().unwrap_or(StopReason::Cancelled));
    for (k, slot) in rows.iter_mut().take(completed_rows).enumerate() {
        *slot = Some(flat[k * width..(k + 1) * width].to_vec());
    }
    Ok(Advance::Rows(Some(reason)))
}

/// Renders a panic payload into a stable message (mirrors the rendering
/// in `cordoba_par::supervise` so both paths store identical text).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

fn advance_rows(
    rows: &mut [Option<Vec<f64>>],
    points: &[DesignPoint],
    task_counts: &[f64],
    ci_use: CarbonIntensity,
    sup: &Supervisor,
    threads: usize,
) -> Result<Advance, CoreError> {
    let pending: Vec<usize> = rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    if pending.is_empty() {
        return Ok(Advance::Rows(None));
    }
    let hint = cordoba_par::CostHint::per_item_ns(
        crate::dse::TCDP_NS_PER_POINT.saturating_mul(points.len() as u64),
    );
    if hint.workers(pending.len(), threads) == 1 && pending.len() == rows.len() {
        return advance_rows_streaming(rows, points, task_counts, ci_use, sup);
    }
    let run = cordoba_par::par_map_supervised_hinted(&pending, threads, hint, sup, |_, &idx| {
        let ctx = OperationalContext::new(task_counts[idx], ci_use)?;
        Ok::<Vec<f64>, CarbonError>(points.iter().map(|p| p.tcdp(&ctx).value()).collect())
    });
    // `pending` ascends, so the first error seen here is the first in
    // input order — matching the unsupervised sweep's `try` contract.
    let mut first_error: Option<CoreError> = None;
    for (&idx, outcome) in pending.iter().zip(run.outcomes) {
        match outcome {
            Outcome::Done(Ok(row)) => rows[idx] = Some(row),
            Outcome::Done(Err(error)) => {
                if first_error.is_none() {
                    first_error = Some(CoreError::Carbon(error));
                }
            }
            Outcome::Panicked(message) => {
                if first_error.is_none() {
                    first_error = Some(CoreError::Panicked(message));
                }
            }
            Outcome::Skipped => {}
        }
    }
    if let Some(error) = first_error {
        return Err(error);
    }
    Ok(Advance::Rows(run.stop))
}

/// Evaluates the Fig. 8 tCDP grid under supervision. A completed run
/// returns [`SupervisedSweep::Complete`] with a sweep bit-identical to
/// [`OpTimeSweep::with_threads`]; an interrupted run returns a resumable
/// [`PartialSweep`]. Uses [`cordoba_par::effective_threads`] workers.
///
/// # Errors
///
/// Same input validation as [`OpTimeSweep::new`], plus
/// [`CoreError::Panicked`] when a row computation panics.
pub fn op_time_sweep_supervised(
    points: Vec<DesignPoint>,
    task_counts: Vec<f64>,
    ci_use: CarbonIntensity,
    sup: &Supervisor,
) -> Result<SupervisedSweep, CoreError> {
    op_time_sweep_supervised_with_threads(
        points,
        task_counts,
        ci_use,
        sup,
        cordoba_par::effective_threads(),
    )
}

/// [`op_time_sweep_supervised`] with an explicit worker-thread count (1 =
/// the exact sequential path). Completed rows are bit-identical at every
/// thread count.
///
/// # Errors
///
/// See [`op_time_sweep_supervised`].
pub fn op_time_sweep_supervised_with_threads(
    points: Vec<DesignPoint>,
    task_counts: Vec<f64>,
    ci_use: CarbonIntensity,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedSweep, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/op_time_sweep_supervised",
        "rows",
        u64::try_from(task_counts.len()).unwrap_or(u64::MAX),
    );
    if points.is_empty() {
        return Err(CoreError::Carbon(CarbonError::Empty {
            what: "design points",
        }));
    }
    if task_counts.is_empty() {
        return Err(CoreError::Carbon(CarbonError::Empty {
            what: "task counts",
        }));
    }
    let checkpoint = SweepCheckpoint {
        rows: vec![None; task_counts.len()],
        points,
        task_counts,
        ci_use,
        reason: StopReason::Cancelled,
    };
    checkpoint.resume_with_threads(sup, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{evaluate_space, log_sweep};
    use cordoba_accel::space::design_space;
    use cordoba_carbon::intensity::grids;

    fn points() -> Vec<DesignPoint> {
        let configs = design_space();
        evaluate_space(&configs, &Task::ai_5_kernels(), &EmbodiedModel::default()).unwrap()
    }

    #[test]
    fn supervised_eval_matches_resilient_when_unbounded() {
        let configs = design_space();
        let task = Task::xr_5_kernels();
        let embodied = EmbodiedModel::default();
        let strict = evaluate_space(&configs, &task, &embodied).unwrap();
        for threads in [1, 2] {
            let sup = Supervisor::unbounded();
            let eval =
                evaluate_space_supervised_with_threads(&configs, &task, &embodied, &sup, threads);
            assert!(eval.is_complete());
            assert!((eval.coverage() - 1.0).abs() < 1e-12);
            let resilient = eval.to_resilient().unwrap();
            assert!(resilient.failures.is_empty());
            assert_eq!(resilient.points, strict);
        }
    }

    #[test]
    fn interrupted_eval_resumes_to_identical_bits() {
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let embodied = EmbodiedModel::default();
        let full = evaluate_space(&configs, &task, &embodied).unwrap();
        for trip in [0u64, 1, 40, 120] {
            let sup = Supervisor::tripping_after(trip);
            let mut eval =
                evaluate_space_supervised_with_threads(&configs, &task, &embodied, &sup, 1);
            assert_eq!(eval.stop(), Some(StopReason::Cancelled), "trip {trip}");
            assert_eq!(eval.attempted(), trip as usize, "trip {trip}");
            let fresh = Supervisor::unbounded();
            eval.resume_with_threads(&configs, &task, &embodied, &fresh, 2)
                .unwrap();
            assert!(eval.is_complete());
            assert_eq!(eval.to_resilient().unwrap().points, full);
        }
    }

    #[test]
    fn resume_rejects_mismatched_configs() {
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let embodied = EmbodiedModel::default();
        let sup = Supervisor::tripping_after(3);
        let mut eval = evaluate_space_supervised_with_threads(&configs, &task, &embodied, &sup, 1);
        let err = eval
            .resume_with_threads(&configs[..5], &task, &embodied, &Supervisor::unbounded(), 1)
            .unwrap_err();
        assert!(err.to_string().contains("supervision"));
    }

    #[test]
    fn supervised_sweep_completes_identically() {
        let pts = points();
        let counts = log_sweep(4, 9, 2);
        let direct =
            OpTimeSweep::with_threads(pts.clone(), counts.clone(), grids::US_AVERAGE, 2).unwrap();
        let sup = Supervisor::unbounded();
        let run = op_time_sweep_supervised_with_threads(pts, counts, grids::US_AVERAGE, &sup, 2)
            .unwrap()
            .complete()
            .unwrap();
        assert_eq!(run, direct);
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly_and_resumes() {
        let pts = points();
        let counts = log_sweep(4, 9, 3);
        let direct =
            OpTimeSweep::with_threads(pts.clone(), counts.clone(), grids::US_AVERAGE, 1).unwrap();
        for trip in [0u64, 1, 5, 10] {
            let sup = Supervisor::tripping_after(trip);
            let partial = op_time_sweep_supervised_with_threads(
                pts.clone(),
                counts.clone(),
                grids::US_AVERAGE,
                &sup,
                1,
            )
            .unwrap()
            .partial()
            .unwrap();
            assert_eq!(partial.checkpoint.completed_rows(), trip as usize);
            assert!(partial.coverage_report().contains("rows complete"));
            let text = partial.checkpoint.to_text();
            let restored = SweepCheckpoint::from_text(&text).unwrap();
            assert_eq!(restored, partial.checkpoint);
            let resumed = restored
                .resume_with_threads(&Supervisor::unbounded(), 2)
                .unwrap()
                .complete()
                .unwrap();
            assert_eq!(resumed, direct, "trip {trip}");
            // The resumed sweep stores the flat row-major matrix; rows and
            // scalar lookups must agree with it bit-for-bit.
            let width = resumed.points.len();
            assert_eq!(
                resumed.tcdp_matrix().len(),
                width * resumed.task_counts.len()
            );
            for n in 0..resumed.task_counts.len() {
                assert_eq!(
                    resumed.row(n),
                    &resumed.tcdp_matrix()[n * width..(n + 1) * width]
                );
                for p in 0..width {
                    assert_eq!(
                        resumed.tcdp_at(n, p).to_bits(),
                        direct.tcdp_at(n, p).to_bits(),
                        "trip {trip} row {n} point {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let pts = points();
        let sup = Supervisor::tripping_after(2);
        let partial = op_time_sweep_supervised_with_threads(
            pts,
            log_sweep(4, 8, 2),
            grids::US_AVERAGE,
            &sup,
            1,
        )
        .unwrap()
        .partial()
        .unwrap();
        let text = partial.checkpoint.to_text();
        assert!(SweepCheckpoint::from_text("").is_err());
        assert!(SweepCheckpoint::from_text("garbage\n").is_err());
        // Truncation mid-file.
        let cut: String = text.lines().take(4).map(|l| format!("{l}\n")).collect();
        assert!(SweepCheckpoint::from_text(&cut).is_err());
        // A corrupted hex token.
        let broken = text.replacen("r 0 ", "r 999 ", 1);
        if broken != text {
            assert!(SweepCheckpoint::from_text(&broken).is_err());
        }
    }

    #[test]
    fn zero_trip_checkpoint_has_no_rows_but_full_inputs() {
        let pts = points();
        let counts = log_sweep(4, 8, 1);
        let sup = Supervisor::tripping_after(0);
        let partial = op_time_sweep_supervised_with_threads(
            pts.clone(),
            counts.clone(),
            grids::US_AVERAGE,
            &sup,
            1,
        )
        .unwrap()
        .partial()
        .unwrap();
        assert_eq!(partial.checkpoint.completed_rows(), 0);
        assert_eq!(partial.checkpoint.total_rows(), counts.len());
        assert_eq!(partial.checkpoint.points().len(), pts.len());
        assert_eq!(partial.checkpoint.pending_rows().len(), counts.len());
        assert!(partial.checkpoint.coverage() < 1e-12);
    }

    #[test]
    fn supervised_sweep_validates_inputs() {
        let sup = Supervisor::unbounded();
        assert!(op_time_sweep_supervised_with_threads(
            vec![],
            log_sweep(0, 1, 1),
            grids::US_AVERAGE,
            &sup,
            1
        )
        .is_err());
        assert!(op_time_sweep_supervised_with_threads(
            points(),
            vec![],
            grids::US_AVERAGE,
            &sup,
            1
        )
        .is_err());
        assert!(op_time_sweep_supervised_with_threads(
            points(),
            vec![-3.0],
            grids::US_AVERAGE,
            &sup,
            1
        )
        .is_err());
    }
}
