//! Uncertainty analyses: domain studies (Fig. 6) and robustness to
//! unknown usage and grid intensity (§VI-C).

use crate::error::CoreError;
use crate::metrics::{DesignPoint, OperationalContext};
use crate::stats::log_pearson;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::intensity::{grids, CiSource};
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use cordoba_carbon::CarbonError;
use cordoba_par::supervise::{Outcome, StopReason, Supervisor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The computing domains of Fig. 6, distinguished by how much of their
/// total carbon is embodied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainClass {
    /// Microcontrollers and wearables: ~95 % embodied \[3\].
    Wearable,
    /// Mobile/laptop: ~72 % embodied \[2\].
    Mobile,
    /// Datacenter servers: ~50 % embodied \[21\].
    Datacenter,
}

impl DomainClass {
    /// All domains, embodied-dominant first.
    pub const ALL: [DomainClass; 3] = [Self::Wearable, Self::Mobile, Self::Datacenter];

    /// The domain's typical embodied share of total carbon.
    #[must_use]
    pub fn embodied_share(self) -> f64 {
        match self {
            Self::Wearable => 0.95,
            Self::Mobile => 0.72,
            Self::Datacenter => 0.50,
        }
    }

    /// A representative use-phase carbon intensity.
    #[must_use]
    pub fn ci_use(self) -> CarbonIntensity {
        grids::US_AVERAGE
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Wearable => "wearable",
            Self::Mobile => "mobile",
            Self::Datacenter => "datacenter",
        }
    }
}

/// Finds the operational context (task count) at which the *average*
/// embodied share across `points` hits `target_share`, by bisection.
///
/// # Errors
///
/// Returns an error if `points` is empty or `target_share` is outside
/// `(0, 1)`.
pub fn context_for_embodied_share(
    points: &[DesignPoint],
    ci_use: CarbonIntensity,
    target_share: f64,
) -> Result<OperationalContext, CarbonError> {
    if points.is_empty() {
        return Err(CarbonError::Empty {
            what: "design points",
        });
    }
    CarbonError::require_in_range("target share", target_share, 1e-6, 1.0 - 1e-6)?;
    let mean_share = |tasks: f64| -> f64 {
        let ctx = OperationalContext { tasks, ci_use };
        points.iter().map(|p| p.embodied_share(&ctx)).sum::<f64>() / points.len() as f64
    };
    // Share decreases monotonically with task count; bisect on the
    // geometric midpoint.
    let (mut lo, mut hi): (f64, f64) = (1e-3, 1e18);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if mean_share(mid) > target_share {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    OperationalContext::new((lo * hi).sqrt(), ci_use)
}

/// The Fig. 6 per-domain analysis: EDP vs tCDP over a design space at the
/// domain's embodied:operational balance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainAnalysis {
    /// The domain.
    pub domain: DomainClass,
    /// The operational context realizing the domain's embodied share.
    pub context: OperationalContext,
    /// EDP of each design (J·s).
    pub edp: Vec<f64>,
    /// tCDP of each design (gCO2e·s).
    pub tcdp: Vec<f64>,
    /// Log-domain Pearson correlation between EDP and tCDP.
    pub correlation: f64,
    /// Largest tCDP ratio among near-EDP-equivalent design pairs (the
    /// paper's "100x difference at equal EDP" observation).
    pub iso_edp_tcdp_spread: f64,
    /// Name of the EDP-optimal design.
    pub edp_optimal: String,
    /// Name of the tCDP-optimal design.
    pub tcdp_optimal: String,
}

/// Runs the Fig. 6 analysis for one domain over a design space.
///
/// # Errors
///
/// Returns an error if `points` is empty.
pub fn domain_analysis(
    points: &[DesignPoint],
    domain: DomainClass,
) -> Result<DomainAnalysis, CarbonError> {
    let context = context_for_embodied_share(points, domain.ci_use(), domain.embodied_share())?;
    let edp: Vec<f64> = points.iter().map(|p| p.edp().value()).collect();
    let tcdp: Vec<f64> = points.iter().map(|p| p.tcdp(&context).value()).collect();
    let correlation = log_pearson(&edp, &tcdp).unwrap_or(0.0);

    // Iso-EDP spread: pairs within 25 % EDP of each other.
    let mut spread: f64 = 1.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let edp_ratio = (edp[i] / edp[j]).max(edp[j] / edp[i]);
            if edp_ratio < 1.25 {
                spread = spread.max((tcdp[i] / tcdp[j]).max(tcdp[j] / tcdp[i]));
            }
        }
    }

    let argmin = |vs: &[f64]| {
        vs.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("points non-empty") // cordoba-lint: allow(no-panic) — caller validates the point list above
            .0
    };
    Ok(DomainAnalysis {
        domain,
        context,
        edp_optimal: points[argmin(&edp)].name.clone(),
        tcdp_optimal: points[argmin(&tcdp)].name.clone(),
        edp,
        tcdp,
        correlation,
        iso_edp_tcdp_spread: spread,
    })
}

/// Evaluates a design's tCDP under a *time-varying* intensity source by
/// replacing `CI_use` with the source's exact lifetime mean (valid for
/// constant power, eq. IV.7).
///
/// The mean comes from the closed-form integration kernel
/// ([`CiIntegral::mean_exact`]), so this is O(1) for the analytic sources
/// and O(log n) for traces — [`tcdp_under_source_sampled`] is the sampled
/// executable spec it replaced.
#[must_use]
pub fn tcdp_under_source(
    point: &DesignPoint,
    source: &dyn CiIntegral,
    tasks: f64,
    lifetime: Seconds,
) -> f64 {
    let mean_ci = source.mean_exact(Seconds::ZERO, lifetime);
    let ctx = OperationalContext {
        tasks,
        ci_use: mean_ci,
    };
    point.tcdp(&ctx).value()
}

/// The sampled predecessor of [`tcdp_under_source`]: estimates the lifetime
/// mean intensity by midpoint sampling with `samples` lookups.
///
/// Kept as an executable specification — property tests assert it converges
/// to the exact kernel as `samples → ∞` and matches it exactly for constant
/// sources.
///
/// # Panics
///
/// Panics if `samples == 0` (see [`CiSource::mean_over`]).
#[must_use]
pub fn tcdp_under_source_sampled(
    point: &DesignPoint,
    source: &dyn CiSource,
    tasks: f64,
    lifetime: Seconds,
    samples: usize,
) -> f64 {
    let mean_ci = source.mean_over(lifetime, samples);
    let ctx = OperationalContext {
        tasks,
        ci_use: mean_ci,
    };
    point.tcdp(&ctx).value()
}

/// Worst-case regret of each design across a set of intensity scenarios:
/// `max_s tCDP(design, s) / tCDP(optimal(s), s)`.
///
/// The design minimizing this is the robust choice when the grid's future
/// is unknown (§IV-B / §VI-C).
///
/// # Errors
///
/// Returns an error if `points` or `scenarios` is empty.
pub fn scenario_regret(
    points: &[DesignPoint],
    scenarios: &[&dyn CiIntegral],
    tasks: f64,
    lifetime: Seconds,
) -> Result<Vec<f64>, CarbonError> {
    if points.is_empty() {
        return Err(CarbonError::Empty {
            what: "design points",
        });
    }
    if scenarios.is_empty() {
        return Err(CarbonError::Empty { what: "scenarios" });
    }
    let mut regret = vec![1.0f64; points.len()];
    for &s in scenarios {
        let tcdps: Vec<f64> = points
            .iter()
            .map(|p| tcdp_under_source(p, s, tasks, lifetime))
            .collect();
        let best = tcdps.iter().cloned().fold(f64::INFINITY, f64::min);
        for (r, t) in regret.iter_mut().zip(&tcdps) {
            *r = r.max(t / best);
        }
    }
    Ok(regret)
}

/// Samples per Monte Carlo RNG block: each block of this many scenarios
/// gets its own seeded generator, so block `b` draws the same scenarios no
/// matter which worker thread evaluates it.
const MC_BLOCK: usize = 64;

/// A reproducible Monte Carlo experiment over unknown `(N, CI_use)`
/// scenarios (§VI-C's uncertainty, sampled instead of enumerated).
///
/// Task counts are drawn log-uniformly from
/// `10^tasks_log10_lo ..= 10^tasks_log10_hi`; the use-phase carbon
/// intensity uniformly from `ci_lo ..= ci_hi`. The draw stream is fully
/// determined by `seed`: scenario `i` always comes from RNG block
/// `i / MC_BLOCK`, regardless of how many threads evaluate the blocks, so
/// results are bit-identical across thread counts and runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSpec {
    /// Number of sampled scenarios.
    pub samples: usize,
    /// RNG seed determining the whole scenario stream.
    pub seed: u64,
    /// Lower bound of the sampled use-phase intensity.
    pub ci_lo: CarbonIntensity,
    /// Upper bound of the sampled use-phase intensity.
    pub ci_hi: CarbonIntensity,
    /// `log10` of the smallest sampled task count.
    pub tasks_log10_lo: f64,
    /// `log10` of the largest sampled task count.
    pub tasks_log10_hi: f64,
}

impl MonteCarloSpec {
    /// A spec spanning the solar-to-coal intensity range and `1e3..=1e9`
    /// tasks — the paper's full uncertainty envelope.
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        Self {
            samples,
            seed,
            ci_lo: grids::SOLAR,
            ci_hi: grids::COAL,
            tasks_log10_lo: 3.0,
            tasks_log10_hi: 9.0,
        }
    }

    fn validate(&self) -> Result<(), CarbonError> {
        if self.samples == 0 {
            return Err(CarbonError::Empty {
                what: "monte carlo samples",
            });
        }
        CarbonError::require_in_range("ci_lo", self.ci_lo.value(), 0.0, f64::MAX)?;
        CarbonError::require_in_range("ci_hi", self.ci_hi.value(), self.ci_lo.value(), f64::MAX)?;
        CarbonError::require_finite("tasks_log10_lo", self.tasks_log10_lo)?;
        CarbonError::require_in_range(
            "tasks_log10_hi",
            self.tasks_log10_hi,
            self.tasks_log10_lo,
            308.0,
        )?;
        Ok(())
    }

    /// The generator for RNG block `block` — a pure function of
    /// `(seed, block)`, which is what makes the stream thread-agnostic.
    fn block_rng(&self, block: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                ^ block
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x2545_f491_4f6c_dd1d),
        )
    }

    /// The scenarios of block `block` (the last block may be short).
    fn block_scenarios(&self, block: u64) -> Vec<OperationalContext> {
        let start = block as usize * MC_BLOCK;
        let len = MC_BLOCK.min(self.samples - start);
        let mut rng = self.block_rng(block);
        (0..len)
            .map(|_| {
                let u: f64 = rng.gen();
                let v: f64 = rng.gen();
                let ci = self.ci_lo.value() + (self.ci_hi.value() - self.ci_lo.value()) * u;
                let log10_tasks =
                    self.tasks_log10_lo + (self.tasks_log10_hi - self.tasks_log10_lo) * v;
                OperationalContext {
                    tasks: 10f64.powf(log10_tasks),
                    ci_use: CarbonIntensity::new(ci),
                }
            })
            .collect()
    }

    fn blocks(&self) -> Vec<u64> {
        (0..self.samples.div_ceil(MC_BLOCK) as u64).collect()
    }
}

/// Summary statistics of a sampled tCDP distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// Number of scenarios sampled.
    pub samples: usize,
    /// Mean tCDP across scenarios (gCO2e·s).
    pub mean: f64,
    /// Population standard deviation of the sampled tCDPs.
    pub std_dev: f64,
    /// Smallest sampled tCDP.
    pub min: f64,
    /// Largest sampled tCDP.
    pub max: f64,
}

/// Per-block partial moments, combined sequentially in block order so the
/// final statistics are bit-identical at every thread count.
#[derive(Debug, Clone, PartialEq)]
struct McPartial {
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl McPartial {
    fn empty() -> Self {
        Self {
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn push(&mut self, value: f64) {
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Folds per-block partials (in block order) into summary statistics.
fn summarize(partials: Vec<McPartial>, samples: usize) -> MonteCarloSummary {
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for p in partials {
        sum += p.sum;
        sum_sq += p.sum_sq;
        min = min.min(p.min);
        max = max.max(p.max);
    }
    let n = samples as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    MonteCarloSummary {
        samples,
        mean,
        std_dev: variance.sqrt(),
        min,
        max,
    }
}

/// Samples the tCDP distribution of one design across the spec's scenario
/// envelope.
///
/// # Errors
///
/// Returns an error for a zero-sample spec or invalid scenario bounds.
pub fn monte_carlo_tcdp(
    point: &DesignPoint,
    spec: &MonteCarloSpec,
) -> Result<MonteCarloSummary, CarbonError> {
    monte_carlo_tcdp_with_threads(point, spec, cordoba_par::effective_threads())
}

/// [`monte_carlo_tcdp`] with an explicit worker-thread count (1 = fully
/// sequential). Results are bit-identical at every thread count.
///
/// # Errors
///
/// Returns an error for a zero-sample spec or invalid scenario bounds.
pub fn monte_carlo_tcdp_with_threads(
    point: &DesignPoint,
    spec: &MonteCarloSpec,
    threads: usize,
) -> Result<MonteCarloSummary, CarbonError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_tcdp",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate()?;
    let partials = cordoba_par::par_map_with(&spec.blocks(), threads, |&block| {
        let mut partial = McPartial::empty();
        for ctx in spec.block_scenarios(block) {
            partial.push(point.tcdp(&ctx).value());
        }
        partial
    });
    Ok(summarize(partials, spec.samples))
}

/// A reproducible Monte Carlo experiment over *time-varying* intensity
/// sources and unknown `(N, lifetime)` — the source-level analogue of
/// [`MonteCarloSpec`], which samples a constant `CI_use` instead.
///
/// Each scenario draws a source uniformly from the provided set, a task
/// count log-uniformly from `10^tasks_log10_lo ..= 10^tasks_log10_hi`, and
/// a lifetime uniformly from `lifetime_lo ..= lifetime_hi`; the design's
/// tCDP is then evaluated under that source's lifetime-mean intensity via
/// the exact integration kernel. The draw stream is fully determined by
/// `seed` and blocked like [`MonteCarloSpec`], so results are bit-identical
/// across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceMonteCarloSpec {
    /// Number of sampled scenarios.
    pub samples: usize,
    /// RNG seed determining the whole scenario stream.
    pub seed: u64,
    /// `log10` of the smallest sampled task count.
    pub tasks_log10_lo: f64,
    /// `log10` of the largest sampled task count.
    pub tasks_log10_hi: f64,
    /// Shortest sampled deployment lifetime.
    pub lifetime_lo: Seconds,
    /// Longest sampled deployment lifetime.
    pub lifetime_hi: Seconds,
}

impl SourceMonteCarloSpec {
    /// A spec spanning `1e3..=1e9` tasks and 1-to-8-year deployments.
    #[must_use]
    pub fn new(samples: usize, seed: u64) -> Self {
        Self {
            samples,
            seed,
            tasks_log10_lo: 3.0,
            tasks_log10_hi: 9.0,
            lifetime_lo: Seconds::from_years(1.0),
            lifetime_hi: Seconds::from_years(8.0),
        }
    }

    fn validate(&self, n_sources: usize) -> Result<(), CarbonError> {
        if self.samples == 0 {
            return Err(CarbonError::Empty {
                what: "monte carlo samples",
            });
        }
        if n_sources == 0 {
            return Err(CarbonError::Empty {
                what: "intensity sources",
            });
        }
        CarbonError::require_finite("tasks_log10_lo", self.tasks_log10_lo)?;
        CarbonError::require_in_range(
            "tasks_log10_hi",
            self.tasks_log10_hi,
            self.tasks_log10_lo,
            308.0,
        )?;
        CarbonError::require_positive("lifetime_lo", self.lifetime_lo.value())?;
        CarbonError::require_in_range(
            "lifetime_hi",
            self.lifetime_hi.value(),
            self.lifetime_lo.value(),
            f64::MAX,
        )?;
        Ok(())
    }

    /// Same `(seed, block)` hashing as [`MonteCarloSpec::block_rng`].
    fn block_rng(&self, block: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                ^ block
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x2545_f491_4f6c_dd1d),
        )
    }

    /// The `(source index, tasks, lifetime)` draws of block `block`.
    fn block_draws(&self, block: u64, n_sources: usize) -> Vec<(usize, f64, Seconds)> {
        let start = block as usize * MC_BLOCK;
        let len = MC_BLOCK.min(self.samples - start);
        let mut rng = self.block_rng(block);
        (0..len)
            .map(|_| {
                let u: f64 = rng.gen();
                let v: f64 = rng.gen();
                let w: f64 = rng.gen();
                let idx = ((u * n_sources as f64) as usize).min(n_sources - 1);
                let log10_tasks =
                    self.tasks_log10_lo + (self.tasks_log10_hi - self.tasks_log10_lo) * v;
                let life = self.lifetime_lo.value()
                    + (self.lifetime_hi.value() - self.lifetime_lo.value()) * w;
                (idx, 10f64.powf(log10_tasks), Seconds::new(life))
            })
            .collect()
    }

    fn blocks(&self) -> Vec<u64> {
        (0..self.samples.div_ceil(MC_BLOCK) as u64).collect()
    }
}

/// Samples the tCDP distribution of one design across time-varying
/// intensity sources, using the exact integration kernel for every draw's
/// lifetime mean.
///
/// # Errors
///
/// Returns an error for a zero-sample spec, an empty source set, or
/// invalid scenario bounds.
pub fn monte_carlo_source_tcdp(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
) -> Result<MonteCarloSummary, CarbonError> {
    monte_carlo_source_tcdp_with_threads(point, sources, spec, cordoba_par::effective_threads())
}

/// [`monte_carlo_source_tcdp`] with an explicit worker-thread count (1 =
/// fully sequential). Results are bit-identical at every thread count.
///
/// # Errors
///
/// Returns an error for a zero-sample spec, an empty source set, or
/// invalid scenario bounds.
pub fn monte_carlo_source_tcdp_with_threads(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
    threads: usize,
) -> Result<MonteCarloSummary, CarbonError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_source_tcdp",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate(sources.len())?;
    let partials = cordoba_par::par_map_with(&spec.blocks(), threads, |&block| {
        let mut partial = McPartial::empty();
        for (idx, tasks, lifetime) in spec.block_draws(block, sources.len()) {
            partial.push(tcdp_under_source(point, sources[idx], tasks, lifetime));
        }
        partial
    });
    Ok(summarize(partials, spec.samples))
}

/// The sampled executable spec of [`monte_carlo_source_tcdp_with_threads`]:
/// identical draw stream, but each draw's lifetime mean is estimated with
/// `samples_per_draw` midpoint lookups instead of the exact kernel.
///
/// Exists for convergence property tests and as the benchmark baseline; new
/// code should use the exact variant.
///
/// # Errors
///
/// Returns an error for a zero-sample spec, an empty source set, invalid
/// scenario bounds, or `samples_per_draw == 0`.
pub fn monte_carlo_source_tcdp_sampled_with_threads(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
    samples_per_draw: usize,
    threads: usize,
) -> Result<MonteCarloSummary, CarbonError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_source_tcdp_sampled",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate(sources.len())?;
    if samples_per_draw == 0 {
        return Err(CarbonError::Empty {
            what: "integration samples per draw",
        });
    }
    let partials = cordoba_par::par_map_with(&spec.blocks(), threads, |&block| {
        let mut partial = McPartial::empty();
        for (idx, tasks, lifetime) in spec.block_draws(block, sources.len()) {
            partial.push(tcdp_under_source_sampled(
                point,
                sources[idx],
                tasks,
                lifetime,
                samples_per_draw,
            ));
        }
        partial
    });
    Ok(summarize(partials, spec.samples))
}

/// Mean tCDP regret of each design across sampled scenarios:
/// `E_s[tCDP(design, s) / min_d tCDP(d, s)]`.
///
/// The sampled analogue of [`scenario_regret`]: instead of a handful of
/// hand-picked intensity trajectories, the whole `(N, CI_use)` envelope is
/// sampled. A mean regret of 1.0 means the design is optimal in every
/// sampled scenario.
///
/// # Errors
///
/// Returns an error for an empty point list, a zero-sample spec, or
/// invalid scenario bounds.
pub fn monte_carlo_regret(
    points: &[DesignPoint],
    spec: &MonteCarloSpec,
) -> Result<Vec<f64>, CarbonError> {
    monte_carlo_regret_with_threads(points, spec, cordoba_par::effective_threads())
}

/// [`monte_carlo_regret`] with an explicit worker-thread count (1 = fully
/// sequential). Results are bit-identical at every thread count.
///
/// # Errors
///
/// Returns an error for an empty point list, a zero-sample spec, or
/// invalid scenario bounds.
pub fn monte_carlo_regret_with_threads(
    points: &[DesignPoint],
    spec: &MonteCarloSpec,
    threads: usize,
) -> Result<Vec<f64>, CarbonError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_regret",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    if points.is_empty() {
        return Err(CarbonError::Empty {
            what: "design points",
        });
    }
    spec.validate()?;
    let partials = cordoba_par::par_map_with(&spec.blocks(), threads, |&block| {
        let mut regret_sums = vec![0.0f64; points.len()];
        for ctx in spec.block_scenarios(block) {
            let tcdps: Vec<f64> = points.iter().map(|p| p.tcdp(&ctx).value()).collect();
            let best = tcdps.iter().copied().fold(f64::INFINITY, f64::min);
            for (sum, tcdp) in regret_sums.iter_mut().zip(&tcdps) {
                *sum += tcdp / best;
            }
        }
        regret_sums
    });
    let mut totals = vec![0.0f64; points.len()];
    for partial in partials {
        for (total, sum) in totals.iter_mut().zip(partial) {
            *total += sum;
        }
    }
    let n = spec.samples as f64;
    totals.iter_mut().for_each(|t| *t /= n);
    Ok(totals)
}

/// Computes the still-pending RNG blocks of a supervised Monte Carlo run
/// under `sup`, filling `slots` by block index. Returns the stop reason
/// when interrupted; a panicking block becomes [`CoreError::Panicked`]
/// (first panicking block in block order).
fn advance_blocks<P, F>(
    slots: &mut [Option<P>],
    sup: &Supervisor,
    threads: usize,
    eval: F,
) -> Result<Option<StopReason>, CoreError>
where
    P: Send,
    F: Fn(u64) -> P + Sync,
{
    let pending: Vec<u64> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i as u64))
        .collect();
    if pending.is_empty() {
        return Ok(None);
    }
    let run = cordoba_par::par_map_supervised_with(&pending, threads, sup, |_, &block| eval(block));
    let mut first_panic: Option<String> = None;
    for (&block, outcome) in pending.iter().zip(run.outcomes) {
        match outcome {
            Outcome::Done(partial) => slots[block as usize] = Some(partial),
            Outcome::Panicked(message) => {
                if first_panic.is_none() {
                    first_panic = Some(message);
                }
            }
            Outcome::Skipped => {}
        }
    }
    if let Some(message) = first_panic {
        return Err(CoreError::Panicked(message));
    }
    Ok(run.stop)
}

/// A supervised Monte Carlo experiment in flight: per-RNG-block partial
/// moments keyed by block index, resumable until every block is computed.
///
/// Blocks are the experiment's unit of supervision *and* of determinism
/// (each block's scenarios are a pure function of `(seed, block)`), so a
/// run interrupted at any block boundary and resumed — even at a different
/// thread count — folds to the same [`MonteCarloSummary`] bits as an
/// uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedMonteCarlo {
    samples: usize,
    partials: Vec<Option<McPartial>>,
    stop: Option<StopReason>,
}

impl SupervisedMonteCarlo {
    fn fresh(samples: usize, blocks: usize) -> Self {
        Self {
            samples,
            partials: vec![None; blocks],
            stop: None,
        }
    }

    fn check_spec(&self, samples: usize, blocks: usize) -> Result<(), CoreError> {
        if samples != self.samples || blocks != self.partials.len() {
            return Err(CoreError::Supervision(format!(
                "resume spec has {samples} samples / {blocks} blocks but the run was started \
                 with {} samples / {} blocks",
                self.samples,
                self.partials.len()
            )));
        }
        Ok(())
    }

    /// Why the last run/resume stopped early, or `None` when complete.
    #[must_use]
    pub fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// `true` when every RNG block has been computed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stop.is_none()
    }

    /// RNG blocks computed so far.
    #[must_use]
    pub fn completed_blocks(&self) -> usize {
        self.partials.iter().filter(|p| p.is_some()).count()
    }

    /// Total RNG blocks in the experiment.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.partials.len()
    }

    /// Completed fraction in `[0, 1]`.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.partials.is_empty() {
            return 1.0;
        }
        self.completed_blocks() as f64 / self.partials.len() as f64
    }

    /// The folded summary statistics, or `None` while blocks are pending.
    #[must_use]
    pub fn summary(&self) -> Option<MonteCarloSummary> {
        if !self.is_complete() {
            return None;
        }
        let partials: Option<Vec<McPartial>> = self.partials.iter().cloned().collect();
        Some(summarize(partials?, self.samples))
    }

    /// Computes the still-pending blocks of a constant-CI experiment
    /// ([`monte_carlo_tcdp_supervised`]) under `sup`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] when `spec` does not match the
    /// run this state came from, and [`CoreError::Panicked`] when a block
    /// evaluation panics.
    pub fn resume_tcdp_with_threads(
        &mut self,
        point: &DesignPoint,
        spec: &MonteCarloSpec,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CoreError> {
        self.check_spec(spec.samples, spec.blocks().len())?;
        self.stop = advance_blocks(&mut self.partials, sup, threads, |block| {
            let mut partial = McPartial::empty();
            for ctx in spec.block_scenarios(block) {
                partial.push(point.tcdp(&ctx).value());
            }
            partial
        })?;
        Ok(())
    }

    /// Computes the still-pending blocks of a time-varying-source
    /// experiment ([`monte_carlo_source_tcdp_supervised`]) under `sup`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] when `spec` does not match the
    /// run this state came from, and [`CoreError::Panicked`] when a block
    /// evaluation panics.
    pub fn resume_source_with_threads(
        &mut self,
        point: &DesignPoint,
        sources: &[&dyn CiIntegral],
        spec: &SourceMonteCarloSpec,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CoreError> {
        self.check_spec(spec.samples, spec.blocks().len())?;
        self.stop = advance_blocks(&mut self.partials, sup, threads, |block| {
            let mut partial = McPartial::empty();
            for (idx, tasks, lifetime) in spec.block_draws(block, sources.len()) {
                partial.push(tcdp_under_source(point, sources[idx], tasks, lifetime));
            }
            partial
        })?;
        Ok(())
    }

    /// Computes the still-pending blocks of a sampled-integration
    /// experiment ([`monte_carlo_source_tcdp_sampled_supervised_with_threads`])
    /// under `sup`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] when `spec` does not match the
    /// run this state came from, and [`CoreError::Panicked`] when a block
    /// evaluation panics.
    pub fn resume_source_sampled_with_threads(
        &mut self,
        point: &DesignPoint,
        sources: &[&dyn CiIntegral],
        spec: &SourceMonteCarloSpec,
        samples_per_draw: usize,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CoreError> {
        self.check_spec(spec.samples, spec.blocks().len())?;
        self.stop = advance_blocks(&mut self.partials, sup, threads, |block| {
            let mut partial = McPartial::empty();
            for (idx, tasks, lifetime) in spec.block_draws(block, sources.len()) {
                partial.push(tcdp_under_source_sampled(
                    point,
                    sources[idx],
                    tasks,
                    lifetime,
                    samples_per_draw,
                ));
            }
            partial
        })?;
        Ok(())
    }
}

/// [`monte_carlo_tcdp`] under a [`Supervisor`]: evaluation stops on
/// cancellation or deadline exhaustion at an RNG-block boundary and the
/// returned state resumes via
/// [`SupervisedMonteCarlo::resume_tcdp_with_threads`]. A worker panic is
/// isolated per block and surfaced as [`CoreError::Panicked`].
///
/// # Errors
///
/// Returns an error for a zero-sample spec, invalid scenario bounds, or a
/// panicking block evaluation.
pub fn monte_carlo_tcdp_supervised(
    point: &DesignPoint,
    spec: &MonteCarloSpec,
    sup: &Supervisor,
) -> Result<SupervisedMonteCarlo, CoreError> {
    monte_carlo_tcdp_supervised_with_threads(point, spec, sup, cordoba_par::effective_threads())
}

/// [`monte_carlo_tcdp_supervised`] with an explicit worker-thread count
/// (1 = fully sequential). Completed blocks are bit-identical at every
/// thread count.
///
/// # Errors
///
/// See [`monte_carlo_tcdp_supervised`].
pub fn monte_carlo_tcdp_supervised_with_threads(
    point: &DesignPoint,
    spec: &MonteCarloSpec,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedMonteCarlo, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_tcdp_supervised",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate()?;
    let mut mc = SupervisedMonteCarlo::fresh(spec.samples, spec.blocks().len());
    mc.resume_tcdp_with_threads(point, spec, sup, threads)?;
    Ok(mc)
}

/// [`monte_carlo_source_tcdp`] under a [`Supervisor`]; resumes via
/// [`SupervisedMonteCarlo::resume_source_with_threads`].
///
/// # Errors
///
/// Returns an error for a zero-sample spec, an empty source set, invalid
/// scenario bounds, or a panicking block evaluation.
pub fn monte_carlo_source_tcdp_supervised(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
    sup: &Supervisor,
) -> Result<SupervisedMonteCarlo, CoreError> {
    monte_carlo_source_tcdp_supervised_with_threads(
        point,
        sources,
        spec,
        sup,
        cordoba_par::effective_threads(),
    )
}

/// [`monte_carlo_source_tcdp_supervised`] with an explicit worker-thread
/// count (1 = fully sequential). Completed blocks are bit-identical at
/// every thread count.
///
/// # Errors
///
/// See [`monte_carlo_source_tcdp_supervised`].
pub fn monte_carlo_source_tcdp_supervised_with_threads(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedMonteCarlo, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_source_tcdp_supervised",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate(sources.len())?;
    let mut mc = SupervisedMonteCarlo::fresh(spec.samples, spec.blocks().len());
    mc.resume_source_with_threads(point, sources, spec, sup, threads)?;
    Ok(mc)
}

/// [`monte_carlo_source_tcdp_sampled_with_threads`] under a [`Supervisor`];
/// resumes via
/// [`SupervisedMonteCarlo::resume_source_sampled_with_threads`].
///
/// # Errors
///
/// Returns an error for a zero-sample spec, an empty source set, invalid
/// scenario bounds, `samples_per_draw == 0`, or a panicking block
/// evaluation.
pub fn monte_carlo_source_tcdp_sampled_supervised_with_threads(
    point: &DesignPoint,
    sources: &[&dyn CiIntegral],
    spec: &SourceMonteCarloSpec,
    samples_per_draw: usize,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedMonteCarlo, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_source_tcdp_sampled_supervised",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    spec.validate(sources.len())?;
    if samples_per_draw == 0 {
        return Err(CoreError::Carbon(CarbonError::Empty {
            what: "integration samples per draw",
        }));
    }
    let mut mc = SupervisedMonteCarlo::fresh(spec.samples, spec.blocks().len());
    mc.resume_source_sampled_with_threads(point, sources, spec, samples_per_draw, sup, threads)?;
    Ok(mc)
}

/// A supervised regret experiment in flight: per-RNG-block regret sums
/// keyed by block index, resumable until every block is computed. Folds to
/// bits identical to [`monte_carlo_regret_with_threads`] once complete.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedRegret {
    n_points: usize,
    samples: usize,
    partials: Vec<Option<Vec<f64>>>,
    stop: Option<StopReason>,
}

impl SupervisedRegret {
    /// Why the last run/resume stopped early, or `None` when complete.
    #[must_use]
    pub fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// `true` when every RNG block has been computed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stop.is_none()
    }

    /// RNG blocks computed so far.
    #[must_use]
    pub fn completed_blocks(&self) -> usize {
        self.partials.iter().filter(|p| p.is_some()).count()
    }

    /// Total RNG blocks in the experiment.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.partials.len()
    }

    /// The per-design mean regrets, or `None` while blocks are pending.
    #[must_use]
    pub fn regrets(&self) -> Option<Vec<f64>> {
        if !self.is_complete() {
            return None;
        }
        let mut totals = vec![0.0f64; self.n_points];
        for partial in &self.partials {
            let sums = partial.as_ref()?;
            for (total, sum) in totals.iter_mut().zip(sums) {
                *total += sum;
            }
        }
        let n = self.samples as f64;
        totals.iter_mut().for_each(|t| *t /= n);
        Some(totals)
    }

    /// Computes the still-pending blocks under `sup`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Supervision`] when `points`/`spec` do not match
    /// the run this state came from, and [`CoreError::Panicked`] when a
    /// block evaluation panics.
    pub fn resume_with_threads(
        &mut self,
        points: &[DesignPoint],
        spec: &MonteCarloSpec,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<(), CoreError> {
        if points.len() != self.n_points
            || spec.samples != self.samples
            || spec.blocks().len() != self.partials.len()
        {
            return Err(CoreError::Supervision(format!(
                "resume got {} points / {} samples but the run was started with {} points / {} \
                 samples",
                points.len(),
                spec.samples,
                self.n_points,
                self.samples
            )));
        }
        self.stop = advance_blocks(&mut self.partials, sup, threads, |block| {
            let mut regret_sums = vec![0.0f64; points.len()];
            for ctx in spec.block_scenarios(block) {
                let tcdps: Vec<f64> = points.iter().map(|p| p.tcdp(&ctx).value()).collect();
                let best = tcdps.iter().copied().fold(f64::INFINITY, f64::min);
                for (sum, tcdp) in regret_sums.iter_mut().zip(&tcdps) {
                    *sum += tcdp / best;
                }
            }
            regret_sums
        })?;
        Ok(())
    }
}

/// [`monte_carlo_regret`] under a [`Supervisor`]; resumes via
/// [`SupervisedRegret::resume_with_threads`].
///
/// # Errors
///
/// Returns an error for an empty point list, a zero-sample spec, invalid
/// scenario bounds, or a panicking block evaluation.
pub fn monte_carlo_regret_supervised(
    points: &[DesignPoint],
    spec: &MonteCarloSpec,
    sup: &Supervisor,
) -> Result<SupervisedRegret, CoreError> {
    monte_carlo_regret_supervised_with_threads(points, spec, sup, cordoba_par::effective_threads())
}

/// [`monte_carlo_regret_supervised`] with an explicit worker-thread count
/// (1 = fully sequential). Completed blocks are bit-identical at every
/// thread count.
///
/// # Errors
///
/// See [`monte_carlo_regret_supervised`].
pub fn monte_carlo_regret_supervised_with_threads(
    points: &[DesignPoint],
    spec: &MonteCarloSpec,
    sup: &Supervisor,
    threads: usize,
) -> Result<SupervisedRegret, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/monte_carlo_regret_supervised",
        "samples",
        u64::try_from(spec.samples).unwrap_or(u64::MAX),
    );
    if points.is_empty() {
        return Err(CoreError::Carbon(CarbonError::Empty {
            what: "design points",
        }));
    }
    spec.validate()?;
    let mut regret = SupervisedRegret {
        n_points: points.len(),
        samples: spec.samples,
        partials: vec![None; spec.blocks().len()],
        stop: None,
    };
    regret.resume_with_threads(points, spec, sup, threads)?;
    Ok(regret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_carbon::intensity::{ConstantCi, TrendCi};
    use cordoba_carbon::units::{GramsCo2e, Joules, SquareCentimeters, JOULES_PER_KILOWATT_HOUR};

    fn point(name: &str, d: f64, e: f64, emb: f64) -> DesignPoint {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        )
        .unwrap()
    }

    fn space() -> Vec<DesignPoint> {
        vec![
            point("tiny", 4.0, 0.5, 20.0),
            point("small", 2.0, 1.0, 60.0),
            point("mid", 1.0, 2.5, 200.0),
            point("big", 0.5, 3.0, 800.0),
            point("huge", 0.4, 20.0, 4000.0),
        ]
    }

    #[test]
    fn bisection_hits_target_share() {
        let pts = space();
        for share in [0.95, 0.72, 0.50, 0.10] {
            let ctx = context_for_embodied_share(&pts, grids::US_AVERAGE, share).unwrap();
            let mean: f64 =
                pts.iter().map(|p| p.embodied_share(&ctx)).sum::<f64>() / pts.len() as f64;
            assert!((mean - share).abs() < 0.01, "share {share} got {mean}");
        }
    }

    #[test]
    fn bisection_validation() {
        assert!(context_for_embodied_share(&[], grids::US_AVERAGE, 0.5).is_err());
        assert!(context_for_embodied_share(&space(), grids::US_AVERAGE, 0.0).is_err());
        assert!(context_for_embodied_share(&space(), grids::US_AVERAGE, 1.0).is_err());
    }

    #[test]
    fn correlation_strengthens_toward_operational_dominance() {
        // Fig. 6: wearables show the weakest EDP-tCDP correlation,
        // datacenters the strongest.
        let pts = space();
        let wearable = domain_analysis(&pts, DomainClass::Wearable).unwrap();
        let datacenter = domain_analysis(&pts, DomainClass::Datacenter).unwrap();
        assert!(
            datacenter.correlation > wearable.correlation,
            "dc {} vs wearable {}",
            datacenter.correlation,
            wearable.correlation
        );
    }

    #[test]
    fn edp_and_tcdp_optima_diverge_when_embodied_dominates() {
        let pts = space();
        let wearable = domain_analysis(&pts, DomainClass::Wearable).unwrap();
        assert_ne!(wearable.edp_optimal, wearable.tcdp_optimal);
        assert!(wearable.iso_edp_tcdp_spread >= 1.0);
    }

    #[test]
    fn domain_metadata() {
        assert_eq!(DomainClass::ALL.len(), 3);
        assert!(DomainClass::Wearable.embodied_share() > DomainClass::Mobile.embodied_share());
        assert!(DomainClass::Mobile.embodied_share() > DomainClass::Datacenter.embodied_share());
        assert_eq!(DomainClass::Wearable.label(), "wearable");
    }

    #[test]
    fn tcdp_under_constant_source_matches_direct() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 500.0);
        let constant = ConstantCi::new(grids::US_AVERAGE);
        let via_source = tcdp_under_source(&p, &constant, 100.0, Seconds::from_years(3.0));
        let direct = p.tcdp(&OperationalContext::us_grid(100.0)).value();
        // The exact kernel recovers the constant bit-for-bit.
        assert!((via_source - direct).abs() / direct < f64::EPSILON);
        // ... and so does the sampled spec, for a constant source.
        let sampled = tcdp_under_source_sampled(&p, &constant, 100.0, Seconds::from_years(3.0), 7);
        assert!((sampled - direct).abs() / direct < f64::EPSILON);
    }

    #[test]
    fn sampled_tcdp_converges_to_the_exact_kernel() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 500.0);
        let trend = TrendCi::new(grids::US_AVERAGE, 0.08).unwrap();
        let life = Seconds::from_years(5.0);
        let exact = tcdp_under_source(&p, &trend, 100.0, life);
        let mut prev = f64::INFINITY;
        for samples in [10, 100, 1_000, 10_000] {
            let err =
                (tcdp_under_source_sampled(&p, &trend, 100.0, life, samples) - exact).abs() / exact;
            assert!(err < prev * 1.5, "error should shrink: {err} vs {prev}");
            prev = err;
        }
        assert!(prev < 1e-6, "10k samples should be within 1e-6: {prev}");
    }

    #[test]
    fn decarbonizing_grid_lowers_tcdp() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 500.0);
        let flat = ConstantCi::new(grids::US_AVERAGE);
        let trend = TrendCi::new(grids::US_AVERAGE, 0.10).unwrap();
        let life = Seconds::from_years(5.0);
        assert!(
            tcdp_under_source(&p, &trend, 100.0, life) < tcdp_under_source(&p, &flat, 100.0, life)
        );
    }

    #[test]
    fn monte_carlo_is_bit_identical_across_thread_counts() {
        let p = point("x", 1.0, 2.0, 500.0);
        // 200 samples spans four RNG blocks, so multi-thread runs really
        // do split the work.
        let spec = MonteCarloSpec::new(200, 42);
        let base = monte_carlo_tcdp_with_threads(&p, &spec, 1).unwrap();
        for threads in [2, 4, 16] {
            let par = monte_carlo_tcdp_with_threads(&p, &spec, threads).unwrap();
            assert_eq!(base, par, "threads = {threads}");
        }
        assert_eq!(base.samples, 200);
        assert!(base.min > 0.0);
        assert!(base.min <= base.mean && base.mean <= base.max);
        assert!(base.std_dev > 0.0);
    }

    #[test]
    fn monte_carlo_seed_controls_the_stream() {
        let p = point("x", 1.0, 2.0, 500.0);
        let a = monte_carlo_tcdp(&p, &MonteCarloSpec::new(100, 1)).unwrap();
        let b = monte_carlo_tcdp(&p, &MonteCarloSpec::new(100, 1)).unwrap();
        let c = monte_carlo_tcdp(&p, &MonteCarloSpec::new(100, 2)).unwrap();
        assert_eq!(a, b);
        assert!(
            (a.mean - c.mean).abs() > 0.0,
            "different seeds should differ"
        );
    }

    #[test]
    fn monte_carlo_regret_finds_the_all_around_design() {
        let pts = space();
        let spec = MonteCarloSpec::new(512, 7);
        let regret = monte_carlo_regret(&pts, &spec).unwrap();
        assert_eq!(regret.len(), pts.len());
        // Mean regret is at least 1 by construction.
        assert!(regret.iter().all(|&r| r >= 1.0 - 1e-12));
        // The sampled envelope spans embodied- and operational-dominated
        // scenarios, so the extreme specialists ("huge") fare worse than
        // the best all-rounder.
        let best = regret.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(regret[4] > best, "huge should not be the robust choice");
        // And parallel evaluation changes nothing.
        let seq = monte_carlo_regret_with_threads(&pts, &spec, 1).unwrap();
        assert_eq!(regret, seq);
    }

    #[test]
    fn monte_carlo_validation() {
        let p = point("x", 1.0, 2.0, 500.0);
        assert!(monte_carlo_tcdp(&p, &MonteCarloSpec::new(0, 1)).is_err());
        let mut bad = MonteCarloSpec::new(10, 1);
        std::mem::swap(&mut bad.ci_lo, &mut bad.ci_hi);
        assert!(monte_carlo_tcdp(&p, &bad).is_err());
        let mut bad = MonteCarloSpec::new(10, 1);
        bad.tasks_log10_hi = bad.tasks_log10_lo - 1.0;
        assert!(monte_carlo_tcdp(&p, &bad).is_err());
        assert!(monte_carlo_regret(&[], &MonteCarloSpec::new(10, 1)).is_err());
    }

    #[test]
    fn regret_identifies_robust_design() {
        let pts = space();
        let clean = ConstantCi::new(grids::SOLAR);
        let dirty = ConstantCi::new(grids::COAL);
        let scenarios: Vec<&dyn CiIntegral> = vec![&clean, &dirty];
        let regret = scenario_regret(&pts, &scenarios, 1e4, Seconds::from_years(3.0)).unwrap();
        assert_eq!(regret.len(), pts.len());
        // Every regret >= 1; at least one design is not universally optimal.
        assert!(regret.iter().all(|&r| r >= 1.0 - 1e-12));
        let min = regret.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = regret.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min);
        // Empty inputs are errors.
        assert!(scenario_regret(&[], &scenarios, 1.0, Seconds::new(1.0)).is_err());
        assert!(scenario_regret(&pts, &[], 1.0, Seconds::new(1.0)).is_err());
    }

    fn source_set() -> (ConstantCi, TrendCi) {
        (
            ConstantCi::new(grids::COAL),
            TrendCi::new(grids::US_AVERAGE, 0.10).unwrap(),
        )
    }

    #[test]
    fn source_monte_carlo_is_bit_identical_across_thread_counts() {
        let p = point("x", 1.0, 2.0, 500.0);
        let (coal, trend) = source_set();
        let sources: [&dyn CiIntegral; 2] = [&coal, &trend];
        // 200 samples spans four RNG blocks.
        let spec = SourceMonteCarloSpec::new(200, 42);
        let base = monte_carlo_source_tcdp_with_threads(&p, &sources, &spec, 1).unwrap();
        for threads in [2, 4, 16] {
            let par = monte_carlo_source_tcdp_with_threads(&p, &sources, &spec, threads).unwrap();
            assert_eq!(base, par, "threads = {threads}");
        }
        assert_eq!(base.samples, 200);
        assert!(base.min > 0.0);
        assert!(base.min <= base.mean && base.mean <= base.max);
        assert!(base.std_dev > 0.0);
    }

    #[test]
    fn source_monte_carlo_seed_controls_the_stream() {
        let p = point("x", 1.0, 2.0, 500.0);
        let (coal, trend) = source_set();
        let sources: [&dyn CiIntegral; 2] = [&coal, &trend];
        let a = monte_carlo_source_tcdp(&p, &sources, &SourceMonteCarloSpec::new(100, 1)).unwrap();
        let b = monte_carlo_source_tcdp(&p, &sources, &SourceMonteCarloSpec::new(100, 1)).unwrap();
        let c = monte_carlo_source_tcdp(&p, &sources, &SourceMonteCarloSpec::new(100, 2)).unwrap();
        assert_eq!(a, b);
        assert!(
            (a.mean - c.mean).abs() > 0.0,
            "different seeds should differ"
        );
    }

    #[test]
    fn sampled_source_monte_carlo_approaches_the_exact_one() {
        let p = point("x", 1.0, 2.0, 500.0);
        let (coal, trend) = source_set();
        let sources: [&dyn CiIntegral; 2] = [&coal, &trend];
        let spec = SourceMonteCarloSpec::new(128, 9);
        let exact = monte_carlo_source_tcdp(&p, &sources, &spec).unwrap();
        // Same draw stream, so the only difference is integration error.
        let coarse =
            monte_carlo_source_tcdp_sampled_with_threads(&p, &sources, &spec, 16, 1).unwrap();
        let fine =
            monte_carlo_source_tcdp_sampled_with_threads(&p, &sources, &spec, 4_096, 1).unwrap();
        let coarse_err = (coarse.mean - exact.mean).abs() / exact.mean;
        let fine_err = (fine.mean - exact.mean).abs() / exact.mean;
        assert!(fine_err <= coarse_err);
        assert!(fine_err < 1e-6, "4096-sample mean off by {fine_err}");
    }

    #[test]
    fn source_monte_carlo_validation() {
        let p = point("x", 1.0, 2.0, 500.0);
        let (coal, _) = source_set();
        let sources: [&dyn CiIntegral; 1] = [&coal];
        assert!(monte_carlo_source_tcdp(&p, &sources, &SourceMonteCarloSpec::new(0, 1)).is_err());
        assert!(monte_carlo_source_tcdp(&p, &[], &SourceMonteCarloSpec::new(10, 1)).is_err());
        let mut bad = SourceMonteCarloSpec::new(10, 1);
        std::mem::swap(&mut bad.lifetime_lo, &mut bad.lifetime_hi);
        assert!(monte_carlo_source_tcdp(&p, &sources, &bad).is_err());
        let mut bad = SourceMonteCarloSpec::new(10, 1);
        bad.tasks_log10_hi = bad.tasks_log10_lo - 1.0;
        assert!(monte_carlo_source_tcdp(&p, &sources, &bad).is_err());
        assert!(monte_carlo_source_tcdp_sampled_with_threads(
            &p,
            &sources,
            &SourceMonteCarloSpec::new(10, 1),
            0,
            1
        )
        .is_err());
    }

    #[test]
    fn supervised_monte_carlo_matches_unsupervised_when_unbounded() {
        let p = point("x", 1.0, 2.0, 500.0);
        let spec = MonteCarloSpec::new(300, 11);
        let direct = monte_carlo_tcdp_with_threads(&p, &spec, 2).unwrap();
        let sup = Supervisor::unbounded();
        let mc = monte_carlo_tcdp_supervised_with_threads(&p, &spec, &sup, 2).unwrap();
        assert!(mc.is_complete());
        assert_eq!(mc.summary().unwrap(), direct);
    }

    #[test]
    fn interrupted_monte_carlo_resumes_to_identical_bits() {
        let p = point("x", 1.0, 2.0, 500.0);
        // 300 samples = 5 blocks of 64 (last short).
        let spec = MonteCarloSpec::new(300, 11);
        let direct = monte_carlo_tcdp_with_threads(&p, &spec, 1).unwrap();
        for trip in [0u64, 1, 3] {
            let sup = Supervisor::tripping_after(trip);
            let mut mc = monte_carlo_tcdp_supervised_with_threads(&p, &spec, &sup, 1).unwrap();
            assert_eq!(mc.stop(), Some(StopReason::Cancelled), "trip {trip}");
            assert_eq!(mc.completed_blocks(), trip as usize);
            assert!(mc.summary().is_none());
            mc.resume_tcdp_with_threads(&p, &spec, &Supervisor::unbounded(), 2)
                .unwrap();
            assert!(mc.is_complete());
            assert_eq!(mc.summary().unwrap(), direct, "trip {trip}");
        }
    }

    #[test]
    fn supervised_source_monte_carlo_resumes_exactly() {
        let p = point("x", 1.0, 2.0, 500.0);
        let (coal, trend) = source_set();
        let sources: [&dyn CiIntegral; 2] = [&coal, &trend];
        let spec = SourceMonteCarloSpec::new(200, 7);
        let exact = monte_carlo_source_tcdp_with_threads(&p, &sources, &spec, 1).unwrap();
        let sup = Supervisor::tripping_after(1);
        let mut mc =
            monte_carlo_source_tcdp_supervised_with_threads(&p, &sources, &spec, &sup, 1).unwrap();
        assert!(!mc.is_complete());
        mc.resume_source_with_threads(&p, &sources, &spec, &Supervisor::unbounded(), 2)
            .unwrap();
        assert_eq!(mc.summary().unwrap(), exact);
        // Sampled-integration path, same shape.
        let sampled =
            monte_carlo_source_tcdp_sampled_with_threads(&p, &sources, &spec, 16, 1).unwrap();
        let sup = Supervisor::tripping_after(2);
        let mut mc = monte_carlo_source_tcdp_sampled_supervised_with_threads(
            &p, &sources, &spec, 16, &sup, 1,
        )
        .unwrap();
        mc.resume_source_sampled_with_threads(&p, &sources, &spec, 16, &Supervisor::unbounded(), 1)
            .unwrap();
        assert_eq!(mc.summary().unwrap(), sampled);
    }

    #[test]
    fn supervised_regret_resumes_exactly() {
        let pts = space();
        let spec = MonteCarloSpec::new(256, 3);
        let direct = monte_carlo_regret_with_threads(&pts, &spec, 1).unwrap();
        let sup = Supervisor::tripping_after(2);
        let mut regret = monte_carlo_regret_supervised_with_threads(&pts, &spec, &sup, 1).unwrap();
        assert_eq!(regret.stop(), Some(StopReason::Cancelled));
        assert_eq!(regret.completed_blocks(), 2);
        assert_eq!(regret.total_blocks(), 4);
        assert!(regret.regrets().is_none());
        regret
            .resume_with_threads(&pts, &spec, &Supervisor::unbounded(), 2)
            .unwrap();
        assert_eq!(regret.regrets().unwrap(), direct);
    }

    #[test]
    fn supervised_monte_carlo_rejects_mismatched_resume() {
        let p = point("x", 1.0, 2.0, 500.0);
        let spec = MonteCarloSpec::new(300, 11);
        let sup = Supervisor::tripping_after(1);
        let mut mc = monte_carlo_tcdp_supervised_with_threads(&p, &spec, &sup, 1).unwrap();
        let other = MonteCarloSpec::new(301, 11);
        assert!(mc
            .resume_tcdp_with_threads(&p, &other, &Supervisor::unbounded(), 1)
            .is_err());
        let pts = space();
        let sup = Supervisor::tripping_after(1);
        let mut regret =
            monte_carlo_regret_supervised_with_threads(&pts, &MonteCarloSpec::new(256, 3), &sup, 1)
                .unwrap();
        assert!(regret
            .resume_with_threads(
                &pts[..2],
                &MonteCarloSpec::new(256, 3),
                &Supervisor::unbounded(),
                1
            )
            .is_err());
    }
}
