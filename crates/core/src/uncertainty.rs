//! Uncertainty analyses: domain studies (Fig. 6) and robustness to
//! unknown usage and grid intensity (§VI-C).

use crate::metrics::{DesignPoint, OperationalContext};
use crate::stats::log_pearson;
use cordoba_carbon::intensity::{grids, CiSource};
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use cordoba_carbon::CarbonError;
use serde::{Deserialize, Serialize};

/// The computing domains of Fig. 6, distinguished by how much of their
/// total carbon is embodied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainClass {
    /// Microcontrollers and wearables: ~95 % embodied \[3\].
    Wearable,
    /// Mobile/laptop: ~72 % embodied \[2\].
    Mobile,
    /// Datacenter servers: ~50 % embodied \[21\].
    Datacenter,
}

impl DomainClass {
    /// All domains, embodied-dominant first.
    pub const ALL: [DomainClass; 3] = [Self::Wearable, Self::Mobile, Self::Datacenter];

    /// The domain's typical embodied share of total carbon.
    #[must_use]
    pub fn embodied_share(self) -> f64 {
        match self {
            Self::Wearable => 0.95,
            Self::Mobile => 0.72,
            Self::Datacenter => 0.50,
        }
    }

    /// A representative use-phase carbon intensity.
    #[must_use]
    pub fn ci_use(self) -> CarbonIntensity {
        grids::US_AVERAGE
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Wearable => "wearable",
            Self::Mobile => "mobile",
            Self::Datacenter => "datacenter",
        }
    }
}

/// Finds the operational context (task count) at which the *average*
/// embodied share across `points` hits `target_share`, by bisection.
///
/// # Errors
///
/// Returns an error if `points` is empty or `target_share` is outside
/// `(0, 1)`.
pub fn context_for_embodied_share(
    points: &[DesignPoint],
    ci_use: CarbonIntensity,
    target_share: f64,
) -> Result<OperationalContext, CarbonError> {
    if points.is_empty() {
        return Err(CarbonError::Empty {
            what: "design points",
        });
    }
    CarbonError::require_in_range("target share", target_share, 1e-6, 1.0 - 1e-6)?;
    let mean_share = |tasks: f64| -> f64 {
        let ctx = OperationalContext { tasks, ci_use };
        points.iter().map(|p| p.embodied_share(&ctx)).sum::<f64>() / points.len() as f64
    };
    // Share decreases monotonically with task count; bisect on the
    // geometric midpoint.
    let (mut lo, mut hi): (f64, f64) = (1e-3, 1e18);
    for _ in 0..200 {
        let mid = (lo * hi).sqrt();
        if mean_share(mid) > target_share {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    OperationalContext::new((lo * hi).sqrt(), ci_use)
}

/// The Fig. 6 per-domain analysis: EDP vs tCDP over a design space at the
/// domain's embodied:operational balance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainAnalysis {
    /// The domain.
    pub domain: DomainClass,
    /// The operational context realizing the domain's embodied share.
    pub context: OperationalContext,
    /// EDP of each design (J·s).
    pub edp: Vec<f64>,
    /// tCDP of each design (gCO2e·s).
    pub tcdp: Vec<f64>,
    /// Log-domain Pearson correlation between EDP and tCDP.
    pub correlation: f64,
    /// Largest tCDP ratio among near-EDP-equivalent design pairs (the
    /// paper's "100x difference at equal EDP" observation).
    pub iso_edp_tcdp_spread: f64,
    /// Name of the EDP-optimal design.
    pub edp_optimal: String,
    /// Name of the tCDP-optimal design.
    pub tcdp_optimal: String,
}

/// Runs the Fig. 6 analysis for one domain over a design space.
///
/// # Errors
///
/// Returns an error if `points` is empty.
pub fn domain_analysis(
    points: &[DesignPoint],
    domain: DomainClass,
) -> Result<DomainAnalysis, CarbonError> {
    let context = context_for_embodied_share(points, domain.ci_use(), domain.embodied_share())?;
    let edp: Vec<f64> = points.iter().map(|p| p.edp().value()).collect();
    let tcdp: Vec<f64> = points.iter().map(|p| p.tcdp(&context).value()).collect();
    let correlation = log_pearson(&edp, &tcdp).unwrap_or(0.0);

    // Iso-EDP spread: pairs within 25 % EDP of each other.
    let mut spread: f64 = 1.0;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let edp_ratio = (edp[i] / edp[j]).max(edp[j] / edp[i]);
            if edp_ratio < 1.25 {
                spread = spread.max((tcdp[i] / tcdp[j]).max(tcdp[j] / tcdp[i]));
            }
        }
    }

    let argmin = |vs: &[f64]| {
        vs.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("points non-empty") // cordoba-lint: allow(no-panic) — caller validates the point list above
            .0
    };
    Ok(DomainAnalysis {
        domain,
        context,
        edp_optimal: points[argmin(&edp)].name.clone(),
        tcdp_optimal: points[argmin(&tcdp)].name.clone(),
        edp,
        tcdp,
        correlation,
        iso_edp_tcdp_spread: spread,
    })
}

/// Evaluates a design's tCDP under a *time-varying* intensity source by
/// replacing `CI_use` with the source's lifetime mean (valid for constant
/// power, eq. IV.7).
#[must_use]
pub fn tcdp_under_source(
    point: &DesignPoint,
    source: &dyn CiSource,
    tasks: f64,
    lifetime: Seconds,
) -> f64 {
    let mean_ci = source.mean_over(lifetime, 10_000);
    let ctx = OperationalContext {
        tasks,
        ci_use: mean_ci,
    };
    point.tcdp(&ctx).value()
}

/// Worst-case regret of each design across a set of intensity scenarios:
/// `max_s tCDP(design, s) / tCDP(optimal(s), s)`.
///
/// The design minimizing this is the robust choice when the grid's future
/// is unknown (§IV-B / §VI-C).
///
/// # Errors
///
/// Returns an error if `points` or `scenarios` is empty.
pub fn scenario_regret(
    points: &[DesignPoint],
    scenarios: &[&dyn CiSource],
    tasks: f64,
    lifetime: Seconds,
) -> Result<Vec<f64>, CarbonError> {
    if points.is_empty() {
        return Err(CarbonError::Empty {
            what: "design points",
        });
    }
    if scenarios.is_empty() {
        return Err(CarbonError::Empty { what: "scenarios" });
    }
    let mut regret = vec![1.0f64; points.len()];
    for &s in scenarios {
        let tcdps: Vec<f64> = points
            .iter()
            .map(|p| tcdp_under_source(p, s, tasks, lifetime))
            .collect();
        let best = tcdps.iter().cloned().fold(f64::INFINITY, f64::min);
        for (r, t) in regret.iter_mut().zip(&tcdps) {
            *r = r.max(t / best);
        }
    }
    Ok(regret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_carbon::intensity::{ConstantCi, TrendCi};
    use cordoba_carbon::units::{GramsCo2e, Joules, SquareCentimeters, JOULES_PER_KILOWATT_HOUR};

    fn point(name: &str, d: f64, e: f64, emb: f64) -> DesignPoint {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        )
        .unwrap()
    }

    fn space() -> Vec<DesignPoint> {
        vec![
            point("tiny", 4.0, 0.5, 20.0),
            point("small", 2.0, 1.0, 60.0),
            point("mid", 1.0, 2.5, 200.0),
            point("big", 0.5, 3.0, 800.0),
            point("huge", 0.4, 20.0, 4000.0),
        ]
    }

    #[test]
    fn bisection_hits_target_share() {
        let pts = space();
        for share in [0.95, 0.72, 0.50, 0.10] {
            let ctx = context_for_embodied_share(&pts, grids::US_AVERAGE, share).unwrap();
            let mean: f64 =
                pts.iter().map(|p| p.embodied_share(&ctx)).sum::<f64>() / pts.len() as f64;
            assert!((mean - share).abs() < 0.01, "share {share} got {mean}");
        }
    }

    #[test]
    fn bisection_validation() {
        assert!(context_for_embodied_share(&[], grids::US_AVERAGE, 0.5).is_err());
        assert!(context_for_embodied_share(&space(), grids::US_AVERAGE, 0.0).is_err());
        assert!(context_for_embodied_share(&space(), grids::US_AVERAGE, 1.0).is_err());
    }

    #[test]
    fn correlation_strengthens_toward_operational_dominance() {
        // Fig. 6: wearables show the weakest EDP-tCDP correlation,
        // datacenters the strongest.
        let pts = space();
        let wearable = domain_analysis(&pts, DomainClass::Wearable).unwrap();
        let datacenter = domain_analysis(&pts, DomainClass::Datacenter).unwrap();
        assert!(
            datacenter.correlation > wearable.correlation,
            "dc {} vs wearable {}",
            datacenter.correlation,
            wearable.correlation
        );
    }

    #[test]
    fn edp_and_tcdp_optima_diverge_when_embodied_dominates() {
        let pts = space();
        let wearable = domain_analysis(&pts, DomainClass::Wearable).unwrap();
        assert_ne!(wearable.edp_optimal, wearable.tcdp_optimal);
        assert!(wearable.iso_edp_tcdp_spread >= 1.0);
    }

    #[test]
    fn domain_metadata() {
        assert_eq!(DomainClass::ALL.len(), 3);
        assert!(DomainClass::Wearable.embodied_share() > DomainClass::Mobile.embodied_share());
        assert!(DomainClass::Mobile.embodied_share() > DomainClass::Datacenter.embodied_share());
        assert_eq!(DomainClass::Wearable.label(), "wearable");
    }

    #[test]
    fn tcdp_under_constant_source_matches_direct() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 500.0);
        let constant = ConstantCi::new(grids::US_AVERAGE);
        let via_source = tcdp_under_source(&p, &constant, 100.0, Seconds::from_years(3.0));
        let direct = p.tcdp(&OperationalContext::us_grid(100.0)).value();
        assert!((via_source - direct).abs() / direct < 1e-9);
    }

    #[test]
    fn decarbonizing_grid_lowers_tcdp() {
        let p = point("x", 1.0, JOULES_PER_KILOWATT_HOUR, 500.0);
        let flat = ConstantCi::new(grids::US_AVERAGE);
        let trend = TrendCi::new(grids::US_AVERAGE, 0.10).unwrap();
        let life = Seconds::from_years(5.0);
        assert!(
            tcdp_under_source(&p, &trend, 100.0, life) < tcdp_under_source(&p, &flat, 100.0, life)
        );
    }

    #[test]
    fn regret_identifies_robust_design() {
        let pts = space();
        let clean = ConstantCi::new(grids::SOLAR);
        let dirty = ConstantCi::new(grids::COAL);
        let scenarios: Vec<&dyn CiSource> = vec![&clean, &dirty];
        let regret = scenario_regret(&pts, &scenarios, 1e4, Seconds::from_years(3.0)).unwrap();
        assert_eq!(regret.len(), pts.len());
        // Every regret >= 1; at least one design is not universally optimal.
        assert!(regret.iter().all(|&r| r >= 1.0 - 1e-12));
        let min = regret.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = regret.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min);
        // Empty inputs are errors.
        assert!(scenario_regret(&[], &scenarios, 1.0, Seconds::new(1.0)).is_err());
        assert!(scenario_regret(&pts, &[], 1.0, Seconds::new(1.0)).is_err());
    }
}
