//! Design-space exploration across operational time (§VI-A/§VI-B,
//! Figures 6-8).
//!
//! The central trick of the paper's Fig. 8: plotting tCDP against
//! operational time (number of inferences) sweeps *every possible ratio* of
//! embodied to operational carbon. Designs that are never optimal at any
//! ratio are eliminated — typically 96-98 % of the space — and the
//! survivors are exactly the candidates a designer must choose between
//! under uncertainty.

use crate::error::CoreError;
use crate::metrics::{DesignPoint, OperationalContext};
use cordoba_accel::cache::EmbodiedCache;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::sim::{full_cost_table, ConfigBatch, KernelSlab, TaskPlan};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::units::{CarbonIntensity, Seconds};
use cordoba_carbon::CarbonError;
use cordoba_obs::Histogram;
use cordoba_par::CostHint;
use cordoba_workloads::task::Task;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Wall-clock distribution of [`evaluate_space_with_threads`] calls.
static EVALUATE_SPACE_NS: Histogram = Histogram::new("core/evaluate_space_ns");
/// Wall-clock distribution of [`OpTimeSweep::with_threads`] calls.
static OP_TIME_SWEEP_NS: Histogram = Histogram::new("core/op_time_sweep_ns");

/// Estimated cost of characterizing one configuration through the batch
/// pipeline (roofline + task equations + memoized embodied carbon). Feeds
/// the [`CostHint`] chunk sizing: the seed 121-config space stays on the
/// calling thread while thousand-config spaces fan out.
pub(crate) const EVAL_NS_PER_CONFIG: u64 = 1_200;
/// Estimated cost of one tCDP matrix entry (one `DesignPoint::tcdp` call);
/// a sweep row's hint is this times the point count.
pub(crate) const TCDP_NS_PER_POINT: u64 = 40;

/// The batch-evaluation state shared by every configuration of one
/// `evaluate_space` call: the SoA simulator inputs, the task resolved to
/// slab indices, and the embodied-carbon memo — everything the per-config
/// scalar path re-derived on every call, hoisted out of the hot loop.
///
/// [`EvalBatch::design_point`] produces results bit-identical to
/// [`accel_design_point`], including the error for an invalid
/// configuration.
pub(crate) struct EvalBatch<'a> {
    configs: &'a [AcceleratorConfig],
    batch: ConfigBatch,
    slab: KernelSlab,
    plan: TaskPlan,
    cache: EmbodiedCache,
}

impl<'a> EvalBatch<'a> {
    pub(crate) fn new(
        configs: &'a [AcceleratorConfig],
        task: &Task,
        embodied: &EmbodiedModel,
    ) -> Self {
        // The slab covers only the task's kernel union (not all fifteen):
        // per-kernel simulations are independent, so skipping unused
        // kernels cannot change the bits of the ones the task sums.
        let slab = KernelSlab::new(task.kernels());
        let plan = TaskPlan::new(task, &slab).expect("slab was built from the task's own kernels"); // cordoba-lint: allow(no-panic)
        Self {
            configs,
            batch: ConfigBatch::new(configs),
            slab,
            plan,
            cache: EmbodiedCache::new(embodied.clone()),
        }
    }

    pub(crate) fn design_point(&self, idx: usize) -> Result<DesignPoint, CoreError> {
        let config = &self.configs[idx];
        let costs = self.batch.slab_costs(idx, &self.slab);
        let (delay, energy) = self.batch.task_cost(idx, &costs, &self.plan);
        Ok(DesignPoint::new(
            config.name(),
            delay,
            energy,
            self.cache.embodied(config)?,
            config.total_area(),
        )?)
    }
}

/// Characterizes one accelerator configuration as a [`DesignPoint`] for a
/// task: delay and energy from the roofline simulator via eq. IV.2/IV.4,
/// embodied carbon from the assembly model.
///
/// # Errors
///
/// Returns [`CoreError::MissingKernel`] when the task references a kernel
/// the config's cost table cannot price, and [`CoreError::Carbon`] when the
/// config yields an invalid carbon model or design point (e.g. a corrupted
/// tuning producing non-finite area).
pub fn accel_design_point(
    config: &AcceleratorConfig,
    task: &Task,
    embodied: &EmbodiedModel,
) -> Result<DesignPoint, CoreError> {
    let table = full_cost_table(config);
    let delay = table.task_delay(task)?;
    let energy = table.task_energy(task)?;
    Ok(DesignPoint::new(
        config.name(),
        delay,
        energy,
        config.embodied_carbon(embodied)?,
        config.total_area(),
    )?)
}

/// Characterizes a whole configuration list for a task, aborting on the
/// first invalid configuration.
///
/// Configurations are evaluated in parallel (see [`cordoba_par`]) but the
/// returned points are in input order and bit-identical to a sequential
/// `configs.iter().map(..).collect()` at any thread count.
///
/// For sweeps over untrusted or generated spaces, prefer
/// [`evaluate_space_resilient`], which quarantines failures instead.
///
/// # Errors
///
/// Propagates the error of the first (in input order) invalid
/// configuration (see [`accel_design_point`]).
pub fn evaluate_space(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
) -> Result<Vec<DesignPoint>, CoreError> {
    evaluate_space_with_threads(configs, task, embodied, cordoba_par::effective_threads())
}

/// [`evaluate_space`] with an explicit worker-thread count (1 = the exact
/// sequential path). Results are identical at every thread count.
///
/// # Errors
///
/// Propagates the error of the first (in input order) invalid
/// configuration (see [`accel_design_point`]).
pub fn evaluate_space_with_threads(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, CoreError> {
    let _span = cordoba_obs::span_timed("core/evaluate_space", &EVALUATE_SPACE_NS);
    let batch = EvalBatch::new(configs, task, embodied);
    cordoba_par::try_par_map_indexed_hinted(
        configs,
        threads,
        CostHint::per_item_ns(EVAL_NS_PER_CONFIG),
        |idx, _| batch.design_point(idx),
    )
}

/// Characterizes a configuration list for *several* tasks at once, sharing
/// the cost table and memoized embodied carbon of each configuration across
/// all tasks.
///
/// The per-task result `out[t]` equals `evaluate_space(configs, &tasks[t],
/// embodied)` exactly, but each configuration's roofline table is built
/// once (instead of once per task) and the yield/wafer math behind
/// [`AcceleratorConfig::embodied_carbon`] runs once per distinct
/// configuration shape via [`EmbodiedCache`].
///
/// # Errors
///
/// Propagates the error of the first (in input order) configuration that
/// fails on any task; within one configuration, the first failing task
/// wins.
pub fn evaluate_space_multi(
    configs: &[AcceleratorConfig],
    tasks: &[Task],
    embodied: &EmbodiedModel,
) -> Result<Vec<Vec<DesignPoint>>, CoreError> {
    let _span = cordoba_obs::span_with(
        "core/evaluate_space_multi",
        "tasks",
        u64::try_from(tasks.len()).unwrap_or(u64::MAX),
    );
    let cache = EmbodiedCache::new(embodied.clone());
    // One slab over the union of every task's kernels; each task resolves
    // to slab indices once, so the per-config loop simulates each kernel
    // exactly once and does no map lookups.
    let slab = KernelSlab::new(tasks.iter().flat_map(Task::kernels));
    let plans = tasks
        .iter()
        .map(|task| TaskPlan::new(task, &slab))
        .collect::<Result<Vec<_>, _>>()
        .expect("slab was built from the tasks' own kernels"); // cordoba-lint: allow(no-panic)
    let batch = ConfigBatch::new(configs);
    let hint = CostHint::per_item_ns(EVAL_NS_PER_CONFIG.saturating_mul(tasks.len().max(1) as u64));
    let per_config: Vec<Vec<DesignPoint>> = cordoba_par::try_par_map_indexed_hinted(
        configs,
        cordoba_par::effective_threads(),
        hint,
        |idx, c| {
            let costs = batch.slab_costs(idx, &slab);
            let embodied_carbon = cache.embodied(c)?;
            plans
                .iter()
                .map(|plan| {
                    let (delay, energy) = batch.task_cost(idx, &costs, plan);
                    Ok(DesignPoint::new(
                        c.name(),
                        delay,
                        energy,
                        embodied_carbon,
                        c.total_area(),
                    )?)
                })
                .collect::<Result<Vec<DesignPoint>, CoreError>>()
        },
    )?;
    let mut per_task = vec![Vec::with_capacity(configs.len()); tasks.len()];
    for config_points in per_config {
        for (t, point) in config_points.into_iter().enumerate() {
            per_task[t].push(point);
        }
    }
    Ok(per_task)
}

/// One configuration that failed resilient evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalFailure {
    /// Name of the failing configuration.
    pub name: String,
    /// Why it failed.
    pub error: CoreError,
}

impl fmt::Display for EvalFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`: {}", self.name, self.error)
    }
}

/// Outcome of [`evaluate_space_resilient`]: the points that evaluated
/// cleanly plus a quarantine report for those that did not.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilientEval {
    /// Successfully characterized design points, in input order.
    pub points: Vec<DesignPoint>,
    /// Configurations that failed, with their errors, in input order.
    pub failures: Vec<EvalFailure>,
}

impl ResilientEval {
    /// `true` when at least one configuration was quarantined.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }
}

/// Characterizes a configuration list for a task, isolating
/// per-configuration failures instead of aborting the sweep.
///
/// A poisoned configuration (corrupted tuning, unpriceable kernel, or a
/// *panicking* evaluation — panics are isolated per configuration by the
/// supervised map) lands in [`ResilientEval::failures`] with its structured
/// error; every healthy configuration is still evaluated. On a clean space
/// the returned points are exactly those of [`evaluate_space`]. Evaluation
/// is parallel, but both `points` and `failures` preserve input
/// (quarantine) order exactly as the sequential loop produced them.
#[must_use]
pub fn evaluate_space_resilient(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
) -> ResilientEval {
    evaluate_space_resilient_with_threads(configs, task, embodied, cordoba_par::effective_threads())
}

/// [`evaluate_space_resilient`] with an explicit worker-thread count
/// (1 = the exact sequential path). Results are identical at every thread
/// count.
#[must_use]
pub fn evaluate_space_resilient_with_threads(
    configs: &[AcceleratorConfig],
    task: &Task,
    embodied: &EmbodiedModel,
    threads: usize,
) -> ResilientEval {
    let _span = cordoba_obs::span_with(
        "core/evaluate_space_resilient",
        "configs",
        u64::try_from(configs.len()).unwrap_or(u64::MAX),
    );
    let sup = cordoba_par::Supervisor::unbounded();
    let eval = crate::supervise::evaluate_space_supervised_with_threads(
        configs, task, embodied, &sup, threads,
    );
    // An unbounded supervisor never stops the map, so every slot resolves.
    eval.to_resilient()
        .expect("unbounded supervised evaluation always completes") // cordoba-lint: allow(no-panic)
}

/// A logarithmic sweep of task counts: `per_decade` points per decade from
/// `10^lo` to `10^hi` inclusive.
///
/// # Panics
///
/// Panics if `hi <= lo` or `per_decade == 0`.
#[must_use]
pub fn log_sweep(lo: i32, hi: i32, per_decade: u32) -> Vec<f64> {
    assert!(hi > lo, "hi must exceed lo");
    assert!(per_decade > 0, "per_decade must be > 0");
    let steps = ((hi - lo) as u32 * per_decade) as usize;
    (0..=steps)
        .map(|i| 10f64.powf(f64::from(lo) + i as f64 / f64::from(per_decade)))
        .collect()
}

/// tCDP of every design at every operational time (one Fig. 8 subplot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTimeSweep {
    /// The candidate designs.
    pub points: Vec<DesignPoint>,
    /// The operational-time axis (task counts).
    pub task_counts: Vec<f64>,
    /// The use-phase carbon intensity.
    pub ci_use: CarbonIntensity,
    /// Flat row-major tCDP matrix: entry `n * points.len() + p` is the
    /// tCDP of point `p` at task count `n`. One contiguous allocation
    /// instead of one `Vec` per row, so row scans (optimum lookups,
    /// robustness scores) stream linearly through memory.
    tcdp: Vec<f64>,
}

impl OpTimeSweep {
    /// Evaluates the sweep.
    ///
    /// The tCDP matrix rows (one per task count) are computed in parallel;
    /// each row is independent, so the matrix is bit-identical to the
    /// sequential evaluation at any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if `task_counts` is empty or contains non-positive
    /// values, or `points` is empty.
    pub fn new(
        points: Vec<DesignPoint>,
        task_counts: Vec<f64>,
        ci_use: CarbonIntensity,
    ) -> Result<Self, CarbonError> {
        Self::with_threads(
            points,
            task_counts,
            ci_use,
            cordoba_par::effective_threads(),
        )
    }

    /// [`OpTimeSweep::new`] with an explicit worker-thread count (1 = the
    /// exact sequential path). Results are identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if `task_counts` is empty or contains non-positive
    /// values, or `points` is empty.
    pub fn with_threads(
        points: Vec<DesignPoint>,
        task_counts: Vec<f64>,
        ci_use: CarbonIntensity,
        threads: usize,
    ) -> Result<Self, CarbonError> {
        let _span = cordoba_obs::span_timed("core/op_time_sweep", &OP_TIME_SWEEP_NS);
        if points.is_empty() {
            return Err(CarbonError::Empty {
                what: "design points",
            });
        }
        if task_counts.is_empty() {
            return Err(CarbonError::Empty {
                what: "task counts",
            });
        }
        let hint = CostHint::per_item_ns(TCDP_NS_PER_POINT.saturating_mul(points.len() as u64));
        if hint.workers(task_counts.len(), threads) == 1 {
            // Sequential path: stream entries straight into the flat
            // row-major matrix, with no per-row allocation or merge copy.
            let mut tcdp = Vec::with_capacity(points.len() * task_counts.len());
            for &n in &task_counts {
                let ctx = OperationalContext::new(n, ci_use)?;
                tcdp.extend(points.iter().map(|p| p.tcdp(&ctx).value()));
            }
            return Ok(Self {
                points,
                task_counts,
                ci_use,
                tcdp,
            });
        }
        let rows: Vec<Vec<f64>> =
            cordoba_par::try_par_map_indexed_hinted(&task_counts, threads, hint, |_, &n| {
                let ctx = OperationalContext::new(n, ci_use)?;
                Ok(points.iter().map(|p| p.tcdp(&ctx).value()).collect())
            })?;
        Ok(Self::from_rows(points, task_counts, ci_use, rows))
    }

    /// Assembles a sweep from rows computed elsewhere (the supervised
    /// checkpoint/resume path), flattening them into the row-major matrix.
    /// Callers guarantee `rows[n][p]` matches `task_counts[n]` ×
    /// `points[p]` — the supervised sweep only produces rows through the
    /// same per-row computation as [`Self::with_threads`].
    pub(crate) fn from_rows(
        points: Vec<DesignPoint>,
        task_counts: Vec<f64>,
        ci_use: CarbonIntensity,
        rows: Vec<Vec<f64>>,
    ) -> Self {
        let mut tcdp = Vec::with_capacity(points.len() * task_counts.len());
        for row in rows {
            tcdp.extend(row);
        }
        Self {
            points,
            task_counts,
            ci_use,
            tcdp,
        }
    }

    /// Reassembles a sweep from a flat row-major matrix restored by the
    /// content-addressed store; `None` when the matrix size does not match
    /// `points.len() * task_counts.len()`.
    pub(crate) fn from_flat(
        points: Vec<DesignPoint>,
        task_counts: Vec<f64>,
        ci_use: CarbonIntensity,
        tcdp: Vec<f64>,
    ) -> Option<Self> {
        (tcdp.len() == points.len() * task_counts.len()).then_some(Self {
            points,
            task_counts,
            ci_use,
            tcdp,
        })
    }

    /// The tCDP row for sweep index `n` (one value per design point).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn row(&self, n: usize) -> &[f64] {
        let width = self.points.len();
        &self.tcdp[n * width..(n + 1) * width]
    }

    /// The whole tCDP matrix, flat row-major: entry `n * points.len() + p`
    /// is the tCDP of point `p` at task count `n`.
    #[must_use]
    pub fn tcdp_matrix(&self) -> &[f64] {
        &self.tcdp
    }

    /// Evaluates the sweep under a *time-varying* intensity source: the
    /// lifetime-mean `CI_use` comes from the exact integration kernel
    /// ([`CiIntegral::mean_exact`] over `[0, lifetime]`), then the sweep is
    /// evaluated as in [`OpTimeSweep::new`].
    ///
    /// # Errors
    ///
    /// Returns an error if `task_counts` is empty or contains non-positive
    /// values, or `points` is empty.
    pub fn under_source(
        points: Vec<DesignPoint>,
        task_counts: Vec<f64>,
        source: &dyn CiIntegral,
        lifetime: Seconds,
    ) -> Result<Self, CarbonError> {
        let ci_use = source.mean_exact(Seconds::ZERO, lifetime);
        Self::new(points, task_counts, ci_use)
    }

    /// tCDP of point `p` at sweep index `n`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn tcdp_at(&self, n: usize, p: usize) -> f64 {
        assert!(p < self.points.len(), "point index {p} out of range");
        self.tcdp[n * self.points.len() + p]
    }

    /// Index of the tCDP-optimal design at sweep index `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn optimal_at(&self, n: usize) -> usize {
        self.row(n)
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("points is non-empty") // cordoba-lint: allow(no-panic) — OpTimeSweep::new rejects empty point lists
            .0
    }

    /// Names of all designs that are optimal at some operational time —
    /// the survivors of the Fig. 8 elimination.
    #[must_use]
    pub fn ever_optimal(&self) -> BTreeSet<String> {
        (0..self.task_counts.len())
            .map(|n| self.points[self.optimal_at(n)].name.clone())
            .collect()
    }

    /// Fraction of the design space eliminated as never-optimal.
    #[must_use]
    pub fn elimination_fraction(&self) -> f64 {
        1.0 - self.ever_optimal().len() as f64 / self.points.len() as f64
    }

    /// tCDP of each design at sweep index `n`, normalized to the optimum
    /// (1.0 = optimal; the Fig. 9 y-axis is the reciprocal).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn normalized_at(&self, n: usize) -> Vec<f64> {
        let row = self.row(n);
        let best = row[self.optimal_at(n)];
        row.iter().map(|v| v / best).collect()
    }

    /// Mean normalized tCDP of design `p` across the whole sweep — the
    /// Fig. 9 robustness score (lower is more robust; 1.0 would be optimal
    /// everywhere).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn robustness_score(&self, p: usize) -> f64 {
        let sum: f64 = (0..self.task_counts.len())
            .map(|n| self.normalized_at(n)[p])
            .sum();
        sum / self.task_counts.len() as f64
    }

    /// Robustness scores of every design, computed in one pass over the
    /// sweep (one optimum lookup per operational time instead of one per
    /// design x time).
    #[must_use]
    pub fn robustness_scores(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.points.len()];
        for row in self.tcdp.chunks_exact(self.points.len()) {
            let best = row.iter().copied().fold(f64::INFINITY, f64::min);
            for (sum, v) in sums.iter_mut().zip(row) {
                *sum += v / best;
            }
        }
        let n = self.task_counts.len() as f64;
        sums.iter_mut().for_each(|s| *s /= n);
        sums
    }

    /// Index of the most robust design (best average normalized tCDP).
    #[must_use]
    pub fn robust_choice(&self) -> usize {
        self.robustness_scores()
            .into_iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("points is non-empty") // cordoba-lint: allow(no-panic) — OpTimeSweep::new rejects empty point lists
            .0
    }

    /// Mean tCDP across all designs at sweep index `n` (the Fig. 8(f) red
    /// diamonds).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn average_tcdp_at(&self, n: usize) -> f64 {
        self.row(n).iter().sum::<f64>() / self.points.len() as f64
    }

    /// Ratio of average to optimal tCDP at sweep index `n` — the headroom
    /// the paper reports (8x-10.5x at 1e4 inferences, >= 2.3x everywhere).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn optimal_vs_average_at(&self, n: usize) -> f64 {
        self.average_tcdp_at(n) / self.row(n)[self.optimal_at(n)]
    }

    /// The sweep index closest to a task count of `n`.
    #[must_use]
    pub fn index_near(&self, n: f64) -> usize {
        self.task_counts
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1.ln() - n.ln())
                    .abs()
                    .total_cmp(&(b.1.ln() - n.ln()).abs())
            })
            .expect("task_counts is non-empty") // cordoba-lint: allow(no-panic) — OpTimeSweep::new rejects empty sweeps
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_accel::space::{config_by_name, design_space};
    use cordoba_carbon::intensity::grids;

    fn small_sweep(task: &Task) -> OpTimeSweep {
        let configs = design_space();
        let points = evaluate_space(&configs, task, &EmbodiedModel::default()).unwrap();
        OpTimeSweep::new(points, log_sweep(4, 11, 2), grids::US_AVERAGE).unwrap()
    }

    #[test]
    fn log_sweep_shape() {
        let s = log_sweep(4, 6, 1);
        assert_eq!(s.len(), 3);
        assert!((s[0] - 1e4).abs() < 1e-6);
        assert!((s[2] - 1e6).abs() < 1e-4);
        let dense = log_sweep(0, 1, 4);
        assert_eq!(dense.len(), 5);
    }

    #[test]
    #[should_panic(expected = "hi must exceed lo")]
    fn log_sweep_rejects_bad_range() {
        let _ = log_sweep(5, 5, 1);
    }

    #[test]
    fn accel_bridge_produces_consistent_point() {
        let cfg = config_by_name("a48").unwrap();
        let task = Task::xr_10_kernels();
        let p = accel_design_point(&cfg, &task, &EmbodiedModel::default()).unwrap();
        assert_eq!(p.name, "a48");
        assert!(p.delay.is_positive());
        assert!(p.energy.is_positive());
        assert!(p.embodied.value() > 0.0);
        assert_eq!(p.area, cfg.total_area());
    }

    #[test]
    fn elimination_is_severe_for_all_tasks() {
        // §VI-B: 96.7-98.3 % of the 121 designs eliminated per task.
        for task in Task::evaluation_suite() {
            let sweep = small_sweep(&task);
            let frac = sweep.elimination_fraction();
            assert!(
                frac > 0.90,
                "{}: only {:.1}% eliminated",
                task.name(),
                frac * 100.0
            );
            let survivors = sweep.ever_optimal();
            assert!(
                (1..=12).contains(&survivors.len()),
                "{}: {} survivors",
                task.name(),
                survivors.len()
            );
        }
    }

    #[test]
    fn optimum_grows_with_operational_time() {
        // At short operational times the embodied-lean (small) design wins;
        // at long times a larger, more energy-efficient one wins.
        let sweep = small_sweep(&Task::all_kernels());
        let first = &sweep.points[sweep.optimal_at(0)];
        let last = &sweep.points[sweep.optimal_at(sweep.task_counts.len() - 1)];
        assert!(
            last.area > first.area,
            "late optimum {} should out-size early optimum {}",
            last.name,
            first.name
        );
        assert!(last.delay < first.delay);
        // At long operational times the optimum approaches the EDP optimum,
        // so its energy efficiency (not necessarily raw energy) improves.
        assert!(last.edp() <= first.edp());
    }

    #[test]
    fn under_source_uses_the_exact_lifetime_mean() {
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let points = evaluate_space(&configs, &task, &EmbodiedModel::default()).unwrap();
        let counts = log_sweep(4, 8, 1);
        // A constant source must reproduce the plain constructor exactly.
        let constant = cordoba_carbon::intensity::ConstantCi::new(grids::US_AVERAGE);
        let via_source = OpTimeSweep::under_source(
            points.clone(),
            counts.clone(),
            &constant,
            cordoba_carbon::units::Seconds::from_years(5.0),
        )
        .unwrap();
        let direct = OpTimeSweep::new(points.clone(), counts.clone(), grids::US_AVERAGE).unwrap();
        assert_eq!(via_source, direct);
        // A decarbonizing trend lowers the effective CI below the start.
        let trend = cordoba_carbon::intensity::TrendCi::new(grids::US_AVERAGE, 0.10).unwrap();
        let decarb = OpTimeSweep::under_source(
            points,
            counts,
            &trend,
            cordoba_carbon::units::Seconds::from_years(5.0),
        )
        .unwrap();
        assert!(decarb.ci_use < grids::US_AVERAGE);
    }

    #[test]
    fn xr_optima_carry_more_sram_than_ai_optima() {
        // §VI-B: XR tasks (activation-heavy) pick high-SRAM accelerators;
        // AI-5 picks 1 MiB-class SRAM.
        let xr = small_sweep(&Task::xr_5_kernels());
        let ai = small_sweep(&Task::ai_5_kernels());
        let sram_of = |sweep: &OpTimeSweep, n: usize| {
            let name = sweep.points[sweep.optimal_at(n)].name.clone();
            config_by_name(&name).unwrap().sram().to_mebibytes()
        };
        let mid = xr.index_near(1e8);
        assert!(
            sram_of(&xr, mid) > sram_of(&ai, mid),
            "XR optimum should have more SRAM"
        );
    }

    #[test]
    fn normalized_curves_have_unit_minimum() {
        let sweep = small_sweep(&Task::ai_5_kernels());
        for n in 0..sweep.task_counts.len() {
            let normalized = sweep.normalized_at(n);
            let min = normalized.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((min - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn robust_choice_beats_endpoint_specialists_on_average() {
        let sweep = small_sweep(&Task::all_kernels());
        let robust = sweep.robust_choice();
        let early = sweep.optimal_at(0);
        let late = sweep.optimal_at(sweep.task_counts.len() - 1);
        let score = |p| sweep.robustness_score(p);
        assert!(score(robust) <= score(early));
        assert!(score(robust) <= score(late));
        assert!(score(robust) >= 1.0);
    }

    #[test]
    fn optimal_vs_average_headroom_is_large_when_embodied_dominates() {
        // Fig. 8(f): at 1e4 inferences the optimal design beats the average
        // by a large factor; the paper's minimum across everything is 2.3x.
        let sweep = small_sweep(&Task::ai_5_kernels());
        let low = sweep.index_near(1e4);
        assert!(
            sweep.optimal_vs_average_at(low) > 3.0,
            "headroom {}",
            sweep.optimal_vs_average_at(low)
        );
        for n in 0..sweep.task_counts.len() {
            assert!(sweep.optimal_vs_average_at(n) > 1.5);
        }
    }

    #[test]
    fn index_near_finds_decades() {
        let sweep = small_sweep(&Task::ai_5_kernels());
        let idx = sweep.index_near(1e6);
        assert!((sweep.task_counts[idx].log10() - 6.0).abs() < 0.3);
    }

    #[test]
    fn resilient_matches_strict_on_clean_space() {
        let configs = design_space();
        let task = Task::ai_5_kernels();
        let strict = evaluate_space(&configs, &task, &EmbodiedModel::default()).unwrap();
        let resilient = evaluate_space_resilient(&configs, &task, &EmbodiedModel::default());
        assert!(!resilient.degraded());
        assert!(resilient.failures.is_empty());
        assert_eq!(resilient.points, strict);
    }

    #[test]
    fn resilient_quarantines_poisoned_config_and_keeps_sweeping() {
        use cordoba_accel::config::MemoryIntegration;
        use cordoba_accel::params::TechTuning;
        use cordoba_carbon::units::Bytes;

        let mut configs = design_space();
        let healthy = configs.len();
        let mut tuning = TechTuning::n7();
        tuning.mac_unit_area_mm2 = f64::NAN;
        configs.insert(
            healthy / 2,
            AcceleratorConfig::with_tuning(
                "poison",
                16,
                Bytes::from_mebibytes(8.0),
                MemoryIntegration::OnDie,
                tuning,
            )
            .unwrap(),
        );

        let task = Task::ai_5_kernels();
        // Strict evaluation aborts the whole sweep...
        assert!(evaluate_space(&configs, &task, &EmbodiedModel::default()).is_err());
        // ...resilient evaluation quarantines the one bad config.
        let result = evaluate_space_resilient(&configs, &task, &EmbodiedModel::default());
        assert!(result.degraded());
        assert_eq!(result.points.len(), healthy);
        assert_eq!(result.failures.len(), 1);
        assert_eq!(result.failures[0].name, "poison");
        assert!(result.failures[0].to_string().contains("poison"));
        for p in &result.points {
            assert!(p.delay.is_finite() && p.energy.is_finite());
        }
    }

    #[test]
    fn sweep_validation() {
        let cfg = config_by_name("a1").unwrap();
        let p = accel_design_point(&cfg, &Task::ai_5_kernels(), &EmbodiedModel::default()).unwrap();
        assert!(OpTimeSweep::new(vec![], log_sweep(0, 1, 1), grids::US_AVERAGE).is_err());
        assert!(OpTimeSweep::new(vec![p.clone()], vec![], grids::US_AVERAGE).is_err());
        assert!(OpTimeSweep::new(vec![p], vec![-1.0], grids::US_AVERAGE).is_err());
    }
}
