//! Lagrange-multiplier elimination under unknown `CI_use(t)` (§IV-B).
//!
//! When the use-phase carbon intensity is unknown or time-varying, the tCDP
//! objective `C_emb·D + (∫CI(t)P(t)dt)·D` cannot be evaluated — but it can
//! be recast as `C_emb·D + β·E·D` for some unknown `β ≥ 0` (eq. IV.9).
//! Optimizing over all `β` yields the support set `X*`; every design
//! outside `X*` is guaranteed sub-optimal for every possible `CI_use(t)`
//! and can be eliminated.

use crate::metrics::DesignPoint;
use crate::pareto::{lower_hull_indices, pareto_indices, pareto_indices_kd, Point2, PointK};
use cordoba_carbon::embodied::EmbodiedBreakdown;
use cordoba_carbon::units::CarbonIntensity;
use cordoba_carbon::CarbonError;
use cordoba_obs::{Counter, Event};
use cordoba_par::Supervisor;
use serde::{Deserialize, Serialize};

/// Total argmin evaluations spent across all β-sweep solves.
static BETA_EVALUATIONS: Counter = Counter::new("core/beta_evaluations");

/// The two Fig. 12 objectives for a design point.
#[must_use]
pub fn objectives(point: &DesignPoint) -> Point2 {
    Point2::new(
        point.name.clone(),
        point.embodied_delay().value(),
        point.energy_delay().value(),
    )
}

/// Result of the β-sweep elimination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaSweep {
    /// Objective-space points, in candidate order.
    pub points: Vec<Point2>,
    /// Indices of candidates on the Pareto front of
    /// (`C_emb·D`, `E·D`) — the paper's "Pareto-optimal curve".
    pub pareto: Vec<usize>,
    /// Indices of candidates in the support set `X*` (lower convex hull):
    /// designs that are optimal for *some* `β ∈ [0, ∞)`.
    pub support: Vec<usize>,
}

impl BetaSweep {
    /// Runs the sweep over `candidates`.
    #[must_use]
    pub fn run(candidates: &[DesignPoint]) -> Self {
        let points: Vec<Point2> = candidates.iter().map(objectives).collect();
        let pareto = pareto_indices(&points);
        let support = lower_hull_indices(&points);
        Self {
            points,
            pareto,
            support,
        }
    }

    /// Names of the designs that survive (cannot be eliminated) under the
    /// Pareto criterion.
    #[must_use]
    pub fn surviving_names(&self) -> Vec<&str> {
        self.pareto
            .iter()
            .map(|&i| self.points[i].name.as_str())
            .collect()
    }

    /// Names of the designs eliminated under the Pareto criterion —
    /// guaranteed not tCDP-optimal for any `CI_use(t)`.
    #[must_use]
    pub fn eliminated_names(&self) -> Vec<&str> {
        (0..self.points.len())
            .filter(|i| !self.pareto.contains(i))
            .map(|i| self.points[i].name.as_str())
            .collect()
    }

    /// Fraction of the candidate set eliminated.
    #[must_use]
    pub fn elimination_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        1.0 - self.pareto.len() as f64 / self.points.len() as f64
    }

    /// The design index minimizing `C_emb·D + β·E·D` for a concrete β.
    ///
    /// Returns `None` for an empty candidate set.
    #[must_use]
    pub fn optimal_for_beta(&self, beta: f64) -> Option<usize> {
        (0..self.points.len()).min_by(|&a, &b| {
            let fa = self.points[a].x + beta * self.points[a].y;
            let fb = self.points[b].x + beta * self.points[b].y;
            fa.total_cmp(&fb)
        })
    }

    /// Locates the β values where the tCDP argmin changes hands over
    /// `[beta_lo, beta_hi]`, by budgeted interval bisection.
    ///
    /// Each objective `C_emb·D + β·E·D` is linear in β, so the argmin
    /// follows the lower envelope of lines and each design wins one
    /// contiguous β interval; an interval whose endpoints agree therefore
    /// contains no transition and is discarded, while a disagreeing
    /// interval is bisected until narrower than `tol`. Every argmin
    /// evaluation consumes one unit of `budget`; when the budget runs out
    /// the solver stops and reports the transitions found so far as
    /// [`BetaSolve::NotConverged`] instead of iterating silently.
    ///
    /// Refinement proceeds in waves (all still-disputed intervals bisect
    /// together) and the midpoint argmins of one wave are evaluated in
    /// parallel. Budget truncation is left-to-right within a wave, so the
    /// outcome — transitions, evaluation count, convergence — is identical
    /// at every thread count.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty candidate set, non-finite or negative
    /// `beta_lo`, `beta_hi <= beta_lo`, or a non-positive `tol`.
    pub fn solve_transitions(
        &self,
        beta_lo: f64,
        beta_hi: f64,
        tol: f64,
        budget: usize,
    ) -> Result<BetaSolve, CarbonError> {
        self.solve_transitions_with_threads(
            beta_lo,
            beta_hi,
            tol,
            budget,
            cordoba_par::effective_threads(),
        )
    }

    /// [`BetaSweep::solve_transitions`] with an explicit worker-thread
    /// count (1 = fully sequential). Results are identical at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty candidate set, non-finite or negative
    /// `beta_lo`, `beta_hi <= beta_lo`, or a non-positive `tol`.
    pub fn solve_transitions_with_threads(
        &self,
        beta_lo: f64,
        beta_hi: f64,
        tol: f64,
        budget: usize,
        threads: usize,
    ) -> Result<BetaSolve, CarbonError> {
        self.solve_inner(beta_lo, beta_hi, tol, budget, threads, None)
    }

    /// [`BetaSweep::solve_transitions`] under a [`Supervisor`]: the solver
    /// checks for cancellation or deadline exhaustion at every wave
    /// boundary and, when stopped, returns the transitions found so far as
    /// [`BetaSolve::NotConverged`] — exactly the shape budget exhaustion
    /// produces, so callers need no new handling. Each argmin evaluation
    /// counts one unit of supervised progress.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty candidate set, non-finite or negative
    /// `beta_lo`, `beta_hi <= beta_lo`, or a non-positive `tol`.
    pub fn solve_transitions_supervised(
        &self,
        beta_lo: f64,
        beta_hi: f64,
        tol: f64,
        budget: usize,
        sup: &Supervisor,
    ) -> Result<BetaSolve, CarbonError> {
        self.solve_transitions_supervised_with_threads(
            beta_lo,
            beta_hi,
            tol,
            budget,
            sup,
            cordoba_par::effective_threads(),
        )
    }

    /// [`BetaSweep::solve_transitions_supervised`] with an explicit
    /// worker-thread count (1 = fully sequential). Results are identical at
    /// every thread count for a deterministic supervisor (unbounded or
    /// count-tripped); a wall-clock deadline stops at a
    /// hardware-dependent wave, but always on a wave boundary.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty candidate set, non-finite or negative
    /// `beta_lo`, `beta_hi <= beta_lo`, or a non-positive `tol`.
    pub fn solve_transitions_supervised_with_threads(
        &self,
        beta_lo: f64,
        beta_hi: f64,
        tol: f64,
        budget: usize,
        sup: &Supervisor,
        threads: usize,
    ) -> Result<BetaSolve, CarbonError> {
        self.solve_inner(beta_lo, beta_hi, tol, budget, threads, Some(sup))
    }

    fn solve_inner(
        &self,
        beta_lo: f64,
        beta_hi: f64,
        tol: f64,
        budget: usize,
        threads: usize,
        sup: Option<&Supervisor>,
    ) -> Result<BetaSolve, CarbonError> {
        let _span = cordoba_obs::span_with(
            "core/beta_solve",
            "candidates",
            u64::try_from(self.points.len()).unwrap_or(u64::MAX),
        );
        if self.points.is_empty() {
            return Err(CarbonError::Empty {
                what: "beta-sweep candidates",
            });
        }
        CarbonError::require_in_range("beta_lo", beta_lo, 0.0, f64::MAX)?;
        CarbonError::require_finite("beta_hi", beta_hi)?;
        if beta_hi <= beta_lo {
            return Err(CarbonError::out_of_range(
                "beta_hi",
                beta_hi,
                beta_lo,
                f64::MAX,
            ));
        }
        CarbonError::require_positive("tol", tol)?;

        let mut transitions: Vec<BetaTransition> = Vec::new();
        // The argmin exists because `points` is non-empty (checked above),
        // so the fallback index is never used.
        let argmin = |beta: f64| self.optimal_for_beta(beta).unwrap_or(0);

        let not_converged = |transitions: Vec<BetaTransition>, evaluations: usize| {
            BETA_EVALUATIONS.add(u64::try_from(evaluations).unwrap_or(u64::MAX));
            cordoba_obs::record(&Event::BetaNotConverged {
                evaluations: u64::try_from(evaluations).unwrap_or(u64::MAX),
            });
            Ok(BetaSolve::NotConverged {
                best_so_far: transitions,
                evaluations,
            })
        };

        if budget < 2 {
            // The old sequential solver burned its whole budget on the
            // endpoint argmins before giving up; preserve that count.
            return not_converged(transitions, budget.min(1));
        }
        // Supervision: a stop observed at a wave boundary ends the solve
        // with the transitions found so far, shaped exactly like budget
        // exhaustion.
        let stopped = |sup: Option<&Supervisor>| {
            sup.and_then(|s| s.should_stop().map(|reason| s.record_stop(reason)))
        };
        if stopped(sup).is_some() {
            return not_converged(transitions, 0);
        }
        let lo_arg = argmin(beta_lo);
        let hi_arg = argmin(beta_hi);
        let mut evaluations = 2usize;
        if let Some(s) = sup {
            s.note_completed(2);
        }

        // Disputed intervals of the current wave, ascending in β.
        let mut pending = vec![(beta_lo, lo_arg, beta_hi, hi_arg)];
        while !pending.is_empty() {
            if stopped(sup).is_some() {
                transitions.sort_by(|a, b| a.beta.total_cmp(&b.beta));
                return not_converged(transitions, evaluations);
            }
            let mut bisect: Vec<(f64, usize, f64, usize)> = Vec::new();
            for (lo, lo_arg, hi, hi_arg) in pending {
                if lo_arg == hi_arg {
                    continue;
                }
                if hi - lo <= tol {
                    transitions.push(BetaTransition {
                        beta: f64::midpoint(lo, hi),
                        from_index: lo_arg,
                        to_index: hi_arg,
                    });
                    continue;
                }
                bisect.push((lo, lo_arg, hi, hi_arg));
            }
            if bisect.is_empty() {
                break;
            }
            // Left-to-right budget truncation: only the first `k` intervals
            // of this wave get their midpoint evaluated.
            let k = bisect.len().min(budget - evaluations);
            let mids: Vec<f64> = bisect[..k]
                .iter()
                .map(|&(lo, _, hi, _)| f64::midpoint(lo, hi))
                .collect();
            let mid_args = cordoba_par::par_map_with(&mids, threads, |&beta| argmin(beta));
            evaluations += k;
            if let Some(s) = sup {
                s.note_completed(u64::try_from(k).unwrap_or(u64::MAX));
            }
            if k < bisect.len() {
                transitions.sort_by(|a, b| a.beta.total_cmp(&b.beta));
                return not_converged(transitions, evaluations);
            }
            pending = Vec::with_capacity(2 * k);
            for ((lo, lo_arg, hi, hi_arg), (mid, mid_arg)) in
                bisect.into_iter().zip(mids.into_iter().zip(mid_args))
            {
                pending.push((lo, lo_arg, mid, mid_arg));
                pending.push((mid, mid_arg, hi, hi_arg));
            }
        }

        transitions.sort_by(|a, b| a.beta.total_cmp(&b.beta));
        BETA_EVALUATIONS.add(u64::try_from(evaluations).unwrap_or(u64::MAX));
        Ok(BetaSolve::Converged {
            transitions,
            evaluations,
        })
    }
}

/// One change of the tCDP-optimal design along the β axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaTransition {
    /// The β at which the optimum changes hands (to within the solver
    /// tolerance).
    pub beta: f64,
    /// Candidate index optimal just below `beta`.
    pub from_index: usize,
    /// Candidate index optimal just above `beta`.
    pub to_index: usize,
}

/// Outcome of [`BetaSweep::solve_transitions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BetaSolve {
    /// Every disputed interval was refined below tolerance.
    Converged {
        /// The located transitions, ascending in β.
        transitions: Vec<BetaTransition>,
        /// Argmin evaluations spent.
        evaluations: usize,
    },
    /// The evaluation budget ran out first.
    NotConverged {
        /// Transitions already located when the budget ran out.
        best_so_far: Vec<BetaTransition>,
        /// Argmin evaluations spent (equals the budget).
        evaluations: usize,
    },
}

impl BetaSolve {
    /// The located transitions, complete or partial.
    #[must_use]
    pub fn transitions(&self) -> &[BetaTransition] {
        match self {
            Self::Converged { transitions, .. } => transitions,
            Self::NotConverged { best_so_far, .. } => best_so_far,
        }
    }

    /// `true` when the solver finished within budget.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self, Self::Converged { .. })
    }
}

/// Two-factor elimination when **both** `CI_use(t)` and `CI_fab` are
/// unknown (the extension §IV-B explicitly suggests).
///
/// Each candidate's tCDP decomposes as
/// `tCDP = materials·D + CI_fab·(fab_energy·D) + β_use·(E·D)` with two
/// unknown non-negative multipliers, so any design dominated in the
/// three-objective space (`materials·D`, `fab_energy·D`, `E·D`) can never
/// be tCDP-optimal for any grid pair and is eliminated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoFactorSweep {
    /// Objective-space points, in candidate order:
    /// `[materials·D (g·s), fab_energy·D (kWh·s), E·D (J·s)]`.
    pub points: Vec<PointK>,
    /// Indices of candidates on the 3-D Pareto front.
    pub pareto: Vec<usize>,
}

impl TwoFactorSweep {
    /// Runs the sweep over `(design, embodied breakdown)` candidates.
    ///
    /// The design points' `embodied` field is ignored; the breakdown
    /// supplies the split version.
    #[must_use]
    pub fn run(candidates: &[(DesignPoint, EmbodiedBreakdown)]) -> Self {
        let points: Vec<PointK> = candidates
            .iter()
            .map(|(p, split)| {
                let d = p.delay.value();
                PointK::new(
                    p.name.clone(),
                    vec![
                        split.materials.value() * d,
                        split.fab_energy.value() * d,
                        p.energy.value() * d,
                    ],
                )
            })
            .collect();
        let pareto = pareto_indices_kd(&points);
        Self { points, pareto }
    }

    /// Names of designs that survive for some `(CI_fab, CI_use)` pair.
    #[must_use]
    pub fn surviving_names(&self) -> Vec<&str> {
        self.pareto
            .iter()
            .map(|&i| self.points[i].name.as_str())
            .collect()
    }

    /// Names of designs eliminated for every `(CI_fab, CI_use)` pair.
    #[must_use]
    pub fn eliminated_names(&self) -> Vec<&str> {
        (0..self.points.len())
            .filter(|i| !self.pareto.contains(i))
            .map(|i| self.points[i].name.as_str())
            .collect()
    }

    /// Fraction of the candidate set eliminated.
    #[must_use]
    pub fn elimination_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        1.0 - self.pareto.len() as f64 / self.points.len() as f64
    }

    /// The tCDP-optimal index for concrete intensities:
    /// minimizes `materials·D + ci_fab·fab_energy·D + β_use·E·D`.
    ///
    /// Returns `None` for an empty candidate set.
    #[must_use]
    pub fn optimal_for(&self, ci_fab: CarbonIntensity, beta_use: f64) -> Option<usize> {
        (0..self.points.len()).min_by(|&a, &b| {
            let eval = |i: usize| {
                let o = &self.points[i].objectives;
                o[0] + ci_fab.value() * o[1] + beta_use * o[2]
            };
            eval(a).total_cmp(&eval(b))
        })
    }
}

/// The concrete β that a constant `CI_use` and operational task count
/// induce: `tCDP = C_emb·D + (N · CI · e) · D` where `E·D` carries the
/// per-task energy, so `β = N · CI` in gCO2e per kWh-task units.
///
/// With this β, [`BetaSweep::optimal_for_beta`] reproduces the exact
/// tCDP argmin — the bridge between the unknown-CI analysis and a
/// committed scenario.
#[must_use]
pub fn beta_for_context(ctx: &crate::metrics::OperationalContext) -> f64 {
    ctx.tasks * ctx.ci_use.value() / cordoba_carbon::units::JOULES_PER_KILOWATT_HOUR
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{argmin, MetricKind, OperationalContext};
    use cordoba_carbon::units::{GramsCo2e, Joules, Seconds, SquareCentimeters};

    fn point(name: &str, d: f64, e: f64, emb: f64) -> DesignPoint {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(1.0),
        )
        .unwrap()
    }

    fn candidates() -> Vec<DesignPoint> {
        vec![
            point("frugal", 2.0, 1.0, 100.0),   // low E*D, high Cemb*D? 200/2
            point("balanced", 1.0, 3.0, 150.0), // 150 / 3
            point("fast", 0.5, 10.0, 400.0),    // 200 / 5
            point("dominated", 2.0, 4.0, 300.0),
        ]
    }

    #[test]
    fn dominated_design_is_eliminated() {
        let sweep = BetaSweep::run(&candidates());
        assert!(sweep.eliminated_names().contains(&"dominated"));
        assert!(!sweep.surviving_names().contains(&"dominated"));
        assert!(sweep.elimination_fraction() > 0.0);
    }

    #[test]
    fn survivors_cover_every_tcdp_argmin() {
        // For any constant CI_use and any task count, the tCDP-optimal
        // design must be in the Pareto survivors (§IV-B's theorem).
        let cands = candidates();
        let sweep = BetaSweep::run(&cands);
        let survivors = sweep.surviving_names();
        for &tasks in &[1.0, 1e2, 1e4, 1e6, 1e8] {
            for ci in [10.0, 380.0, 820.0] {
                let ctx =
                    OperationalContext::new(tasks, cordoba_carbon::units::CarbonIntensity::new(ci))
                        .unwrap();
                let best = argmin(&cands, MetricKind::Tcdp, &ctx).unwrap();
                assert!(
                    survivors.contains(&best.name.as_str()),
                    "tCDP argmin {} (N={tasks}, CI={ci}) not in survivors {survivors:?}",
                    best.name
                );
            }
        }
    }

    #[test]
    fn beta_for_context_reproduces_tcdp_argmin() {
        let cands = candidates();
        let sweep = BetaSweep::run(&cands);
        for &tasks in &[1.0, 1e3, 1e6, 1e9] {
            let ctx = OperationalContext::us_grid(tasks);
            let beta = beta_for_context(&ctx);
            let via_beta = sweep.optimal_for_beta(beta).unwrap();
            let direct = argmin(&cands, MetricKind::Tcdp, &ctx).unwrap();
            assert_eq!(cands[via_beta].name, direct.name, "N = {tasks}");
        }
    }

    #[test]
    fn beta_zero_minimizes_embodied_delay() {
        let cands = candidates();
        let sweep = BetaSweep::run(&cands);
        let idx = sweep.optimal_for_beta(0.0).unwrap();
        let min_ed = cands
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.embodied_delay()
                    .value()
                    .total_cmp(&b.1.embodied_delay().value())
            })
            .unwrap()
            .0;
        assert_eq!(idx, min_ed);
    }

    #[test]
    fn huge_beta_minimizes_energy_delay() {
        let cands = candidates();
        let sweep = BetaSweep::run(&cands);
        let idx = sweep.optimal_for_beta(1e18).unwrap();
        let min_ed = cands
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.edp().value().total_cmp(&b.1.edp().value()))
            .unwrap()
            .0;
        assert_eq!(idx, min_ed);
    }

    #[test]
    fn solver_locates_the_balanced_to_frugal_transition() {
        // Lines x + βy for candidates(): "balanced" (150 + 3β) wins at
        // β = 0 and hands over to "frugal" (200 + 2β) exactly at β = 50;
        // "fast" and "dominated" never win.
        let cands = candidates();
        let sweep = BetaSweep::run(&cands);
        let solve = sweep.solve_transitions(0.0, 1e4, 1e-6, 10_000).unwrap();
        assert!(solve.converged());
        let transitions = solve.transitions();
        assert_eq!(transitions.len(), 1);
        let t = transitions[0];
        assert!((t.beta - 50.0).abs() < 1e-3, "beta {}", t.beta);
        assert_eq!(cands[t.from_index].name, "balanced");
        assert_eq!(cands[t.to_index].name, "frugal");
        // Transition endpoints agree with direct argmin on either side.
        assert_eq!(sweep.optimal_for_beta(t.beta - 0.01), Some(t.from_index));
        assert_eq!(sweep.optimal_for_beta(t.beta + 0.01), Some(t.to_index));
    }

    #[test]
    fn solver_respects_its_budget() {
        let sweep = BetaSweep::run(&candidates());
        let solve = sweep.solve_transitions(0.0, 1e4, 1e-9, 3).unwrap();
        assert!(!solve.converged());
        match solve {
            BetaSolve::NotConverged { evaluations, .. } => assert!(evaluations <= 3),
            BetaSolve::Converged { .. } => panic!("expected NotConverged"),
        }
        // Zero budget still yields a structured result, not a hang.
        let none = sweep.solve_transitions(0.0, 1.0, 0.5, 0).unwrap();
        assert!(!none.converged());
        assert!(none.transitions().is_empty());
    }

    #[test]
    fn supervised_solver_matches_unsupervised_when_unbounded() {
        let sweep = BetaSweep::run(&candidates());
        let direct = sweep
            .solve_transitions_with_threads(0.0, 1e4, 1e-6, 10_000, 2)
            .unwrap();
        let sup = Supervisor::unbounded();
        let supervised = sweep
            .solve_transitions_supervised_with_threads(0.0, 1e4, 1e-6, 10_000, &sup, 2)
            .unwrap();
        assert_eq!(supervised, direct);
        assert!(sup.progress().completed >= 2);
    }

    #[test]
    fn supervised_solver_stops_at_wave_boundaries() {
        let sweep = BetaSweep::run(&candidates());
        // Cancelled before any evaluation: structured NotConverged, zero
        // evaluations.
        let sup = Supervisor::unbounded();
        sup.cancel();
        let stopped = sweep
            .solve_transitions_supervised_with_threads(0.0, 1e4, 1e-6, 10_000, &sup, 1)
            .unwrap();
        assert!(!stopped.converged());
        assert!(stopped.transitions().is_empty());
        // Tripped after the endpoint argmins: stops on the first wave
        // boundary with the evaluations spent so far.
        let trip = Supervisor::tripping_after(2);
        let partial = sweep
            .solve_transitions_supervised_with_threads(0.0, 1e4, 1e-6, 10_000, &trip, 1)
            .unwrap();
        match partial {
            BetaSolve::NotConverged { evaluations, .. } => assert_eq!(evaluations, 2),
            BetaSolve::Converged { .. } => panic!("expected NotConverged"),
        }
    }

    #[test]
    fn solver_validates_parameters() {
        let sweep = BetaSweep::run(&candidates());
        assert!(sweep.solve_transitions(-1.0, 1.0, 0.1, 100).is_err());
        assert!(sweep.solve_transitions(1.0, 1.0, 0.1, 100).is_err());
        assert!(sweep.solve_transitions(0.0, f64::NAN, 0.1, 100).is_err());
        assert!(sweep.solve_transitions(0.0, 1.0, 0.0, 100).is_err());
        let empty = BetaSweep::run(&[]);
        assert!(empty.solve_transitions(0.0, 1.0, 0.1, 100).is_err());
    }

    #[test]
    fn support_is_subset_of_pareto() {
        let sweep = BetaSweep::run(&candidates());
        for i in &sweep.support {
            assert!(sweep.pareto.contains(i));
        }
    }

    #[test]
    fn empty_candidates() {
        let sweep = BetaSweep::run(&[]);
        assert_eq!(sweep.elimination_fraction(), 0.0);
        assert!(sweep.optimal_for_beta(1.0).is_none());
        assert!(sweep.surviving_names().is_empty());
    }

    fn two_factor_candidates() -> Vec<(DesignPoint, EmbodiedBreakdown)> {
        use cordoba_carbon::units::KilowattHours;
        let split = |fab: f64, mat: f64| EmbodiedBreakdown {
            fab_energy: KilowattHours::new(fab),
            materials: GramsCo2e::new(mat),
        };
        vec![
            // materials-lean but fab-energy heavy
            (point("euv", 1.0, 2.0, 0.0), split(5.0, 50.0)),
            // fab-energy lean but materials heavy
            (point("duv", 1.2, 2.0, 0.0), split(1.0, 200.0)),
            // energy-lean
            (point("eco", 2.0, 0.5, 0.0), split(3.0, 120.0)),
            // dominated everywhere
            (point("waste", 2.0, 3.0, 0.0), split(6.0, 400.0)),
        ]
    }

    #[test]
    fn two_factor_sweep_eliminates_dominated_designs() {
        let cands = two_factor_candidates();
        let sweep = TwoFactorSweep::run(&cands);
        assert!(sweep.eliminated_names().contains(&"waste"));
        assert!(!sweep.surviving_names().contains(&"waste"));
        assert!(sweep.elimination_fraction() > 0.0);
    }

    #[test]
    fn two_factor_survivors_cover_every_intensity_pair() {
        let cands = two_factor_candidates();
        let sweep = TwoFactorSweep::run(&cands);
        let survivors = sweep.surviving_names();
        for ci_fab in [0.0, 50.0, 400.0, 820.0, 2000.0] {
            for beta_use in [0.0, 1.0, 100.0, 1e4] {
                let idx = sweep
                    .optimal_for(CarbonIntensity::new(ci_fab), beta_use)
                    .unwrap();
                assert!(
                    survivors.contains(&sweep.points[idx].name.as_str()),
                    "winner at (ci_fab={ci_fab}, beta={beta_use}) not in survivors"
                );
            }
        }
    }

    #[test]
    fn two_factor_extremes_pick_the_expected_specialists() {
        let cands = two_factor_candidates();
        let sweep = TwoFactorSweep::run(&cands);
        // ci_fab huge, beta 0: minimize fab_energy*D -> "duv".
        let idx = sweep.optimal_for(CarbonIntensity::new(1e12), 0.0).unwrap();
        assert_eq!(sweep.points[idx].name, "duv");
        // beta huge: minimize E*D -> "eco".
        let idx = sweep.optimal_for(CarbonIntensity::new(0.0), 1e12).unwrap();
        assert_eq!(sweep.points[idx].name, "eco");
    }

    #[test]
    fn two_factor_empty() {
        let sweep = TwoFactorSweep::run(&[]);
        assert_eq!(sweep.elimination_fraction(), 0.0);
        assert!(sweep.optimal_for(CarbonIntensity::new(1.0), 1.0).is_none());
    }
}
