//! Small statistics helpers for the evaluation analyses (Fig. 6
//! correlations, Fig. 8 averages).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either has zero variance.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    // cordoba-lint: allow(float-eq) — exact-zero variance sentinel (None below)
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Pearson correlation of the (natural) logs — appropriate for quantities
/// spanning decades, like EDP and tCDP over a design space.
///
/// Returns `None` on length mismatch, short input, non-positive values, or
/// zero variance.
#[must_use]
pub fn log_pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.iter().chain(ys).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    pearson(&lx, &ly)
}

/// Spearman rank correlation.
///
/// Returns `None` on length mismatch or short input.
#[must_use]
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rank = |vs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vs.len()).collect();
        idx.sort_by(|&a, &b| vs[a].total_cmp(&vs[b]));
        let mut ranks = vec![0.0; vs.len()];
        let mut i = 0;
        while i < idx.len() {
            let mut j = i;
            while j + 1 < idx.len() && vs[idx[j + 1]] == vs[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    pearson(&rank(xs), &rank(ys))
}

/// Geometric mean of a positive sample.
///
/// Returns `None` for empty input or any non-positive value.
#[must_use]
pub fn geometric_mean(vs: &[f64]) -> Option<f64> {
    if vs.is_empty() || vs.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let sum: f64 = vs.iter().map(|v| v.ln()).sum();
    Some((sum / vs.len() as f64).exp())
}

/// Arithmetic mean; `None` for empty input.
#[must_use]
pub fn mean(vs: &[f64]) -> Option<f64> {
    if vs.is_empty() {
        None
    } else {
        Some(vs.iter().sum::<f64>() / vs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn log_pearson_handles_power_laws() {
        // y = x^3 is perfectly log-linear.
        let xs: Vec<f64> = (1..20).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        assert!((log_pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(log_pearson(&[1.0, -2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn spearman_is_rank_based() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 8.0, 27.0, 64.0]; // monotone but nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Ties get averaged ranks.
        let tied = [1.0, 1.0, 2.0, 3.0];
        assert!(spearman(&tied, &xs).is_some());
    }

    #[test]
    fn means() {
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-9);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_none());
    }
}
