//! Carbon attribution ledger: *where* a sweep's tCDP comes from.
//!
//! CORDOBA's claim is that tCDP makes carbon an *accountable* optimization
//! metric — so the reproduction should be able to say not just "this sweep
//! totals X gCO2e·s" but how much of that is embodied manufacturing carbon
//! versus operational (use-phase) carbon, per candidate design and per
//! operational-time point, and how much of the design space was lost to
//! quarantine along the way. [`AttributionReport`] is that ledger.
//!
//! ## The bit-exactness invariant
//!
//! The ledger is only trustworthy if it reconciles exactly with what the
//! sweep reported. Two properties are maintained and verified:
//!
//! 1. Every per-cell tCDP in the report is copied **verbatim** from the
//!    sweep's matrix ([`OpTimeSweep::tcdp_matrix`]) — the ledger never
//!    recomputes the number it is attributing.
//! 2. The decomposition recomposes to the same bits:
//!    `(embodied + operational) · delay` evaluated in plain `f64` is the
//!    exact operation chain [`DesignPoint::tcdp`] uses (the unit newtypes
//!    add and multiply their raw `f64`s in the same order), so
//!    [`AttributionReport::check_against`] can require bitwise equality,
//!    not approximate agreement.
//!
//! Because the sweep matrix itself is bit-identical at every worker-thread
//! count, so is the report (`tests/prop_obs_determinism.rs` pins both).

use crate::dse::{EvalFailure, OpTimeSweep};
use crate::lagrange::BetaSweep;
use crate::metrics::OperationalContext;
use cordoba_carbon::error::CarbonError;

/// Embodied/operational decomposition for one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigAttribution {
    /// Design name.
    pub name: String,
    /// Embodied carbon, gCO2e (task-count independent).
    pub embodied: f64,
    /// Per-task delay, seconds.
    pub delay: f64,
    /// Operational carbon at each sweep task count, gCO2e.
    pub operational: Vec<f64>,
    /// tCDP at each sweep task count, gCO2e·s — copied verbatim from the
    /// sweep matrix, never recomputed.
    pub tcdp: Vec<f64>,
}

impl ConfigAttribution {
    /// Fraction of lifetime carbon that is embodied at sweep index `n`
    /// (`NaN`-free: returns 0 for an all-zero decomposition).
    #[must_use]
    pub fn embodied_share(&self, n: usize) -> f64 {
        let operational = self.operational.get(n).copied().unwrap_or(0.0);
        let total = self.embodied + operational;
        if total > 0.0 {
            self.embodied / total
        } else {
            0.0
        }
    }
}

/// Space-wide totals at one sweep task count.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskCountTotals {
    /// The task count (operational time in task executions).
    pub tasks: f64,
    /// `Σ_p embodied_p · delay_p`, gCO2e·s — the embodied share of the
    /// summed tCDP (up to f64 distribution error; reported for reading,
    /// not reconciliation).
    pub embodied_delay: f64,
    /// `Σ_p operational_p(n) · delay_p`, gCO2e·s.
    pub operational_delay: f64,
    /// `Σ_p tcdp[n][p]` in point-index order over the verbatim sweep
    /// values — deterministic for a given sweep.
    pub tcdp: f64,
}

/// A design excluded from the sweep by quarantine — carbon the ledger
/// cannot attribute because the candidate never evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLoss {
    /// Design name.
    pub name: String,
    /// Rendered evaluation error.
    pub error: String,
}

/// β-sweep elimination summary riding along with the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BetaAttribution {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Candidates on the (`C_emb·D`, `E·D`) Pareto front.
    pub pareto: usize,
    /// Candidates in the support set `X*` (lower convex hull).
    pub support: usize,
}

/// The carbon attribution ledger for one operational-time sweep: per-config
/// embodied/operational decomposition, per-task-count totals, quarantined
/// losses, and (optionally) the β-elimination summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Use-phase carbon intensity, gCO2e/kWh.
    pub ci_use: f64,
    /// The sweep's operational-time axis.
    pub task_counts: Vec<f64>,
    /// Per-design decomposition, in sweep point order.
    pub configs: Vec<ConfigAttribution>,
    /// Space-wide totals, one per task count.
    pub totals: Vec<TaskCountTotals>,
    /// Designs lost to quarantine (empty unless
    /// [`AttributionReport::with_quarantine`] was applied).
    pub quarantined: Vec<QuarantinedLoss>,
    /// β-sweep summary (present after [`AttributionReport::with_beta`]).
    pub beta: Option<BetaAttribution>,
}

impl AttributionReport {
    /// Assembles the ledger for `sweep`. tCDP cells are copied verbatim
    /// from the sweep matrix; the embodied/operational decomposition is
    /// evaluated through the same [`DesignPoint`](crate::metrics::DesignPoint)
    /// methods the sweep used, so [`Self::check_against`] holds by
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns an error if an operational context cannot be constructed
    /// for one of the sweep's task counts (impossible for a sweep built by
    /// [`OpTimeSweep::new`], which validates them).
    pub fn from_sweep(sweep: &OpTimeSweep) -> Result<Self, CarbonError> {
        let _span = cordoba_obs::span("core/attribution_report");
        let contexts: Vec<OperationalContext> = sweep
            .task_counts
            .iter()
            .map(|&n| OperationalContext::new(n, sweep.ci_use))
            .collect::<Result<_, _>>()?;
        let configs: Vec<ConfigAttribution> = sweep
            .points
            .iter()
            .enumerate()
            .map(|(p, point)| ConfigAttribution {
                name: point.name.clone(),
                embodied: point.embodied.value(),
                delay: point.delay.value(),
                operational: contexts
                    .iter()
                    .map(|ctx| point.operational(ctx).value())
                    .collect(),
                tcdp: (0..sweep.task_counts.len())
                    .map(|n| sweep.tcdp_at(n, p))
                    .collect(),
            })
            .collect();
        let totals = sweep
            .task_counts
            .iter()
            .enumerate()
            .map(|(n, &tasks)| TaskCountTotals {
                tasks,
                embodied_delay: configs.iter().map(|c| c.embodied * c.delay).sum(),
                operational_delay: configs.iter().map(|c| c.operational[n] * c.delay).sum(),
                tcdp: sweep.row(n).iter().sum(),
            })
            .collect();
        Ok(Self {
            ci_use: sweep.ci_use.value(),
            task_counts: sweep.task_counts.clone(),
            configs,
            totals,
            quarantined: Vec::new(),
            beta: None,
        })
    }

    /// Attaches the quarantined-evaluation losses from a resilient or
    /// supervised evaluation pass.
    #[must_use]
    pub fn with_quarantine(mut self, failures: &[EvalFailure]) -> Self {
        self.quarantined = failures
            .iter()
            .map(|f| QuarantinedLoss {
                name: f.name.clone(),
                error: f.error.to_string(),
            })
            .collect();
        self
    }

    /// Attaches the β-sweep elimination summary.
    #[must_use]
    pub fn with_beta(mut self, beta: &BetaSweep) -> Self {
        self.beta = Some(BetaAttribution {
            evaluated: beta.points.len(),
            pareto: beta.pareto.len(),
            support: beta.support.len(),
        });
        self
    }

    /// Verifies the ledger against `sweep` **bit-for-bit**: every stored
    /// tCDP cell must equal the sweep matrix, and the stored decomposition
    /// must recompose to it exactly — `(embodied + operational) · delay`
    /// in plain `f64` is the same operation chain
    /// [`DesignPoint::tcdp`](crate::metrics::DesignPoint::tcdp) evaluates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first cell that fails to reconcile.
    pub fn check_against(&self, sweep: &OpTimeSweep) -> Result<(), String> {
        if self.configs.len() != sweep.points.len() {
            return Err(format!(
                "config count {} != sweep point count {}",
                self.configs.len(),
                sweep.points.len()
            ));
        }
        if self.task_counts.len() != sweep.task_counts.len() {
            return Err(format!(
                "task-count axis {} != sweep axis {}",
                self.task_counts.len(),
                sweep.task_counts.len()
            ));
        }
        for (p, config) in self.configs.iter().enumerate() {
            for n in 0..self.task_counts.len() {
                let stored = config.tcdp.get(n).copied().unwrap_or(f64::NAN);
                let swept = sweep.tcdp_at(n, p);
                if stored.to_bits() != swept.to_bits() {
                    return Err(format!(
                        "config `{}` task count {}: ledger tcdp {stored:e} != sweep {swept:e}",
                        config.name, self.task_counts[n]
                    ));
                }
                let operational = config.operational.get(n).copied().unwrap_or(f64::NAN);
                let recomposed = (config.embodied + operational) * config.delay;
                if recomposed.to_bits() != swept.to_bits() {
                    return Err(format!(
                        "config `{}` task count {}: decomposition ({:e} + {operational:e}) * {:e} \
                         = {recomposed:e} does not recompose sweep tcdp {swept:e}",
                        config.name, self.task_counts[n], config.embodied, config.delay
                    ));
                }
            }
        }
        Ok(())
    }

    /// The ledger as a JSON object (hand-rolled; finite `f64`s render in
    /// Rust's shortest round-trip form).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_owned()
            }
        }
        fn num_array(values: &[f64]) -> String {
            let cells: Vec<String> = values.iter().map(|&v| num(v)).collect();
            format!("[{}]", cells.join(","))
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"ci_use\":{},\"task_counts\":{},\"configs\":[",
            num(self.ci_use),
            num_array(&self.task_counts)
        );
        for (i, config) in self.configs.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"embodied\":{},\"delay\":{},\"operational\":{},\"tcdp\":{}}}",
                if i > 0 { "," } else { "" },
                cordoba_obs::chrome::escape_json(&config.name),
                num(config.embodied),
                num(config.delay),
                num_array(&config.operational),
                num_array(&config.tcdp)
            );
        }
        out.push_str("],\"totals\":[");
        for (i, totals) in self.totals.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"tasks\":{},\"embodied_delay\":{},\"operational_delay\":{},\"tcdp\":{}}}",
                if i > 0 { "," } else { "" },
                num(totals.tasks),
                num(totals.embodied_delay),
                num(totals.operational_delay),
                num(totals.tcdp)
            );
        }
        out.push_str("],\"quarantined\":[");
        for (i, loss) in self.quarantined.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"error\":\"{}\"}}",
                if i > 0 { "," } else { "" },
                cordoba_obs::chrome::escape_json(&loss.name),
                cordoba_obs::chrome::escape_json(&loss.error)
            );
        }
        out.push(']');
        if let Some(beta) = self.beta {
            let _ = write!(
                out,
                ",\"beta\":{{\"evaluated\":{},\"pareto\":{},\"support\":{}}}",
                beta.evaluated, beta.pareto, beta.support
            );
        }
        out.push('}');
        out
    }

    /// The ledger as a human-readable table: per-task-count totals with
    /// embodied/operational split, then the per-config decomposition at the
    /// largest task count, then quarantine and β summaries.
    #[must_use]
    pub fn to_table(&self) -> String {
        use crate::report::{fmt_num, Table};
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "attribution: {} configs x {} task counts, CI_use {} gCO2e/kWh",
            self.configs.len(),
            self.task_counts.len(),
            fmt_num(self.ci_use)
        );
        let mut totals = Table::new(vec![
            "tasks".into(),
            "tCDP".into(),
            "embodied*D".into(),
            "operational*D".into(),
            "emb share".into(),
        ]);
        for row in &self.totals {
            let split = row.embodied_delay + row.operational_delay;
            let share = if split > 0.0 {
                row.embodied_delay / split
            } else {
                0.0
            };
            totals.row(vec![
                fmt_num(row.tasks),
                fmt_num(row.tcdp),
                fmt_num(row.embodied_delay),
                fmt_num(row.operational_delay),
                format!("{:.1}%", share * 100.0),
            ]);
        }
        out.push_str(&totals.render());
        if let Some(last) = self.task_counts.len().checked_sub(1) {
            let _ = writeln!(
                out,
                "\nper-config at {} tasks:",
                fmt_num(self.task_counts[last])
            );
            let mut configs = Table::new(vec![
                "config".into(),
                "embodied".into(),
                "operational".into(),
                "delay".into(),
                "tCDP".into(),
                "emb share".into(),
            ]);
            for config in &self.configs {
                configs.row(vec![
                    config.name.clone(),
                    fmt_num(config.embodied),
                    fmt_num(config.operational.get(last).copied().unwrap_or(0.0)),
                    fmt_num(config.delay),
                    fmt_num(config.tcdp.get(last).copied().unwrap_or(0.0)),
                    format!("{:.1}%", config.embodied_share(last) * 100.0),
                ]);
            }
            out.push_str(&configs.render());
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "\nquarantined ({}):", self.quarantined.len());
            for loss in &self.quarantined {
                let _ = writeln!(out, "  {}: {}", loss.name, loss.error);
            }
        }
        if let Some(beta) = self.beta {
            let _ = writeln!(
                out,
                "\nbeta sweep: {} evaluated, {} pareto, {} support",
                beta.evaluated, beta.pareto, beta.support
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::{evaluate_space, log_sweep};
    use cordoba_accel::space::design_space;
    use cordoba_carbon::embodied::EmbodiedModel;
    use cordoba_carbon::intensity::grids;
    use cordoba_workloads::task::Task;

    fn sweep() -> OpTimeSweep {
        let points = evaluate_space(
            &design_space(),
            &Task::xr_5_kernels(),
            &EmbodiedModel::default(),
        )
        .unwrap();
        OpTimeSweep::new(points, log_sweep(4, 8, 2), grids::US_AVERAGE).unwrap()
    }

    #[test]
    fn ledger_reconciles_bit_for_bit() {
        let sweep = sweep();
        let report = AttributionReport::from_sweep(&sweep).unwrap();
        report.check_against(&sweep).unwrap();
        assert_eq!(report.configs.len(), sweep.points.len());
        assert_eq!(report.task_counts, sweep.task_counts);
        // Totals are the index-order sum of the verbatim rows.
        for (n, totals) in report.totals.iter().enumerate() {
            let expected: f64 = sweep.row(n).iter().sum();
            assert_eq!(totals.tcdp.to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn check_rejects_a_tampered_ledger() {
        let sweep = sweep();
        let mut report = AttributionReport::from_sweep(&sweep).unwrap();
        report.configs[0].tcdp[0] *= 1.0 + 1e-12;
        let err = report.check_against(&sweep).unwrap_err();
        assert!(err.contains("ledger tcdp"), "{err}");
        let mut report = AttributionReport::from_sweep(&sweep).unwrap();
        report.configs[3].embodied += 1e-9;
        let err = report.check_against(&sweep).unwrap_err();
        assert!(err.contains("recompose"), "{err}");
    }

    #[test]
    fn embodied_share_moves_with_operational_time() {
        let report = AttributionReport::from_sweep(&sweep()).unwrap();
        let config = &report.configs[0];
        let first = config.embodied_share(0);
        let last = config.embodied_share(report.task_counts.len() - 1);
        assert!((0.0..=1.0).contains(&first));
        // More task executions -> more operational carbon -> smaller
        // embodied share.
        assert!(last <= first, "{last} > {first}");
    }

    #[test]
    fn json_and_table_render_the_ledger() {
        let sweep = sweep();
        let report = AttributionReport::from_sweep(&sweep)
            .unwrap()
            .with_quarantine(&[EvalFailure {
                name: "broken".into(),
                error: crate::error::CoreError::Carbon(cordoba_carbon::error::CarbonError::Empty {
                    what: "test",
                }),
            }])
            .with_beta(&BetaSweep::run(&sweep.points));
        let json = report.to_json();
        let doc = cordoba_obs::json::parse(&json).unwrap();
        assert!(doc.get("ci_use").and_then(|j| j.as_f64()).is_some());
        assert_eq!(
            doc.get("configs").and_then(|j| j.as_array()).unwrap().len(),
            report.configs.len()
        );
        assert_eq!(
            doc.get("quarantined")
                .and_then(|j| j.as_array())
                .unwrap()
                .len(),
            1
        );
        assert!(doc.get("beta").is_some());
        // JSON round-trips the verbatim bits (shortest round-trip form).
        let parsed = doc.get("configs").and_then(|j| j.as_array()).unwrap()[0]
            .get("tcdp")
            .and_then(|j| j.as_array())
            .unwrap()[0]
            .as_f64()
            .unwrap();
        assert_eq!(parsed.to_bits(), report.configs[0].tcdp[0].to_bits());
        let table = report.to_table();
        assert!(table.contains("emb share"));
        assert!(table.contains("quarantined (1)"));
        assert!(table.contains("beta sweep"));
    }
}
