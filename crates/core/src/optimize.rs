//! Constrained carbon-aware optimization (eq. IV.1).
//!
//! `minimize (C_operational + C_embodied) · D` subject to area, QoS
//! (delay), and power constraints — evaluated over an explicit candidate
//! set, which is how CORDOBA's design-space exploration consumes it.

use crate::metrics::{DesignPoint, MetricKind, OperationalContext};
use cordoba_carbon::units::{Seconds, SquareCentimeters, Watts};
use serde::{Deserialize, Serialize};

/// The constraint set of eq. IV.1.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// `Area(x) <= a`.
    pub max_area: Option<SquareCentimeters>,
    /// `QoS(x) >= q`, expressed as a delay ceiling `D(x) <= 1/q`.
    pub max_delay: Option<Seconds>,
    /// `Power(x) <= p`.
    pub max_power: Option<Watts>,
}

impl Constraints {
    /// No constraints.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the area ceiling.
    #[must_use]
    pub fn with_max_area(mut self, area: SquareCentimeters) -> Self {
        self.max_area = Some(area);
        self
    }

    /// Sets the delay (QoS) ceiling.
    #[must_use]
    pub fn with_max_delay(mut self, delay: Seconds) -> Self {
        self.max_delay = Some(delay);
        self
    }

    /// Sets the power ceiling.
    #[must_use]
    pub fn with_max_power(mut self, power: Watts) -> Self {
        self.max_power = Some(power);
        self
    }

    /// `true` when `point` satisfies every constraint.
    #[must_use]
    pub fn admits(&self, point: &DesignPoint) -> bool {
        if let Some(a) = self.max_area {
            if point.area > a {
                return false;
            }
        }
        if let Some(d) = self.max_delay {
            if point.delay > d {
                return false;
            }
        }
        if let Some(p) = self.max_power {
            if point.power() > p {
                return false;
            }
        }
        true
    }
}

/// A carbon-aware optimization problem over a candidate set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationProblem {
    /// The candidate designs.
    pub candidates: Vec<DesignPoint>,
    /// The objective metric (tCDP for carbon efficiency; §III-C shows other
    /// application scenarios legitimately target other metrics).
    pub objective: MetricKind,
    /// The constraint set.
    pub constraints: Constraints,
}

/// The outcome of solving an [`OptimizationProblem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// The winning design.
    pub best: DesignPoint,
    /// Objective value of the winner.
    pub objective_value: f64,
    /// Number of candidates that satisfied the constraints.
    pub feasible_count: usize,
}

impl OptimizationProblem {
    /// Builds a tCDP-minimization problem with no constraints.
    #[must_use]
    pub fn tcdp(candidates: Vec<DesignPoint>) -> Self {
        Self {
            candidates,
            objective: MetricKind::Tcdp,
            constraints: Constraints::none(),
        }
    }

    /// Replaces the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: MetricKind) -> Self {
        self.objective = objective;
        self
    }

    /// Replaces the constraints.
    #[must_use]
    pub fn with_constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// The feasible candidates.
    #[must_use]
    pub fn feasible(&self) -> Vec<&DesignPoint> {
        self.candidates
            .iter()
            .filter(|p| self.constraints.admits(p))
            .collect()
    }

    /// Solves the problem under the given operational context.
    ///
    /// Returns `None` when no candidate satisfies the constraints.
    #[must_use]
    pub fn solve(&self, ctx: &OperationalContext) -> Option<Solution> {
        let feasible = self.feasible();
        let best = feasible.iter().min_by(|a, b| {
            self.objective
                .evaluate(a, ctx)
                .total_cmp(&self.objective.evaluate(b, ctx))
        })?;
        Some(Solution {
            best: (*best).clone(),
            objective_value: self.objective.evaluate(best, ctx),
            feasible_count: feasible.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cordoba_carbon::units::{GramsCo2e, Joules};

    fn point(name: &str, d: f64, e: f64, emb: f64, area: f64) -> DesignPoint {
        DesignPoint::new(
            name,
            Seconds::new(d),
            Joules::new(e),
            GramsCo2e::new(emb),
            SquareCentimeters::new(area),
        )
        .unwrap()
    }

    fn candidates() -> Vec<DesignPoint> {
        vec![
            point("small-slow", 4.0, 1.0, 50.0, 0.5),
            point("mid", 1.0, 2.0, 150.0, 1.0),
            point("big-fast", 0.25, 8.0, 600.0, 4.0),
        ]
    }

    #[test]
    fn unconstrained_tcdp_solution() {
        let problem = OptimizationProblem::tcdp(candidates());
        let ctx = OperationalContext::us_grid(1e3);
        let sol = problem.solve(&ctx).unwrap();
        assert_eq!(sol.feasible_count, 3);
        // Verify it is the true argmin.
        let manual = crate::metrics::argmin(&problem.candidates, MetricKind::Tcdp, &ctx).unwrap();
        assert_eq!(sol.best.name, manual.name);
        assert!((sol.objective_value - manual.tcdp(&ctx).value()).abs() < 1e-9);
    }

    #[test]
    fn qos_constraint_overrides_efficiency() {
        // §III-C scenario (a): a latency ceiling can exclude the
        // metric-optimal design; the solver must pick the best feasible one.
        let problem = OptimizationProblem::tcdp(candidates())
            .with_constraints(Constraints::none().with_max_delay(Seconds::new(0.5)));
        let ctx = OperationalContext::us_grid(1e3);
        let sol = problem.solve(&ctx).unwrap();
        assert_eq!(sol.best.name, "big-fast");
        assert_eq!(sol.feasible_count, 1);
    }

    #[test]
    fn area_and_power_constraints_filter() {
        let c = Constraints::none()
            .with_max_area(SquareCentimeters::new(1.0))
            .with_max_power(Watts::new(1.0));
        let problem = OptimizationProblem::tcdp(candidates()).with_constraints(c);
        let feasible = problem.feasible();
        // "big-fast": area 4 (out), power 32 W (out). "mid": 2 W (out).
        assert_eq!(feasible.len(), 1);
        assert_eq!(feasible[0].name, "small-slow");
    }

    #[test]
    fn infeasible_problem_returns_none() {
        let c = Constraints::none().with_max_delay(Seconds::new(0.01));
        let problem = OptimizationProblem::tcdp(candidates()).with_constraints(c);
        assert!(problem.solve(&OperationalContext::us_grid(1.0)).is_none());
    }

    #[test]
    fn objective_swap_changes_winner() {
        let problem = OptimizationProblem::tcdp(candidates());
        let ctx = OperationalContext::us_grid(1e9);
        let tcdp_best = problem.solve(&ctx).unwrap().best;
        let energy_best = problem
            .clone()
            .with_objective(MetricKind::Energy)
            .solve(&ctx)
            .unwrap()
            .best;
        // Energy alone picks the frugal slow design (§III pitfall).
        assert_eq!(energy_best.name, "small-slow");
        assert_ne!(tcdp_best.name, energy_best.name);
    }

    #[test]
    fn constraints_builder_and_admits() {
        let c = Constraints::none()
            .with_max_area(SquareCentimeters::new(2.0))
            .with_max_delay(Seconds::new(2.0))
            .with_max_power(Watts::new(3.0));
        assert!(c.admits(&point("ok", 1.0, 2.0, 10.0, 1.0)));
        assert!(!c.admits(&point("too-big", 1.0, 2.0, 10.0, 3.0)));
        assert!(!c.admits(&point("too-slow", 3.0, 2.0, 10.0, 1.0)));
        assert!(!c.admits(&point("too-hot", 1.0, 4.0, 10.0, 1.0)));
        assert!(Constraints::none().admits(&point("anything", 9.0, 9.0, 9.0, 9.0)));
    }
}
