//! Terminal charts for the figure-regeneration binaries.
//!
//! The paper's figures are line/scatter plots; the bench harness prints
//! the underlying series as tables *and* renders a quick ASCII view so the
//! curve shapes (crossovers, knees) are visible in the terminal without
//! plotting tools.

use std::fmt::Write as _;

/// A multi-series line chart over a shared x-axis, rendered to text.
///
/// # Examples
///
/// ```
/// use cordoba::chart::AsciiChart;
///
/// let mut chart = AsciiChart::new(40, 10);
/// chart.series("rise", &[1.0, 2.0, 4.0, 8.0]);
/// chart.series("fall", &[8.0, 4.0, 2.0, 1.0]);
/// let text = chart.render();
/// assert!(text.contains("rise"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<(String, Vec<f64>)>,
}

/// Symbols assigned to series, in order.
const SYMBOLS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates a chart with the given plot-area size (characters).
    ///
    /// Dimensions are clamped to at least 8x4.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width: width.max(8),
            height: height.max(4),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches the y-axis to log scale (values must be positive).
    #[must_use]
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a named series. Series are resampled onto the chart width, so
    /// lengths may differ.
    pub fn series(&mut self, name: impl Into<String>, values: &[f64]) -> &mut Self {
        self.series.push((name.into(), values.to_vec()));
        self
    }

    fn transform(&self, v: f64) -> f64 {
        if self.log_y {
            v.max(f64::MIN_POSITIVE).log10()
        } else {
            v
        }
    }

    /// Renders the chart. Returns an empty string when no series contain
    /// data.
    #[must_use]
    pub fn render(&self) -> String {
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, vs)| vs.iter())
            .copied()
            .filter(|v| v.is_finite() && (!self.log_y || *v > 0.0))
            .map(|v| self.transform(v))
            .collect();
        if finite.is_empty() {
            return String::new();
        }
        let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (s_idx, (_, values)) in self.series.iter().enumerate() {
            if values.is_empty() {
                continue;
            }
            let symbol = SYMBOLS[s_idx % SYMBOLS.len()];
            // Each column picks its own target row, so this loops over
            // column indices rather than any single grid row.
            #[allow(clippy::needless_range_loop)]
            for col in 0..self.width {
                // Resample: nearest source index for this column.
                let src = if values.len() == 1 {
                    0
                } else {
                    (col as f64 / (self.width - 1) as f64 * (values.len() - 1) as f64).round()
                        as usize
                };
                let v = values[src];
                if !v.is_finite() || (self.log_y && v <= 0.0) {
                    continue;
                }
                let norm = (self.transform(v) - lo) / span;
                let row = ((1.0 - norm) * (self.height - 1) as f64).round() as usize;
                grid[row.min(self.height - 1)][col] = symbol;
            }
        }

        let mut out = String::new();
        let label = |v: f64| -> String {
            if self.log_y {
                format!("1e{v:.1}")
            } else {
                crate::report::fmt_num(v)
            }
        };
        for (i, row) in grid.iter().enumerate() {
            let margin = if i == 0 {
                format!("{:>9} |", label(hi))
            } else if i == self.height - 1 {
                format!("{:>9} |", label(lo))
            } else {
                format!("{:>9} |", "")
            };
            let _ = writeln!(out, "{margin}{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(self.width));
        // Legend.
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{} {name}", SYMBOLS[i % SYMBOLS.len()]))
            .collect();
        let _ = writeln!(out, "{:>10} {}", "", legend.join("   "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rising_and_falling_series() {
        let mut chart = AsciiChart::new(20, 8);
        chart.series("up", &[1.0, 2.0, 3.0, 4.0]);
        chart.series("down", &[4.0, 3.0, 2.0, 1.0]);
        let text = chart.render();
        let lines: Vec<&str> = text.lines().collect();
        // 8 plot rows + axis + legend.
        assert_eq!(lines.len(), 10);
        assert!(lines.last().unwrap().contains("* up"));
        assert!(lines.last().unwrap().contains("o down"));
        // The top row holds the maxima: 'o' at the left, '*' at the right.
        let top = lines[0];
        assert!(top.find('o').unwrap() < top.find('*').unwrap());
    }

    #[test]
    fn log_scale_compresses_decades() {
        let mut linear = AsciiChart::new(20, 8);
        linear.series("s", &[1.0, 10.0, 100.0, 1000.0]);
        let mut log = AsciiChart::new(20, 8).with_log_y();
        log.series("s", &[1.0, 10.0, 100.0, 1000.0]);
        let log_text = log.render();
        // On a log axis the four decades land on four evenly spread rows
        // (top and bottom included); linear scale crushes the first three
        // values onto the bottom rows.
        let occupied_rows = |text: &str| -> Vec<usize> {
            text.lines()
                .take(8)
                .enumerate()
                .filter(|(_, l)| l.contains('*'))
                .map(|(i, _)| i)
                .collect()
        };
        let log_rows = occupied_rows(&log_text);
        assert_eq!(log_rows.len(), 4, "{log_rows:?}");
        assert_eq!(*log_rows.first().unwrap(), 0);
        assert_eq!(*log_rows.last().unwrap(), 7);
        assert!(log_text.contains("1e"));
        let linear_rows = occupied_rows(&linear.render());
        // 1, 10, 100 all collapse near the bottom on a linear axis.
        assert!(linear_rows.len() <= 3, "{linear_rows:?}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let chart = AsciiChart::new(20, 8);
        assert_eq!(chart.render(), "");
        let mut flat = AsciiChart::new(20, 8);
        flat.series("flat", &[5.0, 5.0, 5.0]);
        let text = flat.render();
        assert!(text.contains('*'));
        let mut single = AsciiChart::new(20, 8);
        single.series("one", &[2.0]);
        assert!(single.render().contains('*'));
        // Non-finite values are skipped, not rendered.
        let mut nan = AsciiChart::new(20, 8);
        nan.series("nan", &[f64::NAN, 1.0, 2.0]);
        assert!(nan.render().contains('*'));
    }

    #[test]
    fn dimensions_are_clamped() {
        let mut tiny = AsciiChart::new(1, 1);
        tiny.series("s", &[1.0, 2.0]);
        let text = tiny.render();
        assert!(!text.is_empty());
        // Minimum 4 rows + axis + legend.
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn many_series_cycle_symbols() {
        let mut chart = AsciiChart::new(12, 6);
        for i in 0..10 {
            chart.series(format!("s{i}"), &[f64::from(i), f64::from(i + 1)]);
        }
        let text = chart.render();
        assert!(text.contains("s9"));
    }
}
