//! Lifetime workload mixes.
//!
//! The paper notes its Fig. 8 analysis "can also be adjusted to account for
//! varying workloads over the system's lifetime". A [`LifetimeMix`] assigns
//! each task a fraction of lifetime executions; the mix behaves like a
//! single composite task whose delay/energy are the weighted sums, so all
//! of CORDOBA's machinery (tCDP sweeps, elimination, robustness) applies
//! unchanged.

use crate::dse::accel_design_point;
use crate::error::CoreError;
use crate::metrics::DesignPoint;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::CarbonError;
use cordoba_workloads::task::Task;
use serde::{Deserialize, Serialize};

/// A weighted set of tasks representing a hardware lifetime's workload.
///
/// # Examples
///
/// ```
/// use cordoba::mix::LifetimeMix;
/// use cordoba_workloads::task::Task;
///
/// let mix = LifetimeMix::new(vec![
///     (Task::ai_5_kernels(), 0.7),
///     (Task::xr_5_kernels(), 0.3),
/// ])?;
/// assert_eq!(mix.entries().len(), 2);
/// # Ok::<(), cordoba_carbon::CarbonError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeMix {
    entries: Vec<(Task, f64)>,
}

impl LifetimeMix {
    /// Creates a mix from `(task, weight)` pairs; weights are normalized to
    /// sum to 1.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is empty or any weight is not
    /// positive and finite.
    pub fn new(entries: Vec<(Task, f64)>) -> Result<Self, CarbonError> {
        if entries.is_empty() {
            return Err(CarbonError::Empty {
                what: "lifetime mix",
            });
        }
        for &(_, w) in &entries {
            CarbonError::require_positive("mix weight", w)?;
        }
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        let entries = entries.into_iter().map(|(t, w)| (t, w / total)).collect();
        Ok(Self { entries })
    }

    /// A single-task "mix".
    ///
    /// # Panics
    ///
    /// Never panics (a weight of 1.0 is always valid).
    #[must_use]
    pub fn single(task: Task) -> Self {
        Self::new(vec![(task, 1.0)]).expect("single positive weight is valid") // cordoba-lint: allow(no-panic) — documented "Never panics"
    }

    /// The normalized `(task, weight)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(Task, f64)] {
        &self.entries
    }

    /// A display name composed from the member tasks.
    #[must_use]
    pub fn name(&self) -> String {
        self.entries
            .iter()
            .map(|(t, w)| format!("{:.0}%:{}", w * 100.0, t.name()))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Characterizes `config` for this mix: delay and energy are the
    /// weighted sums over member tasks (an "average task execution");
    /// embodied carbon and area are the config's own.
    ///
    /// # Errors
    ///
    /// Propagates carbon-model and cost-table errors.
    pub fn design_point(
        &self,
        config: &AcceleratorConfig,
        embodied: &EmbodiedModel,
    ) -> Result<DesignPoint, CoreError> {
        let mut delay = cordoba_carbon::units::Seconds::ZERO;
        let mut energy = cordoba_carbon::units::Joules::ZERO;
        let mut base = None;
        for (task, weight) in &self.entries {
            let point = accel_design_point(config, task, embodied)?;
            delay += point.delay * *weight;
            energy += point.energy * *weight;
            base = Some(point);
        }
        let base = base.expect("mix is non-empty"); // cordoba-lint: allow(no-panic) — Mix::new rejects empty entry lists
        Ok(DesignPoint::new(
            config.name(),
            delay,
            energy,
            base.embodied,
            base.area,
        )?)
    }

    /// Characterizes a whole configuration list for this mix.
    ///
    /// # Errors
    ///
    /// Propagates carbon-model and cost-table errors.
    pub fn evaluate_space(
        &self,
        configs: &[AcceleratorConfig],
        embodied: &EmbodiedModel,
    ) -> Result<Vec<DesignPoint>, CoreError> {
        configs
            .iter()
            .map(|c| self.design_point(c, embodied))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{argmin, MetricKind, OperationalContext};
    use cordoba_accel::space::{config_by_name, design_space};

    fn model() -> EmbodiedModel {
        EmbodiedModel::default()
    }

    #[test]
    fn weights_normalize() {
        let mix = LifetimeMix::new(vec![
            (Task::ai_5_kernels(), 2.0),
            (Task::xr_5_kernels(), 6.0),
        ])
        .unwrap();
        let weights: Vec<f64> = mix.entries().iter().map(|&(_, w)| w).collect();
        assert!((weights[0] - 0.25).abs() < 1e-12);
        assert!((weights[1] - 0.75).abs() < 1e-12);
        assert!(mix.name().contains("25%:AI 5 kernels"));
    }

    #[test]
    fn single_task_mix_matches_direct_evaluation() {
        let mix = LifetimeMix::single(Task::xr_10_kernels());
        let cfg = config_by_name("a48").unwrap();
        let via_mix = mix.design_point(&cfg, &model()).unwrap();
        let direct = accel_design_point(&cfg, &Task::xr_10_kernels(), &model()).unwrap();
        assert!((via_mix.delay.value() - direct.delay.value()).abs() < 1e-15);
        assert!((via_mix.energy.value() - direct.energy.value()).abs() < 1e-12);
        assert_eq!(via_mix.embodied, direct.embodied);
    }

    #[test]
    fn mix_point_is_the_weighted_combination() {
        let cfg = config_by_name("a60").unwrap();
        let ai = accel_design_point(&cfg, &Task::ai_5_kernels(), &model()).unwrap();
        let xr = accel_design_point(&cfg, &Task::xr_5_kernels(), &model()).unwrap();
        let mix = LifetimeMix::new(vec![
            (Task::ai_5_kernels(), 0.5),
            (Task::xr_5_kernels(), 0.5),
        ])
        .unwrap();
        let point = mix.design_point(&cfg, &model()).unwrap();
        let expected_delay = 0.5 * ai.delay.value() + 0.5 * xr.delay.value();
        assert!((point.delay.value() - expected_delay).abs() < 1e-12);
        let expected_energy = 0.5 * ai.energy.value() + 0.5 * xr.energy.value();
        assert!((point.energy.value() - expected_energy).abs() < 1e-12);
    }

    #[test]
    fn mix_optimum_interpolates_between_member_optima() {
        // A mostly-AI mix should pick an accelerator with SRAM between the
        // AI-only and XR-only optima.
        let configs = design_space();
        let m = model();
        let ctx = OperationalContext::us_grid(1e8);
        let sram_of = |points: &[DesignPoint]| {
            let best = argmin(points, MetricKind::Tcdp, &ctx).unwrap();
            config_by_name(&best.name).unwrap().sram().to_mebibytes()
        };
        let ai = LifetimeMix::single(Task::ai_5_kernels())
            .evaluate_space(&configs, &m)
            .unwrap();
        let xr = LifetimeMix::single(Task::xr_5_kernels())
            .evaluate_space(&configs, &m)
            .unwrap();
        let blend = LifetimeMix::new(vec![
            (Task::ai_5_kernels(), 0.5),
            (Task::xr_5_kernels(), 0.5),
        ])
        .unwrap()
        .evaluate_space(&configs, &m)
        .unwrap();
        let (lo, hi) = (sram_of(&ai), sram_of(&xr));
        let mid = sram_of(&blend);
        assert!(lo < hi, "precondition: AI optimum smaller than XR optimum");
        assert!(
            (lo..=hi).contains(&mid),
            "blend optimum {mid} MiB outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn validation() {
        assert!(LifetimeMix::new(vec![]).is_err());
        assert!(LifetimeMix::new(vec![(Task::ai_5_kernels(), 0.0)]).is_err());
        assert!(LifetimeMix::new(vec![(Task::ai_5_kernels(), -1.0)]).is_err());
    }
}
