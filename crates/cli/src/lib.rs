//! # cordoba-cli
//!
//! Command-line interface for the CORDOBA framework. All logic lives in
//! [`commands::run`], a pure function from argument vector to output text,
//! so the CLI is fully unit-testable; `src/main.rs` is a thin shell.
//!
//! ```text
//! $ cordoba dse --task xr5
//! $ cordoba provision --app m1
//! $ cordoba metrics --delay 0.5 --energy 2 --embodied 450 --tasks 1e8
//! $ cordoba eliminate --csv designs.csv
//! ```

pub mod args;
pub mod commands;

pub use commands::{run, CliError, USAGE};
