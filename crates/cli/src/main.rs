//! Thin shell around [`cordoba_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match cordoba_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}
