//! The `cordoba` CLI subcommands.
//!
//! Every command is a pure function from parsed arguments to output text,
//! so the whole CLI is unit-testable without spawning processes.

use crate::args::{ArgError, Args};
use cordoba::prelude::*;
use cordoba_accel::cache::EmbodiedCache;
use cordoba_accel::space::{config_by_name, design_space};
use cordoba_carbon::prelude::*;
use cordoba_par::supervise::{Outcome, Supervisor};
use cordoba_soc::prelude::*;
use cordoba_store::{KeyBuilder, Store, StoreKey};
use cordoba_workloads::kernel::KernelId;
use cordoba_workloads::task::Task;
use std::fmt::Write as _;
use std::time::Duration;

/// Store entry kind for whole rendered CLI runs (the `replay` payload).
const RUN_KIND: &str = "run";

/// Error type of the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// A model rejected its inputs.
    Carbon(CarbonError),
    /// A framework evaluation failed (carbon model or cost table).
    Core(CoreError),
    /// Free-form usage error.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Args(e) => write!(f, "{e}"),
            Self::Carbon(e) => write!(f, "{e}"),
            Self::Core(e) => write!(f, "{e}"),
            Self::Usage(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self::Args(e)
    }
}

impl From<CarbonError> for CliError {
    fn from(e: CarbonError) -> Self {
        Self::Carbon(e)
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
cordoba — carbon-efficient optimization framework (tCDP)

USAGE:
    cordoba <COMMAND> [OPTIONS]

COMMANDS:
    metrics      evaluate EDP/tC/CCI/tCDP for one design point
    dse          explore the 121-accelerator space for a task
    provision    sweep VR SoC core counts for an app
    stacking     evaluate the 3D-integration study
    eliminate    Pareto/beta-sweep elimination over designs from a CSV
    doctor       sanity-check a trace/design CSV and print repair reports
                 (with --metrics alone: run the built-in self-check probe)
    trace-check  validate a Chrome trace-event JSON file
    profile      aggregate a Chrome trace into a per-span self-time profile
    replay       re-emit a stored run by hash without recomputing
    cache        inspect or evict the persistent result store
    kernels      list the workload kernels
    tasks        list the evaluation tasks
    grids        list built-in carbon intensities
    help         show this message

Persistent memoization: `dse --store <dir>` keys every expensive result by
a content hash of its inputs, so a repeated sweep is a single lookup. Each
stored run prints its hash; `replay <hash> --store <dir>` re-emits it.

Commands that ingest data accept `--lenient` to quarantine bad rows or
configurations and continue with the rest instead of aborting.

Every command accepts `--threads <N>` to cap the worker threads used for
parallel sweeps (default: all cores). Results are identical at any thread
count; only wall-clock time changes.

Observability (zero overhead when off; never changes results):
    --trace-out <file>    record spans/events and write Chrome trace-event
                          JSON (open in chrome://tracing or Perfetto)
    --metrics             append the metrics registry (counters/histograms)
                          to the output as JSON lines
    --profile-out <file>  record spans and write a per-name self/total-time
                          profile as JSON (see also the `profile` command)

Run `cordoba <COMMAND> --help` for per-command options.
";

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing invalid usage or model errors.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Ok(USAGE.to_owned());
    };
    let args = Args::parse(argv[1..].iter().cloned());
    apply_threads(&args)?;
    let obs = ObsOptions::from_args(&args);
    obs.enable();
    let result = match command.as_str() {
        "metrics" => cmd_metrics(&args),
        "dse" => cmd_dse(&args),
        "provision" => cmd_provision(&args),
        "stacking" => cmd_stacking(&args),
        "eliminate" => cmd_eliminate(&args),
        "doctor" => cmd_doctor(&args),
        "trace-check" => cmd_trace_check(&args),
        "profile" => cmd_profile(&args),
        "replay" => cmd_replay(&args),
        "cache" => cmd_cache(&args),
        "kernels" => cmd_kernels(&args),
        "tasks" => cmd_tasks(&args),
        "grids" => cmd_grids(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`; run `cordoba help`"
        ))),
    };
    obs.finish(result)
}

/// The global observability options: `--trace-out <file>`, `--metrics`,
/// and `--profile-out <file>`.
///
/// `--trace-out` enables both tracing *and* metrics (so the exported trace
/// always carries counter tracks); `--metrics` enables the registry alone;
/// `--profile-out` enables tracing and aggregates the recorded span tree
/// into a per-name self/total-time profile written as JSON.
/// Observation is a pure side channel: enabling any of them never changes
/// a command's computed results, only what is reported about them.
struct ObsOptions {
    trace_out: Option<String>,
    profile_out: Option<String>,
    metrics: bool,
}

impl ObsOptions {
    fn from_args(args: &Args) -> Self {
        Self {
            trace_out: args.get("trace-out").map(str::to_owned),
            profile_out: args.get("profile-out").map(str::to_owned),
            metrics: args.flag("metrics"),
        }
    }

    fn enable(&self) {
        if self.trace_out.is_some() {
            cordoba_obs::set_tracing_enabled(true);
            cordoba_obs::set_metrics_enabled(true);
        }
        if self.profile_out.is_some() {
            cordoba_obs::set_tracing_enabled(true);
        }
        if self.metrics {
            cordoba_obs::set_metrics_enabled(true);
        }
    }

    /// Appends the metrics dump, writes the profile and trace files, then
    /// switches both layers back off (draining the span buffer) so repeated
    /// in-process `run` calls start from a clean slate.
    fn finish(&self, mut result: Result<String, CliError>) -> Result<String, CliError> {
        if self.metrics {
            if let Ok(out) = &mut result {
                out.push_str(&cordoba_obs::dump_json_lines());
            }
        }
        if self.metrics || self.trace_out.is_some() {
            cordoba_obs::set_metrics_enabled(false);
        }
        // The profile aggregates the same span buffer the trace exports,
        // so it must be computed before the drain below.
        if let Some(path) = &self.profile_out {
            if result.is_ok() {
                let report = cordoba_obs::profile_report();
                match std::fs::write(path, report.to_json()) {
                    Ok(()) => {
                        if let Ok(out) = &mut result {
                            let _ = writeln!(out, "profile written to {path}");
                        }
                    }
                    Err(e) => {
                        result = Err(CliError::Usage(format!("cannot write {path}: {e}")));
                    }
                }
            }
        }
        if let Some(path) = &self.trace_out {
            let trace = cordoba_obs::drain_chrome_trace();
            cordoba_obs::set_tracing_enabled(false);
            if result.is_ok() {
                match std::fs::write(path, &trace) {
                    Ok(()) => {
                        if let Ok(out) = &mut result {
                            let _ = writeln!(out, "trace written to {path}");
                        }
                    }
                    Err(e) => {
                        result = Err(CliError::Usage(format!("cannot write {path}: {e}")));
                    }
                }
            }
        } else if self.profile_out.is_some() {
            cordoba_obs::clear_trace();
            cordoba_obs::set_tracing_enabled(false);
        }
        result
    }
}

/// Applies the global `--threads <N>` option: caps the process-wide worker
/// pool every parallel sweep draws from. Absent means all available cores.
fn apply_threads(args: &Args) -> Result<(), CliError> {
    let Some(raw) = args.get("threads") else {
        return Ok(());
    };
    let threads: Option<std::num::NonZeroUsize> = raw.parse().ok();
    if threads.is_none() {
        return Err(CliError::Args(ArgError::InvalidValue {
            key: "threads".to_owned(),
            value: raw.to_owned(),
            expected: "a positive integer",
        }));
    }
    cordoba_par::set_threads(threads);
    Ok(())
}

/// Parses a human-readable duration: a non-negative number with an
/// optional `ms`/`s`/`m`/`h` suffix (bare numbers mean seconds).
fn parse_duration(raw: &str) -> Result<Duration, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "bad duration `{raw}` (expected e.g. `500ms`, `5s`, `2m`, `1h`)"
        ))
    };
    let (number, scale) = if let Some(v) = raw.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = raw.strip_suffix('s') {
        (v, 1.0)
    } else if let Some(v) = raw.strip_suffix('m') {
        (v, 60.0)
    } else if let Some(v) = raw.strip_suffix('h') {
        (v, cordoba_carbon::units::SECONDS_PER_HOUR)
    } else {
        (raw, 1.0)
    };
    let value: f64 = number.trim().parse().map_err(|_| bad())?;
    if !value.is_finite() || value < 0.0 {
        return Err(bad());
    }
    // try_ rather than from_secs_f64: absurd magnitudes (`9e99h`) must be
    // a usage error, not an overflow panic.
    Duration::try_from_secs_f64(value * scale).map_err(|_| bad())
}

fn grid_by_name(name: &str) -> Result<CarbonIntensity, CliError> {
    Ok(match name {
        "coal" => grids::COAL,
        "gas" => grids::GAS,
        "world" => grids::WORLD_AVERAGE,
        "us" => grids::US_AVERAGE,
        "solar" => grids::SOLAR,
        "wind" => grids::WIND,
        "hydro" => grids::HYDRO,
        "nuclear" => grids::NUCLEAR,
        other => {
            let value: f64 = other.parse().map_err(|_| {
                CliError::Usage(format!(
                    "unknown grid `{other}` (try coal/gas/world/us/solar/wind/hydro/nuclear or a gCO2e/kWh number)"
                ))
            })?;
            CarbonIntensity::new(value)
        }
    })
}

fn task_by_name(name: &str) -> Result<Task, CliError> {
    match name {
        "all" => Ok(Task::all_kernels()),
        "xr10" => Ok(Task::xr_10_kernels()),
        "ai10" => Ok(Task::ai_10_kernels()),
        "xr5" => Ok(Task::xr_5_kernels()),
        "ai5" => Ok(Task::ai_5_kernels()),
        other => Err(CliError::Usage(format!(
            "unknown task `{other}` (all | xr10 | ai10 | xr5 | ai5)"
        ))),
    }
}

fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok(
            "cordoba metrics --delay <s> --energy <J> --embodied <gCO2e> \
                   [--area <cm2>] [--tasks <N>] [--grid <name|gCO2e/kWh>]\n"
                .to_owned(),
        );
    }
    args.expect_only(&[
        "delay",
        "energy",
        "embodied",
        "area",
        "tasks",
        "grid",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let delay = args
        .get("delay")
        .ok_or(CliError::Args(ArgError::Missing("--delay")))?;
    let energy = args
        .get("energy")
        .ok_or(CliError::Args(ArgError::Missing("--energy")))?;
    let embodied = args
        .get("embodied")
        .ok_or(CliError::Args(ArgError::Missing("--embodied")))?;
    let parse = |key: &str, v: &str| -> Result<f64, CliError> {
        v.parse().map_err(|_| {
            CliError::Args(ArgError::InvalidValue {
                key: key.to_owned(),
                value: v.to_owned(),
                expected: "a number",
            })
        })
    };
    let point = DesignPoint::new(
        "design",
        Seconds::new(parse("delay", delay)?),
        Joules::new(parse("energy", energy)?),
        GramsCo2e::new(parse("embodied", embodied)?),
        SquareCentimeters::new(args.get_f64("area", 1.0)?),
    )?;
    let tasks = args.get_f64("tasks", 1e6)?;
    let ci = grid_by_name(args.get("grid").unwrap_or("us"))?;
    let ctx = OperationalContext::new(tasks, ci)?;

    let mut out = String::new();
    let _ = writeln!(out, "design point over {tasks:.3e} lifetime tasks at {ci}:");
    let _ = writeln!(out, "  D     = {:.4}", point.delay);
    let _ = writeln!(out, "  E     = {:.4}", point.energy);
    let _ = writeln!(out, "  P     = {:.4}", point.power());
    let _ = writeln!(out, "  EDP   = {:.4}", point.edp());
    let _ = writeln!(out, "  C_emb = {:.2}", point.embodied);
    let _ = writeln!(out, "  C_op  = {:.2}", point.operational(&ctx));
    let _ = writeln!(
        out,
        "  tC    = {:.2} ({:.1}% embodied)",
        point.total_carbon(&ctx),
        point.embodied_share(&ctx) * 100.0
    );
    let _ = writeln!(
        out,
        "  CCI   = {:.3e} gCO2e per task",
        point.cci(&ctx).value()
    );
    let _ = writeln!(out, "  tCDP  = {:.4}", point.tcdp(&ctx));
    Ok(out)
}

fn cmd_dse(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok(
            "cordoba dse --task <all|xr10|ai10|xr5|ai5> [--grid <name>] \
                   [--lo <decade>] [--hi <decade>] [--lenient]\n\
                   [--deadline <dur>] [--checkpoint <file>] [--resume <file>]\n\
                   [--store <dir>] [--attribution <file|->]\n\
                   --lenient quarantines configurations that fail to \
                   evaluate and sweeps the rest\n\
                   --attribution writes the carbon attribution ledger \
                   (embodied vs operational vs quarantined tCDP per \
                   configuration, reconciled bit-for-bit against the \
                   sweep) as JSON, or appends a table when the file is `-`\n\
                   --deadline bounds the sweep (e.g. 5s, 500ms); an \
                   interrupted sweep writes its progress to --checkpoint\n\
                   --resume continues a checkpointed sweep to the exact \
                   result the uninterrupted run would have produced\n\
                   --store memoizes results in a content-addressed store: \
                   a repeat run is served bit-identically without \
                   recomputing, and prints a hash usable with `replay`\n"
                .to_owned(),
        );
    }
    args.expect_only(&[
        "task",
        "grid",
        "lo",
        "hi",
        "lenient",
        "deadline",
        "checkpoint",
        "resume",
        "store",
        "attribution",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    if args.get("store").is_some() {
        // The store memoizes *complete* runs; supervision produces
        // partial ones, so the two modes are mutually exclusive.
        for conflicting in ["deadline", "checkpoint", "resume"] {
            if args.get(conflicting).is_some() {
                return Err(CliError::Usage(format!(
                    "--store memoizes complete runs and cannot be combined with --{conflicting}"
                )));
            }
        }
    }
    let deadline = args.get("deadline").map(parse_duration).transpose()?;
    if let Some(path) = args.get("resume") {
        if args.get("attribution").is_some() {
            return Err(CliError::Usage(
                "a resumed checkpoint no longer carries the evaluation quarantine; \
                 re-run the sweep with --attribution instead"
                    .to_owned(),
            ));
        }
        for conflicting in ["task", "grid", "lo", "hi"] {
            if args.get(conflicting).is_some() {
                return Err(CliError::Usage(format!(
                    "--resume restores every sweep input from the checkpoint; drop --{conflicting}"
                )));
            }
        }
        return dse_resume(args, path, deadline);
    }
    let task = task_by_name(args.get("task").unwrap_or("all"))?;
    let ci = grid_by_name(args.get("grid").unwrap_or("us"))?;
    let decade = |key: &'static str, default: f64| -> Result<i32, CliError> {
        let v = args.get_f64(key, default)?;
        // cordoba-lint: allow(float-eq) — fract() of a whole number is exactly 0.0
        if v.fract() != 0.0 || !(-300.0..=300.0).contains(&v) {
            return Err(CliError::Usage(format!(
                "--{key} must be a whole decade exponent, got {v}"
            )));
        }
        Ok(v as i32)
    };
    let lo = decade("lo", 4.0)?;
    let hi = decade("hi", 11.0)?;
    if hi <= lo {
        return Err(CliError::Usage("--hi must exceed --lo".to_owned()));
    }
    if let Some(dir) = args.get("store") {
        return dse_stored(
            dir,
            &task,
            ci,
            lo,
            hi,
            args.flag("lenient"),
            args.get("attribution"),
        );
    }

    let mut out = String::new();
    let mut quarantined: Vec<EvalFailure> = Vec::new();
    let points = if args.flag("lenient") {
        let eval = evaluate_space_resilient(&design_space(), &task, &EmbodiedModel::default());
        if eval.degraded() {
            let _ = writeln!(
                out,
                "quarantined {} of {} configurations:",
                eval.failures.len(),
                eval.points.len() + eval.failures.len()
            );
            for failure in &eval.failures {
                let _ = writeln!(out, "  {failure}");
            }
        }
        if eval.points.is_empty() {
            return Err(CliError::Usage(
                "every configuration failed to evaluate".to_owned(),
            ));
        }
        quarantined = eval.failures;
        eval.points
    } else {
        evaluate_space(&design_space(), &task, &EmbodiedModel::default())?
    };
    let _ = writeln!(out, "task: {task} | grid: {ci}");
    // The evaluation stage above runs unsupervised (it is the fast part);
    // the deadline budget governs the sweep, so even `--deadline 0s`
    // leaves a resumable checkpoint behind.
    let sup = match deadline {
        Some(budget) => Supervisor::with_deadline(budget),
        None => Supervisor::unbounded(),
    };
    let run = op_time_sweep_supervised(points, log_sweep(lo, hi, 2), ci, &sup)?;
    match run {
        SupervisedSweep::Complete(sweep) => {
            render_sweep(&sweep, &mut out)?;
            if let Some(dest) = args.get("attribution") {
                write_attribution(&sweep, &quarantined, dest, &mut out)?;
            }
            Ok(out)
        }
        // An interrupted sweep has no complete tCDP matrix to attribute;
        // the checkpoint carries the progress instead.
        SupervisedSweep::Partial(partial) => dse_checkpoint(args, partial, out),
    }
}

/// Builds the carbon attribution ledger for a completed sweep, reconciles
/// it bit-for-bit against the sweep's tCDP matrix, and delivers it: JSON
/// to a file, or the human-readable table appended to `out` when `dest`
/// is `-`.
fn write_attribution(
    sweep: &OpTimeSweep,
    quarantined: &[EvalFailure],
    dest: &str,
    out: &mut String,
) -> Result<(), CliError> {
    let report = AttributionReport::from_sweep(sweep)?.with_quarantine(quarantined);
    report
        .check_against(sweep)
        .map_err(|e| CliError::Usage(format!("attribution ledger failed to reconcile: {e}")))?;
    if dest == "-" {
        out.push_str(&report.to_table());
    } else {
        std::fs::write(dest, report.to_json())
            .map_err(|e| CliError::Usage(format!("cannot write {dest}: {e}")))?;
        let _ = writeln!(out, "attribution written to {dest}");
    }
    Ok(())
}

/// Renders a completed operational-time sweep: the optimal-design
/// crossover table plus the elimination summary.
fn render_sweep(sweep: &OpTimeSweep, out: &mut String) -> Result<(), CliError> {
    let mut last = String::new();
    for n in 0..sweep.task_counts.len() {
        let best = &sweep.points[sweep.optimal_at(n)];
        if best.name != last {
            let cfg = config_by_name(&best.name)
                .ok_or_else(|| CliError::Usage(format!("unknown configuration `{}`", best.name)))?;
            let _ = writeln!(
                out,
                "  from {:>9.2e} tasks: {:5} ({} MAC units, {:.0} MiB SRAM)",
                sweep.task_counts[n],
                best.name,
                cfg.mac_units(),
                cfg.sram().to_mebibytes()
            );
            last = best.name.clone();
        }
    }
    let survivors = sweep.ever_optimal();
    let _ = writeln!(
        out,
        "survivors: {} of {} ({:.1}% eliminated); robust choice: {}",
        survivors.len(),
        sweep.points.len(),
        sweep.elimination_fraction() * 100.0,
        sweep.points[sweep.robust_choice()].name
    );
    Ok(())
}

/// Opens the persistent store at `dir` (creating it if needed).
fn open_store(dir: &str) -> Result<Store, CliError> {
    Store::open(dir).map_err(|e| CliError::Usage(format!("cannot open store {dir}: {e}")))
}

/// Content hash identifying a whole `dse` run: every input that shapes
/// the rendered output participates, so two runs share a hash exactly
/// when they would print identical results.
fn dse_run_key(task: &Task, ci: CarbonIntensity, lo: i32, hi: i32, lenient: bool) -> StoreKey {
    let mut key = KeyBuilder::new("dse");
    key.push_str(task.name());
    key.push_f64(ci.value());
    key.push_u64(lo as i64 as u64);
    key.push_u64(hi as i64 as u64);
    key.push_u64(u64::from(lenient));
    key.finish()
}

/// The `dse --store` path: the whole rendered run is memoized under a
/// content hash of its inputs, and the expensive stages underneath
/// (space evaluation, tCDP matrix) are memoized individually, so even a
/// partial overlap with a prior run skips recomputation. Cold and warm
/// outputs are byte-identical.
///
/// Only the sweep itself is memoized: an attribution request needs the
/// live sweep object, so it bypasses the run-level memo (the stage memos
/// underneath still serve) and the ledger is appended *after* the stored
/// payload, keeping warm replays byte-identical with or without it.
fn dse_stored(
    dir: &str,
    task: &Task,
    ci: CarbonIntensity,
    lo: i32,
    hi: i32,
    lenient: bool,
    attribution: Option<&str>,
) -> Result<String, CliError> {
    let store = open_store(dir)?;
    let key = dse_run_key(task, ci, lo, hi, lenient);
    if attribution.is_none() {
        if let Some(lines) = store.get(RUN_KIND, key) {
            return Ok(lines.join("\n"));
        }
    }
    let mut out = String::new();
    let mut quarantined: Vec<EvalFailure> = Vec::new();
    let points = if lenient {
        let eval = evaluate_space_resilient(&design_space(), task, &EmbodiedModel::default());
        if eval.degraded() {
            let _ = writeln!(
                out,
                "quarantined {} of {} configurations:",
                eval.failures.len(),
                eval.points.len() + eval.failures.len()
            );
            for failure in &eval.failures {
                let _ = writeln!(out, "  {failure}");
            }
        }
        if eval.points.is_empty() {
            return Err(CliError::Usage(
                "every configuration failed to evaluate".to_owned(),
            ));
        }
        quarantined = eval.failures;
        eval.points
    } else {
        evaluate_space_stored(&design_space(), task, &EmbodiedModel::default(), &store)?
    };
    let _ = writeln!(out, "task: {task} | grid: {ci}");
    let sweep = op_time_sweep_stored(points, log_sweep(lo, hi, 2), ci, &store)?;
    render_sweep(&sweep, &mut out)?;
    let _ = writeln!(out, "store: run {key}");
    let payload: Vec<String> = out.split('\n').map(str::to_owned).collect();
    let _ = store.put(RUN_KIND, key, &payload);
    if let Some(dest) = attribution {
        write_attribution(&sweep, &quarantined, dest, &mut out)?;
    }
    Ok(out)
}

/// Handles an interrupted `dse` sweep: writes the checkpoint to
/// `--checkpoint` (an error without one — progress would be lost
/// silently) and reports coverage plus the resume command.
fn dse_checkpoint(args: &Args, partial: PartialSweep, mut out: String) -> Result<String, CliError> {
    let report = partial.coverage_report();
    let Some(path) = args.get("checkpoint") else {
        return Err(CliError::Usage(format!(
            "{report}; re-run with --checkpoint <file> to save progress"
        )));
    };
    std::fs::write(path, partial.checkpoint.to_text())
        .map_err(|e| CliError::Usage(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "checkpoint written to {path}; continue with `cordoba dse --resume {path}`"
    );
    Ok(out)
}

/// The `dse --resume` path: restores a sweep checkpoint and computes the
/// remaining rows (under a fresh deadline when `--deadline` is given
/// again, otherwise to completion).
fn dse_resume(args: &Args, path: &str, deadline: Option<Duration>) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let checkpoint =
        SweepCheckpoint::from_text(&text).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "resuming {path}: {}/{} rows already complete | grid: {}",
        checkpoint.completed_rows(),
        checkpoint.total_rows(),
        checkpoint.ci_use()
    );
    let sup = match deadline {
        Some(budget) => Supervisor::with_deadline(budget),
        None => Supervisor::unbounded(),
    };
    match checkpoint.resume(&sup)? {
        SupervisedSweep::Complete(sweep) => {
            render_sweep(&sweep, &mut out)?;
            Ok(out)
        }
        // Interrupted again: save to --checkpoint if given, else back to
        // the file being resumed (progress is monotone either way).
        SupervisedSweep::Partial(partial) => {
            if args.get("checkpoint").is_none() {
                let report = partial.coverage_report();
                std::fs::write(path, partial.checkpoint.to_text())
                    .map_err(|e| CliError::Usage(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(out, "{report}");
                let _ = writeln!(
                    out,
                    "checkpoint updated at {path}; continue with `cordoba dse --resume {path}`"
                );
                Ok(out)
            } else {
                dse_checkpoint(args, partial, out)
            }
        }
    }
}

fn cmd_provision(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok(
            "cordoba provision --app <m1|g2|b1|sg1|all> [--years <f>] [--grid <name>]\n".to_owned(),
        );
    }
    args.expect_only(&[
        "app",
        "years",
        "grid",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let app = match args.get("app").unwrap_or("m1") {
        "m1" => VrApp::m1(),
        "g2" => VrApp::g2(),
        "b1" => VrApp::b1(),
        "sg1" => VrApp::sg1(),
        "all" => VrApp::all_tasks(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown app `{other}` (m1 | g2 | b1 | sg1 | all)"
            )))
        }
    };
    let mut deployment = Deployment::default();
    deployment.lifetime_years = args.get_f64("years", deployment.lifetime_years)?;
    deployment.ci_use = grid_by_name(args.get("grid").unwrap_or("us"))?;

    let rows = sweep(&app, &deployment)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (TLP {:.2}) over {} years:",
        app.name,
        app.tlp(),
        deployment.lifetime_years
    );
    for r in &rows {
        let marker = if r.cores == optimal_cores(&rows) {
            "  <== optimal"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} cores: tCDP {:.4e} gCO2e*s{marker}",
            r.cores,
            r.tcdp.value()
        );
    }
    let _ = writeln!(
        out,
        "optimal: {} cores ({:.2}x better than 8)",
        optimal_cores(&rows),
        improvement_over_8core(&rows)
    );
    Ok(out)
}

fn cmd_stacking(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba stacking [--share <embodied fraction, default 0.8>]\n".to_owned());
    }
    args.expect_only(&[
        "share",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let share = args.get_f64("share", 0.8)?;
    let model = EmbodiedModel::default();
    let kernel = KernelId::Sr512.descriptor();
    let mut points = Vec::new();
    for cfg in cordoba_accel::stacking::study_configs() {
        let sim = cordoba_accel::sim::simulate(&cfg, &kernel);
        let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
        points.push(DesignPoint::new(
            cfg.name(),
            sim.latency,
            energy,
            cfg.embodied_carbon(&model)?,
            cfg.total_area(),
        )?);
    }
    let ctx = context_for_embodied_share(&points, grids::US_AVERAGE, share)?;
    let best = argmin(&points, MetricKind::Tcdp, &ctx)
        .ok_or_else(|| CliError::Usage("empty design study".to_owned()))?;
    let base = &points[0];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SR(512x512), embodied share {:.0}% ({:.2e} inferences):",
        share * 100.0,
        ctx.tasks
    );
    for p in &points {
        let marker = if p.name == best.name {
            "  <== optimal"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:14} tCDP {:.4e}{marker}",
            p.name,
            p.tcdp(&ctx).value()
        );
    }
    let _ = writeln!(
        out,
        "winner {} improves {:.2}x over {}",
        best.name,
        base.tcdp(&ctx).value() / best.tcdp(&ctx).value(),
        base.name
    );
    Ok(out)
}

fn cmd_eliminate(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba eliminate --csv <file> [--lenient]\n\
                   CSV columns: name,delay_s,energy_j,embodied_gco2e\n\
                   --lenient skips malformed rows (reported) instead of aborting\n"
            .to_owned());
    }
    args.expect_only(&[
        "csv",
        "lenient",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let path = args
        .get("csv")
        .ok_or(CliError::Args(ArgError::Missing("--csv <file>")))?;
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let mut out = String::new();
    let points = if args.flag("lenient") {
        let report = parse_design_csv_lenient(&content)?;
        if !report.skipped.is_empty() {
            let _ = writeln!(out, "skipped {} malformed rows:", report.skipped.len());
            for reason in &report.skipped {
                let _ = writeln!(out, "  {reason}");
            }
        }
        report.points
    } else {
        parse_design_csv(&content)?
    };
    let sweep = BetaSweep::run(&points);
    let _ = writeln!(out, "{} candidates:", points.len());
    let _ = writeln!(out, "  survivors:  {}", sweep.surviving_names().join(", "));
    let _ = writeln!(out, "  eliminated: {}", sweep.eliminated_names().join(", "));
    let _ = writeln!(
        out,
        "  {:.1}% of candidates can never be tCDP-optimal for any CI_use(t)",
        sweep.elimination_fraction() * 100.0
    );
    Ok(out)
}

/// Outcome of a lenient design-CSV parse: the rows that survived plus a
/// line-numbered reason for every row that was dropped.
#[derive(Debug, Clone, Default)]
pub struct DesignCsvReport {
    /// Successfully parsed design points.
    pub points: Vec<DesignPoint>,
    /// One `line N: reason` entry per skipped row.
    pub skipped: Vec<String>,
}

/// Parses one non-comment, non-header CSV row into a design point.
fn parse_design_row(lineno: usize, line: &str) -> Result<DesignPoint, CliError> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        return Err(CliError::Usage(format!(
            "line {lineno}: expected 4 comma-separated fields, got {}",
            fields.len()
        )));
    }
    let num = |i: usize| -> Result<f64, CliError> {
        fields[i]
            .parse()
            .map_err(|_| CliError::Usage(format!("line {lineno}: `{}` is not a number", fields[i])))
    };
    DesignPoint::new(
        fields[0],
        Seconds::new(num(1)?),
        Joules::new(num(2)?),
        GramsCo2e::new(num(3)?),
        SquareCentimeters::new(1.0),
    )
    .map_err(|e| CliError::Usage(format!("line {lineno}: {e}")))
}

/// Runs `per_row` over every data row of the `eliminate`/`doctor` CSV
/// format, skipping blank lines, `#` comments, and a leading header.
fn for_each_csv_row(content: &str, mut per_row: impl FnMut(usize, &str)) {
    let mut seen_data = false;
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Skip a header row (the first non-comment line, wherever it is).
        if !seen_data && line.to_lowercase().starts_with("name") {
            continue;
        }
        seen_data = true;
        per_row(lineno + 1, line);
    }
}

/// Parses the `eliminate` command's CSV format strictly: any malformed
/// row aborts the parse, but the whole file is scanned first so the error
/// names *every* bad line at once — one fix-up pass instead of one per
/// re-run.
///
/// # Errors
///
/// Returns a usage error listing every malformed row with its line
/// number, or an error when no data rows are present.
pub fn parse_design_csv(content: &str) -> Result<Vec<DesignPoint>, CliError> {
    let mut points = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for_each_csv_row(content, |lineno, line| {
        match parse_design_row(lineno, line) {
            Ok(point) => points.push(point),
            Err(e) => errors.push(e.to_string()),
        }
    });
    if !errors.is_empty() {
        let mut msg = format!("{} malformed row(s):", errors.len());
        for e in &errors {
            msg.push_str("\n  ");
            msg.push_str(e);
        }
        return Err(CliError::Usage(msg));
    }
    if points.is_empty() {
        return Err(CliError::Usage("no design rows found".to_owned()));
    }
    Ok(points)
}

/// Parses the `eliminate` CSV format leniently: malformed rows are skipped
/// and reported in the returned [`DesignCsvReport`] instead of aborting
/// the parse.
///
/// # Errors
///
/// Returns an error only when *no* row parses (there is nothing to
/// continue with).
pub fn parse_design_csv_lenient(content: &str) -> Result<DesignCsvReport, CliError> {
    let mut report = DesignCsvReport::default();
    for_each_csv_row(content, |lineno, line| {
        match parse_design_row(lineno, line) {
            Ok(point) => report.points.push(point),
            Err(e) => report.skipped.push(e.to_string()),
        }
    });
    if report.points.is_empty() {
        return Err(CliError::Usage(format!(
            "no usable design rows found ({} malformed)",
            report.skipped.len()
        )));
    }
    Ok(report)
}

fn cmd_doctor(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba doctor [--trace <csv>] [--designs <csv>] \
                   [--policy <lenient|production>] [--grid <name>]\n\
                   Ingests messy CSVs and prints sanitize/repair reports.\n\
                   Trace CSV columns: time_s,ci_gco2e_per_kwh\n\
                   Design CSV columns: name,delay_s,energy_j,embodied_gco2e\n\
                   With --metrics and no inputs: runs a built-in self-check\n\
                   probe (sanitizer, fallback tiers, embodied cache, and\n\
                   supervision health: deadline sweep, checkpoint\n\
                   round-trip, panic isolation), prints the Prometheus\n\
                   text exposition of the registry it populated (self-\n\
                   validated), and dumps the registry as JSON lines.\n"
            .to_owned());
    }
    args.expect_only(&[
        "trace",
        "designs",
        "policy",
        "grid",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let mut out = String::new();
    if let Some(path) = args.get("trace") {
        doctor_trace(args, path, &mut out)?;
    }
    if let Some(path) = args.get("designs") {
        doctor_designs(path, &mut out)?;
    }
    if out.is_empty() {
        if args.flag("metrics") {
            doctor_self_check(&mut out)?;
        } else {
            return Err(CliError::Args(ArgError::Missing(
                "--trace <csv> and/or --designs <csv> (or --metrics for a self-check)",
            )));
        }
    }
    Ok(out)
}

/// The `doctor --metrics` self-check: drives a deliberately messy synthetic
/// trace through the sanitizer and a standard fallback chain, probes the
/// embodied-carbon cache, and reports tier health and cache hit rates. The
/// probe populates the same counters and structured events the real hot
/// paths emit, so the appended registry dump exercises the full pipeline.
fn doctor_self_check(out: &mut String) -> Result<(), CliError> {
    let _ = writeln!(out, "self-check: synthetic trace + fallback + cache probe");

    // A messy diurnal-ish trace: one NaN and one negative sample force the
    // sanitizer to repair (and emit a sanitize-rejection event).
    let samples = vec![
        (Seconds::new(0.0), CarbonIntensity::new(300.0)),
        (Seconds::from_hours(1.0), CarbonIntensity::new(f64::NAN)),
        (Seconds::from_hours(2.0), CarbonIntensity::new(-5.0)),
        (Seconds::from_hours(3.0), CarbonIntensity::new(410.0)),
        (Seconds::from_hours(4.0), CarbonIntensity::new(420.0)),
    ];
    let (trace, report) = TraceCi::sanitize(samples, &SanitizePolicy::lenient())?;
    let _ = writeln!(out, "  sanitizer: {report}");

    // Query the chain inside the trace span (primary tier) and far beyond
    // it (constant backstop), plus one exact integral across the boundary.
    let chain = FallbackCi::standard(trace, None, grids::US_AVERAGE)?;
    for t in [0.0, 7_200.0, 14_000.0] {
        let _ = chain.at(Seconds::new(t));
    }
    let _ = chain.at(Seconds::from_days(30.0));
    let _ = chain.integral_over(Seconds::new(0.0), Seconds::from_days(1.0));
    let _ = writeln!(out, "  {}", chain.health());

    // Embodied-cache probe: repeated lookups of the same shapes must hit.
    let cache = EmbodiedCache::new(EmbodiedModel::default());
    for config in design_space().iter().take(4) {
        let _ = cache.embodied(config)?;
        let _ = cache.embodied(config)?;
    }
    let stats = cache.stats();
    let _ = writeln!(
        out,
        "  embodied cache: {} hits / {} lookups ({} distinct shapes)",
        stats.hits,
        stats.lookups(),
        cache.len()
    );
    let _ = writeln!(
        out,
        "  status: {}",
        if stats.hits == stats.misses && !chain.health().tiers.is_empty() {
            "ok"
        } else {
            "UNEXPECTED (see counters above)"
        }
    );
    doctor_supervision(out)?;
    doctor_prometheus(out);
    Ok(())
}

/// The Prometheus-exposition section of the `doctor --metrics` self-check:
/// renders the registry the probes above populated in text exposition
/// format, prints it, and self-validates the rendering with the in-crate
/// validator (the same round-trip an external scraper would perform).
fn doctor_prometheus(out: &mut String) {
    let _ = writeln!(out, "prometheus exposition of the probe registry:");
    let text = cordoba_obs::render_prometheus();
    out.push_str(&text);
    match cordoba_obs::validate_prometheus_text(&text) {
        Ok(check) => {
            let _ = writeln!(
                out,
                "prometheus exposition: OK ({} families: {} counters, {} gauges, \
                 {} histograms; {} samples)",
                check.families, check.counters, check.gauges, check.histograms, check.samples
            );
        }
        Err(e) => {
            let _ = writeln!(out, "prometheus exposition: INVALID ({e})");
        }
    }
}

/// Marker carried by the doctor's deliberate probe panic so the filtering
/// hook can swallow its report without touching any other panic.
const PANIC_PROBE: &str = "[doctor-panic-probe]";

/// Installs (once, lazily) a panic hook that suppresses the default
/// report only for payloads carrying [`PANIC_PROBE`]; every other panic
/// still reports through the previous hook.
fn install_panic_probe_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let probe = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(PANIC_PROBE))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(PANIC_PROBE));
            if !probe {
                previous(info);
            }
        }));
    });
}

/// The supervision-health section of the `doctor --metrics` self-check:
/// a deadline-bounded micro-sweep, a checkpoint serialize/restore/resume
/// round-trip verified bit-for-bit against the uninterrupted sweep, and a
/// panic-isolation probe. Each exercises the corresponding supervision
/// counters, so the appended metrics dump carries the full family.
fn doctor_supervision(out: &mut String) -> Result<(), CliError> {
    let _ = writeln!(out, "supervision: deadline + checkpoint + panic probes");
    let points = vec![
        DesignPoint::new(
            "probe-a",
            Seconds::new(1.0),
            Joules::new(40.0),
            GramsCo2e::new(8000.0),
            SquareCentimeters::new(0.5),
        )?,
        DesignPoint::new(
            "probe-b",
            Seconds::new(0.7),
            Joules::new(70.0),
            GramsCo2e::new(11000.0),
            SquareCentimeters::new(0.8),
        )?,
    ];
    let counts = log_sweep(4, 8, 1);
    let rows = counts.len();

    // A zero-budget deadline must interrupt before any row.
    let deadline_ok = op_time_sweep_supervised_with_threads(
        points.clone(),
        counts.clone(),
        grids::US_AVERAGE,
        &Supervisor::with_deadline(Duration::ZERO),
        1,
    )?
    .partial()
    .is_some_and(|p| p.checkpoint.completed_rows() == 0);
    let _ = writeln!(
        out,
        "  deadline-bounded sweep: {}",
        if deadline_ok {
            "interrupts"
        } else {
            "DID NOT STOP"
        }
    );

    // Interrupt mid-sweep, round-trip the checkpoint through its text
    // form, resume, and demand the uninterrupted sweep's exact bits.
    let direct = OpTimeSweep::with_threads(points.clone(), counts.clone(), grids::US_AVERAGE, 1)?;
    let partial = op_time_sweep_supervised_with_threads(
        points,
        counts,
        grids::US_AVERAGE,
        &Supervisor::tripping_after(u64::try_from(rows / 2).unwrap_or(1)),
        1,
    )?
    .partial();
    let (roundtrip_ok, resume_ok) = match partial {
        Some(p) => {
            let restored = SweepCheckpoint::from_text(&p.checkpoint.to_text()).ok();
            let roundtrip = restored.as_ref() == Some(&p.checkpoint);
            let resumed = restored
                .and_then(|c| c.resume_with_threads(&Supervisor::unbounded(), 1).ok())
                .and_then(SupervisedSweep::complete);
            (roundtrip, resumed.as_ref() == Some(&direct))
        }
        None => (false, false),
    };
    let _ = writeln!(
        out,
        "  checkpoint round-trip: {}",
        if roundtrip_ok { "bit-exact" } else { "LOSSY" }
    );
    let _ = writeln!(
        out,
        "  interrupted resume: {}",
        if resume_ok {
            "bit-identical to uninterrupted sweep"
        } else {
            "DIVERGED"
        }
    );

    // Panic isolation: a deliberately panicking work unit must land as a
    // quarantined outcome with the process intact and its peers computed.
    install_panic_probe_filter();
    let items = [0u32, 1, 2];
    let run = cordoba_par::par_map_supervised_with(&items, 1, &Supervisor::unbounded(), |_, &x| {
        if x == 1 {
            // Deliberate: this probe exists to prove panics are isolated.
            panic!("{PANIC_PROBE} deliberate probe panic"); // cordoba-lint: allow(no-panic)
        }
        x * 2
    });
    let isolation_ok = run.is_complete()
        && matches!(run.outcomes.get(1), Some(Outcome::Panicked(_)))
        && run.outcomes.iter().filter(|o| o.done().is_some()).count() == 2;
    let _ = writeln!(
        out,
        "  panic isolation: {}",
        if isolation_ok {
            "quarantined (process intact)"
        } else {
            "NOT ISOLATED"
        }
    );
    let _ = writeln!(
        out,
        "  supervision status: {}",
        if deadline_ok && roundtrip_ok && resume_ok && isolation_ok {
            "ok"
        } else {
            "UNEXPECTED (see lines above)"
        }
    );
    Ok(())
}

fn cmd_trace_check(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba trace-check <trace.json>\n\
                   Validates a Chrome trace-event JSON file: parses the\n\
                   document, checks ph/ts/pid/tid fields, and verifies\n\
                   per-thread timestamp monotonicity.\n"
            .to_owned());
    }
    args.expect_only(&["threads", "trace-out", "profile-out", "metrics", "help"])?;
    let path = args
        .positional()
        .first()
        .ok_or(CliError::Args(ArgError::Missing("<trace.json> path")))?;
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let check = cordoba_obs::validate_chrome_trace(&content)
        .map_err(|e| CliError::Usage(format!("{path}: invalid Chrome trace: {e}")))?;
    Ok(format!(
        "{path}: OK ({} events: {} spans, {} counters, {} threads)\n",
        check.events, check.spans, check.counters, check.threads
    ))
}

/// The `profile` command: aggregates a captured Chrome trace into the
/// per-span-name self/total-time profile and prints it as a table.
fn cmd_profile(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba profile <trace.json> [--top <N>]\n\
                   Aggregates a Chrome trace (captured with --trace-out)\n\
                   into a deterministic per-span-name profile: call count,\n\
                   total time, self time (excluding children), and maximum\n\
                   single-span duration. --top caps the rows shown (20).\n"
            .to_owned());
    }
    args.expect_only(&[
        "top",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let path = args
        .positional()
        .first()
        .ok_or(CliError::Args(ArgError::Missing("<trace.json> path")))?;
    let top = args.get_u32("top", 20)?;
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let report = cordoba_obs::profile_chrome_trace(&content)
        .map_err(|e| CliError::Usage(format!("{path}: invalid Chrome trace: {e}")))?;
    Ok(format!("{path}:\n{}", report.to_table(top as usize)))
}

/// Sanitizes a `time_s,ci` trace CSV and reports every repair; diagnosis
/// never fails, so an unusable trace is reported rather than returned as
/// an error.
fn doctor_trace(args: &Args, path: &str, out: &mut String) -> Result<(), CliError> {
    let policy = match args.get("policy").unwrap_or("lenient") {
        "lenient" => SanitizePolicy::lenient(),
        "production" => SanitizePolicy::production(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown policy `{other}` (lenient | production)"
            )))
        }
    };
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let mut samples: Vec<(Seconds, CarbonIntensity)> = Vec::new();
    let mut unparseable: Vec<String> = Vec::new();
    for_each_csv_row(&content, |lineno, line| {
        // The trace header starts with `time...`, which `for_each_csv_row`
        // does not recognize; swallow it here.
        if samples.is_empty() && unparseable.is_empty() && line.to_lowercase().starts_with("time") {
            return;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed = match fields.as_slice() {
            [t, ci] => t
                .parse::<f64>()
                .and_then(|t| ci.parse::<f64>().map(|ci| (t, ci)))
                .ok(),
            _ => None,
        };
        match parsed {
            Some((t, ci)) => samples.push((Seconds::new(t), CarbonIntensity::new(ci))),
            None => unparseable.push(format!("line {lineno}: expected `time_s,ci`")),
        }
    });
    let _ = writeln!(
        out,
        "trace {path}: {} rows parsed, {} unparseable",
        samples.len(),
        unparseable.len()
    );
    for reason in &unparseable {
        let _ = writeln!(out, "  {reason}");
    }
    match TraceCi::sanitize(samples, &policy) {
        Ok((trace, report)) => {
            let _ = writeln!(out, "  {report}");
            let (from, until) = trace.span();
            let _ = writeln!(out, "  span: {from} .. {until}");
            let mean = trace.mean_exact(from, until);
            let _ = writeln!(out, "  mean CI over span (exact): {mean}");
            let _ = writeln!(
                out,
                "  status: {}",
                if report.is_clean() {
                    "clean"
                } else {
                    "DEGRADED (repairs applied)"
                }
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  status: UNUSABLE ({e})");
        }
    }
    Ok(())
}

/// The `replay` command: re-emits a stored run by hash, byte-identically,
/// without invoking the simulator.
fn cmd_replay(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok("cordoba replay <hash> --store <dir>\n\
                   re-emits the stored run identified by <hash> (printed by\n\
                   `dse --store` as `store: run <hash>`) without recomputing;\n\
                   combine with --trace-out to regenerate a Chrome trace\n"
            .to_owned());
    }
    args.expect_only(&[
        "store",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let [hash] = args.positional() else {
        return Err(CliError::Usage(
            "replay expects exactly one <hash> argument".to_owned(),
        ));
    };
    let key = StoreKey::from_hex(hash)
        .ok_or_else(|| CliError::Usage(format!("`{hash}` is not a run hash (32 hex digits)")))?;
    let dir = args
        .get("store")
        .ok_or_else(|| CliError::Usage("replay requires --store <dir>".to_owned()))?;
    let store = open_store(dir)?;
    let lines = store.get(RUN_KIND, key).ok_or_else(|| {
        CliError::Usage(format!(
            "no stored run {hash} in {dir}; re-run with `dse --store`"
        ))
    })?;
    Ok(lines.join("\n"))
}

/// The `cache` command: `inspect` lists the store's entries, `evict`
/// deletes them (all, or one `--kind`).
fn cmd_cache(args: &Args) -> Result<String, CliError> {
    if args.flag("help") {
        return Ok(
            "cordoba cache <inspect|evict> --store <dir> [--kind <kind>]\n\
                   inspect lists every stored entry (kind, hash, size);\n\
                   with --metrics it also prints the process-wide store\n\
                   hit/miss/write counters from the obs registry\n\
                   evict deletes entries; --kind restricts to one kind\n"
                .to_owned(),
        );
    }
    args.expect_only(&[
        "store",
        "kind",
        "threads",
        "trace-out",
        "profile-out",
        "metrics",
        "help",
    ])?;
    let [action] = args.positional() else {
        return Err(CliError::Usage(
            "cache expects exactly one action: inspect or evict".to_owned(),
        ));
    };
    let dir = args
        .get("store")
        .ok_or_else(|| CliError::Usage("cache requires --store <dir>".to_owned()))?;
    let store = open_store(dir)?;
    let mut out = String::new();
    match action.as_str() {
        "inspect" => {
            if args.get("kind").is_some() {
                return Err(CliError::Usage(
                    "--kind only applies to `cache evict`".to_owned(),
                ));
            }
            let entries = store.entries();
            let mut total = 0u64;
            for entry in &entries {
                total += entry.bytes;
                let _ = writeln!(out, "{:16} {} {:>8} B", entry.kind, entry.key, entry.bytes);
            }
            let _ = writeln!(
                out,
                "total: {} entries, {} B in {dir}",
                entries.len(),
                total
            );
            if args.flag("metrics") {
                let snapshot = cordoba_obs::counter_snapshot();
                let value = |name: &str| {
                    snapshot
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map_or(0, |&(_, v)| v)
                };
                let _ = writeln!(
                    out,
                    "store ops this process: {} hits, {} misses, {} writes",
                    value("events/store_hit"),
                    value("events/store_miss"),
                    value("events/store_write")
                );
            }
        }
        "evict" => {
            let removed = store.evict(args.get("kind"));
            match args.get("kind") {
                Some(kind) => {
                    let _ = writeln!(out, "evicted {removed} `{kind}` entries from {dir}");
                }
                None => {
                    let _ = writeln!(out, "evicted {removed} entries from {dir}");
                }
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown cache action `{other}`; expected inspect or evict"
            )));
        }
    }
    Ok(out)
}

/// Leniently parses a design CSV and reports the rows that were dropped.
fn doctor_designs(path: &str, out: &mut String) -> Result<(), CliError> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    match parse_design_csv_lenient(&content) {
        Ok(report) => {
            let _ = writeln!(
                out,
                "designs {path}: {} rows parsed, {} skipped",
                report.points.len(),
                report.skipped.len()
            );
            for reason in &report.skipped {
                let _ = writeln!(out, "  {reason}");
            }
            let _ = writeln!(
                out,
                "  status: {}",
                if report.skipped.is_empty() {
                    "clean"
                } else {
                    "DEGRADED (rows dropped)"
                }
            );
        }
        Err(e) => {
            let _ = writeln!(out, "designs {path}: status UNUSABLE ({e})");
        }
    }
    Ok(())
}

fn cmd_kernels(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["threads", "trace-out", "profile-out", "metrics", "help"])?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:16} {:>10} {:>12} {:>10}  heavy",
        "kernel", "GMACs", "act (MiB)", "wt (MiB)"
    );
    for k in KernelId::ALL {
        let d = k.descriptor();
        let _ = writeln!(
            out,
            "{:16} {:>10.1} {:>12.1} {:>10.1}  {}",
            k.short_name(),
            d.macs / 1e9,
            d.activation.to_mebibytes(),
            d.weights.to_mebibytes(),
            if k.is_activation_heavy() { "yes" } else { "no" }
        );
    }
    Ok(out)
}

fn cmd_tasks(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["threads", "trace-out", "profile-out", "metrics", "help"])?;
    let mut out = String::new();
    for task in Task::evaluation_suite() {
        let kernels: Vec<&str> = task.kernels().map(KernelId::short_name).collect();
        let _ = writeln!(out, "{:14} {}", task.name(), kernels.join(", "));
    }
    Ok(out)
}

fn cmd_grids(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["threads", "trace-out", "profile-out", "metrics", "help"])?;
    let mut out = String::new();
    for (name, ci) in [
        ("coal", grids::COAL),
        ("gas", grids::GAS),
        ("world", grids::WORLD_AVERAGE),
        ("us", grids::US_AVERAGE),
        ("solar", grids::SOLAR),
        ("hydro", grids::HYDRO),
        ("nuclear", grids::NUCLEAR),
        ("wind", grids::WIND),
    ] {
        let _ = writeln!(out, "{name:8} {ci}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let argv: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        run(&argv)
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run_str("help").unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn metrics_computes_tcdp() {
        let out = run_str("metrics --delay 0.5 --energy 2.0 --embodied 450 --tasks 1e8 --grid us")
            .unwrap();
        assert!(out.contains("tCDP"));
        assert!(out.contains("% embodied"));
        // Missing required option.
        let err = run_str("metrics --delay 0.5").unwrap_err();
        assert!(err.to_string().contains("--energy"));
        // Bad numbers.
        assert!(run_str("metrics --delay x --energy 1 --embodied 1").is_err());
    }

    #[test]
    fn metrics_rejects_unknown_options() {
        let err = run_str("metrics --delay 1 --energy 1 --embodied 1 --bogus 3").unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn threads_option_is_global_and_validated() {
        // Accepted on any command; results are thread-count invariant.
        let capped = run_str("provision --app m1 --threads 2").unwrap();
        let auto = run_str("provision --app m1").unwrap();
        assert_eq!(capped, auto);
        // Zero and non-numeric counts are rejected up front.
        for bad in ["0", "x", "-1"] {
            let err = run_str(&format!(
                "metrics --delay 1 --energy 1 --embodied 1 --threads {bad}"
            ))
            .unwrap_err();
            assert!(err.to_string().contains("threads"), "{bad}: {err}");
        }
    }

    #[test]
    fn dse_runs_for_every_task_name() {
        for task in ["all", "xr10", "ai10", "xr5", "ai5"] {
            let out = run_str(&format!("dse --task {task} --lo 5 --hi 8")).unwrap();
            assert!(out.contains("survivors:"), "{task}");
        }
        assert!(run_str("dse --task nope").is_err());
        assert!(run_str("dse --lo 8 --hi 5").is_err());
    }

    /// Serializes tests that enable the global tracing layer: one run's
    /// drain must not swallow another run's spans.
    fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Value of a named global counter (0 if it never registered).
    fn counter_value(name: &str) -> u64 {
        cordoba_obs::counter_snapshot()
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    #[test]
    fn dse_store_warm_and_replay_are_byte_identical() {
        let dir = std::env::temp_dir().join("cordoba-cli-test-store-dse");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = format!("dse --task xr5 --lo 5 --hi 7 --store {}", dir.display());
        let cold = run_str(&cmd).unwrap();
        assert!(cold.contains("survivors:"));
        let hash = cold
            .lines()
            .find_map(|l| l.strip_prefix("store: run "))
            .expect("stored run prints its hash")
            .to_owned();
        // Second run is served from the store, byte-for-byte.
        let warm = run_str(&cmd).unwrap();
        assert_eq!(cold, warm);
        // `replay <hash>` re-emits the identical bytes.
        let replayed = run_str(&format!("replay {hash} --store {}", dir.display())).unwrap();
        assert_eq!(replayed, cold);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_does_not_recompute() {
        let dir = std::env::temp_dir().join("cordoba-cli-test-store-replay");
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_str(&format!(
            "dse --task ai5 --lo 5 --hi 7 --store {}",
            dir.display()
        ))
        .unwrap();
        let hash = cold
            .lines()
            .find_map(|l| l.strip_prefix("store: run "))
            .unwrap()
            .to_owned();
        // With metrics on, replay must hit the store and leave the solver
        // counters untouched: nothing is recomputed.
        let beta_before = counter_value("core/beta_evaluations");
        let hits_before = counter_value("events/store_hit");
        let out = run_str(&format!(
            "replay {hash} --store {} --metrics",
            dir.display()
        ))
        .unwrap();
        assert!(out.starts_with(&cold), "replay re-emits the stored bytes");
        assert_eq!(counter_value("core/beta_evaluations"), beta_before);
        assert!(counter_value("events/store_hit") > hits_before);
        // Usage errors: malformed hash, missing --store, unknown hash.
        assert!(run_str("replay nothex --store /tmp/x").is_err());
        assert!(run_str(&format!("replay {hash}")).is_err());
        let missing = format!("{:032x}", 7u128);
        assert!(run_str(&format!("replay {missing} --store {}", dir.display())).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_inspect_and_evict_round_trip() {
        let dir = std::env::temp_dir().join("cordoba-cli-test-store-cache");
        let _ = std::fs::remove_dir_all(&dir);
        let cold = run_str(&format!(
            "dse --task xr10 --lo 5 --hi 7 --store {}",
            dir.display()
        ))
        .unwrap();
        let hash = cold
            .lines()
            .find_map(|l| l.strip_prefix("store: run "))
            .unwrap()
            .to_owned();
        // One run leaves one entry per memoized stage.
        let listing = run_str(&format!("cache inspect --store {}", dir.display())).unwrap();
        assert!(listing.contains("eval_space"));
        assert!(listing.contains("op_time_sweep"));
        assert!(listing.contains(&hash));
        assert!(listing.contains("total: 3 entries"));
        // Evicting one kind leaves the others; the replayed run is gone.
        let out = run_str(&format!("cache evict --store {} --kind run", dir.display())).unwrap();
        assert!(out.contains("evicted 1"));
        assert!(run_str(&format!("replay {hash} --store {}", dir.display())).is_err());
        let out = run_str(&format!("cache evict --store {}", dir.display())).unwrap();
        assert!(out.contains("evicted 2"));
        let listing = run_str(&format!("cache inspect --store {}", dir.display())).unwrap();
        assert!(listing.contains("total: 0 entries"));
        // Usage errors.
        assert!(run_str("cache inspect").is_err());
        assert!(run_str(&format!("cache defrost --store {}", dir.display())).is_err());
        assert!(run_str(&format!(
            "cache inspect --store {} --kind run",
            dir.display()
        ))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dse_store_conflicts_with_supervision() {
        for conflict in ["--deadline 5s", "--checkpoint /tmp/c", "--resume /tmp/c"] {
            let err = run_str(&format!("dse --task xr5 --store /tmp/s {conflict}")).unwrap_err();
            assert!(err.to_string().contains("--store"), "{conflict}: {err}");
        }
    }

    #[test]
    fn provision_reports_optimum() {
        let out = run_str("provision --app m1").unwrap();
        assert!(out.contains("<== optimal"));
        assert!(out.contains("4 cores"));
        assert!(run_str("provision --app nope").is_err());
    }

    #[test]
    fn stacking_reports_winner() {
        let out = run_str("stacking --share 0.08").unwrap();
        assert!(out.contains("3D_2K_8M"));
        let out = run_str("stacking --share 0.8").unwrap();
        assert!(out.contains("3D_2K_4M"));
    }

    #[test]
    fn grids_accepts_names_and_numbers() {
        assert!(grid_by_name("solar").is_ok());
        assert!((grid_by_name("123.5").unwrap().value() - 123.5).abs() < 1e-12);
        assert!(grid_by_name("unobtainium").is_err());
        let out = run_str("grids").unwrap();
        assert!(out.contains("coal") && out.contains("820"));
    }

    #[test]
    fn kernel_and_task_listings() {
        let out = run_str("kernels").unwrap();
        assert!(out.contains("SR (1024x1024)"));
        assert_eq!(out.lines().count(), 16); // header + 15 kernels
        let out = run_str("tasks").unwrap();
        assert!(out.contains("XR 5 kernels"));
    }

    #[test]
    fn eliminate_parses_csv() {
        let csv = "name,delay,energy,embodied\n\
                   lean,1.6,1.0,90\n\
                   wasteful,1.6,3.0,300\n\
                   beefy,0.5,4.0,420\n";
        let points = parse_design_csv(csv).unwrap();
        assert_eq!(points.len(), 3);
        let sweep = BetaSweep::run(&points);
        assert!(sweep.eliminated_names().contains(&"wasteful"));
        // Malformed rows.
        assert!(parse_design_csv("a,b\n").is_err());
        assert!(parse_design_csv("x,1,2,banana\n").is_err());
        assert!(parse_design_csv("\n# only comments\n").is_err());
    }

    #[test]
    fn eliminate_end_to_end_via_tempfile() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("designs.csv");
        std::fs::write(&path, "a,1.0,1.0,10\nb,2.0,2.0,20\n").unwrap();
        let out = run_str(&format!("eliminate --csv {}", path.display())).unwrap();
        assert!(out.contains("survivors"));
        assert!(out.contains('b'));
        let _ = std::fs::remove_file(path);
        assert!(run_str("eliminate --csv /nonexistent/x.csv").is_err());
        assert!(run_str("eliminate").is_err());
    }

    #[test]
    fn help_flags_per_command() {
        for cmd in [
            "metrics",
            "dse",
            "provision",
            "stacking",
            "eliminate",
            "doctor",
        ] {
            let out = run_str(&format!("{cmd} --help")).unwrap();
            assert!(out.contains("cordoba"), "{cmd}");
        }
    }

    #[test]
    fn lenient_csv_parser_reports_line_numbers() {
        let csv = "name,delay,energy,embodied\n\
                   good,1.0,1.0,10\n\
                   bad,row\n\
                   worse,1.0,banana,30\n\
                   fine,2.0,2.0,20\n";
        // Strict mode aborts on the first malformed row with its line.
        let err = parse_design_csv(csv).unwrap_err().to_string();
        assert!(err.contains("line 3"), "{err}");
        // Lenient mode keeps the good rows and reports each skip.
        let report = parse_design_csv_lenient(csv).unwrap();
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.skipped.len(), 2);
        assert!(report.skipped[0].contains("line 3"));
        assert!(report.skipped[1].contains("line 4"));
        assert!(report.skipped[1].contains("banana"));
        // A fully malformed file is still an error.
        assert!(parse_design_csv_lenient("junk,row\n").is_err());
    }

    #[test]
    fn lenient_eliminate_skips_bad_rows() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("messy.csv");
        std::fs::write(&path, "a,1.0,1.0,10\nnot a row\nb,2.0,2.0,20\n").unwrap();
        let arg = format!("eliminate --csv {}", path.display());
        assert!(run_str(&arg).is_err(), "strict mode must abort");
        let out = run_str(&format!("{arg} --lenient")).unwrap();
        assert!(out.contains("skipped 1 malformed rows"));
        assert!(out.contains("line 2"));
        assert!(out.contains("2 candidates"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn dse_lenient_matches_strict_on_clean_space() {
        let strict = run_str("dse --task xr5 --lo 5 --hi 7").unwrap();
        let lenient = run_str("dse --task xr5 --lo 5 --hi 7 --lenient").unwrap();
        // The built-in space is clean, so no quarantine block appears and
        // the sweep output is identical.
        assert_eq!(strict, lenient);
    }

    #[test]
    fn parse_duration_accepts_suffixes_and_rejects_garbage() {
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("0s").unwrap(), Duration::ZERO);
        assert_eq!(parse_duration("1.5").unwrap(), Duration::from_millis(1500));
        for bad in ["", "banana", "-3s", "nan", "9e99h", "5 s s"] {
            assert!(parse_duration(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn strict_csv_parser_reports_every_malformed_line() {
        let csv = "name,delay,energy,embodied\n\
                   good,1.0,1.0,10\n\
                   bad,row\n\
                   worse,1.0,banana,30\n\
                   fine,2.0,2.0,20\n";
        let err = parse_design_csv(csv).unwrap_err().to_string();
        assert!(err.contains("2 malformed row(s)"), "{err}");
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("banana"), "{err}");
    }

    #[test]
    fn dse_deadline_writes_checkpoint_and_resume_matches_direct_run() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.ckpt");
        let _ = std::fs::remove_file(&path);
        // A zero deadline interrupts before any row but after the
        // (unsupervised) evaluation stage, so the checkpoint always lands.
        let out = run_str(&format!(
            "dse --task xr5 --lo 5 --hi 7 --deadline 0s --checkpoint {}",
            path.display()
        ))
        .unwrap();
        assert!(
            out.contains("sweep interrupted (deadline-exceeded)"),
            "{out}"
        );
        assert!(out.contains("checkpoint written"), "{out}");
        let saved = std::fs::read_to_string(&path).unwrap();
        assert!(saved.starts_with("cordoba-sweep-checkpoint v1"), "{saved}");
        // Resuming completes the sweep and reproduces the direct run's
        // crossover table and elimination summary exactly.
        let resumed = run_str(&format!("dse --resume {}", path.display())).unwrap();
        let direct = run_str("dse --task xr5 --lo 5 --hi 7").unwrap();
        assert!(resumed.starts_with("resuming"), "{resumed}");
        let resumed_body: Vec<&str> = resumed.lines().skip(1).collect();
        let direct_body: Vec<&str> = direct.lines().skip(1).collect();
        assert_eq!(resumed_body, direct_body);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dse_deadline_without_checkpoint_is_an_error() {
        let err = run_str("dse --task xr5 --lo 5 --hi 7 --deadline 0s").unwrap_err();
        assert!(err.to_string().contains("--checkpoint"), "{err}");
    }

    #[test]
    fn dse_resume_validates_inputs() {
        // Resume with sweep-shaping options is contradictory.
        let err = run_str("dse --resume whatever.ckpt --task xr5").unwrap_err();
        assert!(err.to_string().contains("--task"), "{err}");
        // Missing and corrupt checkpoint files are usage errors.
        assert!(run_str("dse --resume /nonexistent/x.ckpt").is_err());
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ckpt");
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = run_str(&format!("dse --resume {}", path.display())).unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dse_rejects_bad_deadline() {
        let err = run_str("dse --task xr5 --deadline banana").unwrap_err();
        assert!(err.to_string().contains("duration"), "{err}");
    }

    #[test]
    fn dse_attribution_table_appends_to_output() {
        let out = run_str("dse --task xr5 --lo 5 --hi 7 --attribution -").unwrap();
        assert!(out.contains("survivors:"), "{out}");
        assert!(out.contains("attribution:"), "{out}");
        assert!(out.contains("embodied*D"), "{out}");
        assert!(out.contains("operational*D"), "{out}");
        // The base sweep output is unchanged by the ledger request.
        let plain = run_str("dse --task xr5 --lo 5 --hi 7").unwrap();
        assert!(out.starts_with(&plain), "ledger must append, not rewrite");
    }

    #[test]
    fn dse_attribution_json_reconciles_with_sweep() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("attrib.json");
        let _ = std::fs::remove_file(&path);
        let out = run_str(&format!(
            "dse --task ai5 --lo 5 --hi 7 --attribution {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("attribution written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = cordoba_obs::json::parse(&text).expect("ledger is valid JSON");
        for key in ["ci_use", "task_counts", "configs", "totals", "quarantined"] {
            assert!(doc.get(key).is_some(), "missing `{key}` in ledger");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dse_attribution_rides_along_with_store() {
        let dir = std::env::temp_dir().join("cordoba-cli-test-store-attrib");
        let _ = std::fs::remove_dir_all(&dir);
        let base = format!("dse --task xr5 --lo 5 --hi 7 --store {}", dir.display());
        let cold = run_str(&base).unwrap();
        // A warm attribution request bypasses the run memo but reuses the
        // stage memos underneath; the stored payload stays byte-identical
        // and the ledger appends after it.
        let with_ledger = run_str(&format!("{base} --attribution -")).unwrap();
        assert!(with_ledger.starts_with(&cold), "{with_ledger}");
        assert!(with_ledger.contains("attribution:"), "{with_ledger}");
        // A later plain warm run is still served from the memo unchanged.
        assert_eq!(run_str(&base).unwrap(), cold);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dse_attribution_conflicts_with_resume() {
        let err = run_str("dse --resume x.ckpt --attribution -").unwrap_err();
        assert!(err.to_string().contains("attribution"), "{err}");
    }

    #[test]
    fn profile_verb_aggregates_a_captured_trace() {
        let _guard = trace_test_lock();
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile-trace.json");
        let _ = std::fs::remove_file(&path);
        let out = run_str(&format!(
            "dse --task xr5 --lo 5 --hi 7 --trace-out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("trace written to"), "{out}");
        let table = run_str(&format!("profile {}", path.display())).unwrap();
        assert!(table.contains("span"), "{table}");
        assert!(table.contains("self_ns"), "{table}");
        assert!(table.contains("core/evaluate_space"), "{table}");
        // --top caps the table body.
        let capped = run_str(&format!("profile {} --top 1", path.display())).unwrap();
        assert!(capped.lines().count() < table.lines().count(), "{capped}");
        // Usage errors: missing path, unreadable file, invalid trace.
        assert!(run_str("profile").is_err());
        assert!(run_str("profile /nonexistent/trace.json").is_err());
        let bad = dir.join("not-a-trace.json");
        std::fs::write(&bad, "hello").unwrap();
        assert!(run_str(&format!("profile {}", bad.display())).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn profile_out_writes_profile_json() {
        let _guard = trace_test_lock();
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep-profile.json");
        let _ = std::fs::remove_file(&path);
        let out = run_str(&format!(
            "dse --task xr5 --lo 5 --hi 7 --profile-out {}",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("profile written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = cordoba_obs::json::parse(&text).expect("profile is valid JSON");
        for key in ["entries", "wall_ns", "spans", "threads"] {
            assert!(doc.get(key).is_some(), "missing `{key}` in profile");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn doctor_prometheus_probe_self_validates() {
        let out = run_str("doctor --metrics").unwrap();
        assert!(out.contains("# TYPE"), "{out}");
        assert!(out.contains("prometheus exposition: OK"), "{out}");
    }

    #[test]
    fn cache_inspect_metrics_prints_store_counters() {
        let dir = std::env::temp_dir().join("cordoba-cli-test-store-inspect");
        let _ = std::fs::remove_dir_all(&dir);
        run_str(&format!(
            "dse --task xr5 --lo 5 --hi 7 --store {}",
            dir.display()
        ))
        .unwrap();
        let plain = run_str(&format!("cache inspect --store {}", dir.display())).unwrap();
        assert!(!plain.contains("store ops this process"), "{plain}");
        let with_counters = run_str(&format!(
            "cache inspect --store {} --metrics",
            dir.display()
        ))
        .unwrap();
        assert!(
            with_counters.contains("store ops this process:"),
            "{with_counters}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn doctor_self_check_reports_supervision_health() {
        let out = run_str("doctor --metrics").unwrap();
        assert!(
            out.contains("supervision: deadline + checkpoint + panic probes"),
            "{out}"
        );
        assert!(out.contains("deadline-bounded sweep: interrupts"), "{out}");
        assert!(out.contains("checkpoint round-trip: bit-exact"), "{out}");
        assert!(
            out.contains("interrupted resume: bit-identical to uninterrupted sweep"),
            "{out}"
        );
        assert!(
            out.contains("panic isolation: quarantined (process intact)"),
            "{out}"
        );
        assert!(out.contains("supervision status: ok"), "{out}");
        // The probe populates the whole supervision counter family, so the
        // appended metrics dump must carry it.
        for counter in [
            "supervision_deadline_exceeded",
            "supervision_cancelled",
            "supervision_chunk_panic",
            "supervision_checkpoint_written",
            "supervision_checkpoint_restored",
        ] {
            assert!(out.contains(counter), "missing {counter} in:\n{out}");
        }
    }

    #[test]
    fn doctor_reports_trace_repairs() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        std::fs::write(
            &path,
            "time_s,ci\n0,400\n3600,nan\n7200,-5\n7200,410\n10800,420\nbroken line\n",
        )
        .unwrap();
        let out = run_str(&format!("doctor --trace {}", path.display())).unwrap();
        assert!(out.contains("5 rows parsed, 1 unparseable"), "{out}");
        assert!(out.contains("line 7"), "{out}");
        assert!(out.contains("DEGRADED"), "{out}");
        assert!(out.contains("span:"), "{out}");
        assert!(out.contains("mean CI over span (exact):"), "{out}");
        // Unknown policy is rejected; known policies both work.
        assert!(run_str(&format!("doctor --trace {} --policy bogus", path.display())).is_err());
        let out = run_str(&format!(
            "doctor --trace {} --policy production",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("sanitized"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn doctor_reports_design_rows_and_requires_input() {
        let dir = std::env::temp_dir().join("cordoba-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doctor-designs.csv");
        std::fs::write(&path, "a,1.0,1.0,10\nbad\n").unwrap();
        let out = run_str(&format!("doctor --designs {}", path.display())).unwrap();
        assert!(out.contains("1 rows parsed, 1 skipped"), "{out}");
        assert!(out.contains("DEGRADED"), "{out}");
        let _ = std::fs::remove_file(path);
        // No input at all is a usage error.
        assert!(run_str("doctor").is_err());
    }
}
