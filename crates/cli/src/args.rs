//! Minimal dependency-free argument parsing for the `cordoba` CLI.
//!
//! Supports `--flag`, `--key value`, `--key=value`, and positional
//! arguments, with typed accessors and unknown-option detection.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed argument list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or validating CLI arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given without a value where one is required.
    MissingValue(String),
    /// A value failed to parse into its expected type.
    InvalidValue {
        /// Option name.
        key: String,
        /// The raw value.
        value: String,
        /// Expected type description.
        expected: &'static str,
    },
    /// An option the command does not understand.
    UnknownOption(String),
    /// A required positional/option was absent.
    Missing(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingValue(k) => write!(f, "option --{k} requires a value"),
            Self::InvalidValue {
                key,
                value,
                expected,
            } => write!(f, "option --{key}: expected {expected}, got `{value}`"),
            Self::UnknownOption(k) => write!(f, "unknown option --{k}"),
            Self::Missing(what) => write!(f, "missing required {what}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program/subcommand names).
    ///
    /// Every `--key` consumes the following token as its value unless it is
    /// written as `--key=value` or the next token is another option; a
    /// trailing valueless `--key` is recorded as a flag.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Self {
        let mut args = Args::default();
        let tokens: Vec<String> = raw.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    args.options.insert(k.to_owned(), v.to_owned());
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options
                        .insert(stripped.to_owned(), tokens[i + 1].clone());
                    i += 1;
                } else {
                    args.flags.push(stripped.to_owned());
                }
            } else {
                args.positional.push(tok.clone());
            }
            i += 1;
        }
        args
    }

    /// The positional arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether `--name` was given as a valueless flag.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String value of `--name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// `f64` value of `--name`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] when the value does not parse.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::InvalidValue {
                key: name.to_owned(),
                value: v.to_owned(),
                expected: "a number",
            }),
        }
    }

    /// `u32` value of `--name`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] when the value does not parse.
    pub fn get_u32(&self, name: &str, default: u32) -> Result<u32, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::InvalidValue {
                key: name.to_owned(),
                value: v.to_owned(),
                expected: "an integer",
            }),
        }
    }

    /// Rejects any option/flag not in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownOption`] naming the first offender.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::UnknownOption(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let a = parse("task --tasks 1e8 --grid=solar --verbose");
        assert_eq!(a.positional(), ["task"]);
        assert_eq!(a.get("tasks"), Some("1e8"));
        assert_eq!(a.get("grid"), Some("solar"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn typed_accessors() {
        let a = parse("--tasks 1e8 --cores 6");
        assert_eq!(a.get_f64("tasks", 0.0).unwrap(), 1e8);
        assert_eq!(a.get_u32("cores", 0).unwrap(), 6);
        assert_eq!(a.get_f64("absent", 7.0).unwrap(), 7.0);
        assert_eq!(a.get_u32("absent", 9).unwrap(), 9);
    }

    #[test]
    fn invalid_values_error() {
        let a = parse("--tasks banana");
        let err = a.get_f64("tasks", 0.0).unwrap_err();
        assert!(matches!(err, ArgError::InvalidValue { .. }));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn unknown_option_detection() {
        let a = parse("--tasks 1 --bogus 2");
        assert!(a.expect_only(&["tasks"]).is_err());
        assert!(a.expect_only(&["tasks", "bogus"]).is_ok());
        let a = parse("--quiet");
        assert!(matches!(
            a.expect_only(&[]),
            Err(ArgError::UnknownOption(k)) if k == "quiet"
        ));
    }

    #[test]
    fn option_followed_by_option_is_a_flag() {
        let a = parse("--fast --tasks 3");
        assert!(a.flag("fast"));
        assert_eq!(a.get("tasks"), Some("3"));
    }

    #[test]
    fn error_display() {
        assert!(ArgError::MissingValue("x".into())
            .to_string()
            .contains("--x"));
        assert!(ArgError::Missing("task name")
            .to_string()
            .contains("task name"));
    }
}
