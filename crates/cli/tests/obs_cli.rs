//! End-to-end checks of the CLI's observability plumbing: `--trace-out`
//! emits schema-valid Chrome trace-event JSON, `--metrics` appends the
//! registry dump, `trace-check` validates a written file, and
//! `doctor --metrics` runs the self-check probe.
//!
//! The obs switches are process-global, so everything lives in one
//! `#[test]` in its own integration binary.

use cordoba_cli::run;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn trace_out_metrics_and_doctor_round_trip() {
    let trace_path =
        std::env::temp_dir().join(format!("cordoba_obs_cli_{}.json", std::process::id()));
    let trace_path = trace_path.to_str().unwrap().to_owned();

    // A small sweep with --trace-out writes a schema-valid Chrome trace.
    let out = run(&argv(&[
        "dse",
        "--task",
        "xr5",
        "--lo",
        "5",
        "--hi",
        "7",
        "--trace-out",
        &trace_path,
    ]))
    .unwrap();
    assert!(
        out.contains(&format!("trace written to {trace_path}")),
        "{out}"
    );
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let check = cordoba_obs::validate_chrome_trace(&text).unwrap();
    assert!(check.spans >= 1, "{check:?}");
    assert!(check.counters >= 1, "{check:?}");
    assert!(
        text.contains("core/evaluate_space"),
        "trace lacks the sweep span"
    );

    // The CLI's own validator agrees.
    let checked = run(&argv(&["trace-check", &trace_path])).unwrap();
    assert!(checked.contains("OK"), "{checked}");
    std::fs::remove_file(&trace_path).ok();
    assert!(run(&argv(&["trace-check", &trace_path])).is_err());

    // --metrics appends the registry as JSON lines after the report.
    let out = run(&argv(&[
        "dse",
        "--task",
        "xr5",
        "--lo",
        "5",
        "--hi",
        "7",
        "--metrics",
    ]))
    .unwrap();
    assert!(out.contains("{\"type\":\"histogram\""), "{out}");
    assert!(out.contains("\"name\":\"core/evaluate_space_ns\""), "{out}");

    // doctor --metrics runs the built-in probe and dumps counters.
    let out = run(&argv(&["doctor", "--metrics"])).unwrap();
    assert!(out.contains("self-check"), "{out}");
    assert!(out.contains("{\"type\":\"counter\""), "{out}");
    assert!(
        out.contains("\"name\":\"carbon/fallback/queries\""),
        "{out}"
    );

    // Flags are opt-in: after the runs above the switches are off again.
    assert!(!cordoba_obs::tracing_enabled());
    assert!(!cordoba_obs::metrics_enabled());

    // Plain doctor without inputs still explains what it needs.
    let err = run(&argv(&["doctor"])).unwrap_err();
    assert!(format!("{err:?}").contains("metrics"), "{err:?}");
}
