//! Criterion benches for the roofline accelerator simulator: per-kernel
//! simulation and full 15-kernel cost-table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Bounded measurement so the full harness completes in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

use cordoba_accel::prelude::*;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::units::Bytes;
use cordoba_workloads::kernel::KernelId;
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let cfg = AcceleratorConfig::on_die("a48", 16, Bytes::from_mebibytes(8.0)).unwrap();
    let kernels: Vec<_> = KernelId::ALL.iter().map(|k| k.descriptor()).collect();
    c.bench_function("sim/one_kernel", |b| {
        b.iter(|| black_box(simulate(black_box(&cfg), black_box(&kernels[0]))))
    });
    c.bench_function("sim/fifteen_kernels", |b| {
        b.iter(|| {
            for k in &kernels {
                black_box(simulate(&cfg, k));
            }
        })
    });
    c.bench_function("sim/full_cost_table", |b| {
        b.iter(|| black_box(full_cost_table(black_box(&cfg))))
    });
}

fn bench_embodied(c: &mut Criterion) {
    let model = EmbodiedModel::default();
    let stacked = study_configs();
    c.bench_function("sim/embodied_seven_stacks", |b| {
        b.iter(|| {
            for cfg in &stacked {
                black_box(cfg.embodied_carbon(&model).unwrap());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_simulate, bench_embodied
}
criterion_main!(benches);
