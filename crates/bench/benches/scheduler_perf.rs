//! Criterion benches for the VR SoC trace scheduler and provisioning sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Bounded measurement so the full harness completes in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

use cordoba_soc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let app = VrApp::b1();
    let soc = SocConfig::quest2();
    let deterministic = ActivityTrace::deterministic(&app);
    let mut rng = StdRng::seed_from_u64(7);
    let sampled = ActivityTrace::sampled(&mut rng, &app, 10_000);

    c.bench_function("scheduler/deterministic_trace", |b| {
        b.iter(|| black_box(schedule(black_box(&deterministic), &app, &soc)))
    });
    c.bench_function("scheduler/sampled_trace_10k_segments", |b| {
        b.iter(|| black_box(schedule(black_box(&sampled), &app, &soc)))
    });
}

fn bench_provisioning(c: &mut Criterion) {
    let deployment = Deployment::default();
    c.bench_function("scheduler/provisioning_sweep_all_tasks", |b| {
        b.iter(|| black_box(sweep(&VrApp::all_tasks(), &deployment).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_scheduler, bench_provisioning
}
criterion_main!(benches);
