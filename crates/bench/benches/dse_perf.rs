//! Criterion benches for the design-space-exploration engine: the paper
//! reports its end-to-end DSE over 121 configurations takes hours; the
//! analytical rebuild should complete in milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

/// Bounded measurement so the full harness completes in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;
use std::hint::black_box;

fn bench_evaluate_space(c: &mut Criterion) {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let mut group = c.benchmark_group("dse");
    for task in [Task::all_kernels(), Task::ai_5_kernels()] {
        group.bench_function(format!("evaluate_space/{}", task.name()), |b| {
            b.iter(|| evaluate_space(black_box(&configs), black_box(&task), &model).unwrap())
        });
    }
    group.finish();
}

fn bench_op_time_sweep(c: &mut Criterion) {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let points = evaluate_space(&configs, &Task::all_kernels(), &model).unwrap();
    let counts = log_sweep(4, 11, 4);
    c.bench_function("dse/op_time_sweep_121x29", |b| {
        b.iter(|| {
            let sweep =
                OpTimeSweep::new(black_box(points.clone()), counts.clone(), grids::US_AVERAGE)
                    .unwrap();
            black_box(sweep.elimination_fraction())
        })
    });
}

fn bench_robustness(c: &mut Criterion) {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let points = evaluate_space(&configs, &Task::xr_10_kernels(), &model).unwrap();
    let sweep = OpTimeSweep::new(points, log_sweep(4, 11, 4), grids::US_AVERAGE).unwrap();
    c.bench_function("dse/robust_choice", |b| {
        b.iter(|| black_box(sweep.robust_choice()))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_evaluate_space, bench_op_time_sweep, bench_robustness
}
criterion_main!(benches);
