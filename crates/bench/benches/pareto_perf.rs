//! Criterion benches for the Pareto-frontier and lower-convex-hull
//! elimination primitives (§IV-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Bounded measurement so the full harness completes in minutes.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

use cordoba::pareto::{lower_hull_indices, pareto_indices, Point2};
use std::hint::black_box;

fn synthetic_cloud(n: usize) -> Vec<Point2> {
    // Deterministic pseudo-random cloud (no RNG dependency needed).
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = next() * 100.0 + 1.0;
            let y = 100.0 / x + next() * 10.0;
            Point2::new(format!("p{i}"), x, y)
        })
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto");
    for n in [121usize, 1_000, 5_000] {
        let cloud = synthetic_cloud(n);
        group.bench_with_input(BenchmarkId::new("frontier", n), &cloud, |b, cloud| {
            b.iter(|| black_box(pareto_indices(black_box(cloud))))
        });
        group.bench_with_input(BenchmarkId::new("lower_hull", n), &cloud, |b, cloud| {
            b.iter(|| black_box(lower_hull_indices(black_box(cloud))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_pareto
}
criterion_main!(benches);
