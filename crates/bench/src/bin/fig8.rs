//! Regenerates the paper's Fig. 8: carbon-efficiency (tCDP⁻¹) trends of the
//! 121-accelerator design space across operational time for the five
//! evaluation tasks, plus the Fig. 8(f) optimal-vs-average comparison.
//!
//! Expected shape: only a handful of configurations are ever tCDP-optimal
//! per task (96-98 % of the space eliminated); optimal designs grow in
//! MACs/SRAM as operational time grows; XR optima carry more activation
//! SRAM than AI optima; specialized tasks beat the general "All kernels"
//! task; the optimal design beats the space average by large factors.

use cordoba::prelude::*;
use cordoba_accel::space::{config_by_name, design_space};
use cordoba_bench::{emit, heading};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;

fn main() {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let tasks = Task::evaluation_suite();
    let counts = log_sweep(4, 11, 4);

    let mut sweeps = Vec::new();
    heading("Fig. 8(a-e): tCDP-optimal designs vs operational time");
    let mut optima = Table::new(vec![
        "task".into(),
        "tasks_lifetime".into(),
        "optimal".into(),
        "mac_units".into(),
        "sram_mib".into(),
        "tcdp_inv".into(),
    ]);
    let mut elimination = Table::new(vec![
        "task".into(),
        "survivors".into(),
        "eliminated_pct".into(),
        "survivor_names".into(),
    ]);
    for task in &tasks {
        let points = evaluate_space(&configs, task, &model).expect("static space evaluates");
        let sweep = OpTimeSweep::new(points, counts.clone(), grids::US_AVERAGE)
            .expect("valid sweep inputs");
        let mut last = String::new();
        for n in 0..sweep.task_counts.len() {
            let best = &sweep.points[sweep.optimal_at(n)];
            if best.name != last {
                let cfg = config_by_name(&best.name).expect("space names are valid");
                optima.row(vec![
                    task.name().into(),
                    fmt_num(sweep.task_counts[n]),
                    best.name.clone(),
                    cfg.mac_units().to_string(),
                    fmt_num(cfg.sram().to_mebibytes()),
                    fmt_num(1.0 / sweep.tcdp_at(n, sweep.optimal_at(n))),
                ]);
                last = best.name.clone();
            }
        }
        let survivors = sweep.ever_optimal();
        elimination.row(vec![
            task.name().into(),
            survivors.len().to_string(),
            format!("{:.1}%", sweep.elimination_fraction() * 100.0),
            survivors.into_iter().collect::<Vec<_>>().join(" "),
        ]);
        sweeps.push((task.name().to_owned(), sweep));
    }
    emit(&optima, "fig8_optima");
    emit(&elimination, "fig8_elimination");
    println!("Paper: 96.7-98.3% of the 121 designs eliminated per task.");

    // ASCII rendering of Fig. 8(a): carbon efficiency (tCDP^-1) of the
    // survivors vs operational time for the "All kernels" task.
    let all = &sweeps[0].1;
    let mut chart = AsciiChart::new(64, 14).with_log_y();
    let survivors = all.ever_optimal();
    for name in &survivors {
        let idx = all.points.iter().position(|p| &p.name == name).unwrap();
        let series: Vec<f64> = (0..all.task_counts.len())
            .map(|n| 1.0 / all.tcdp_at(n, idx))
            .collect();
        chart.series(name.clone(), &series);
    }
    println!("Fig. 8(a) shape — tCDP^-1 vs operational time (1e4 -> 1e11), All kernels:");
    println!("{}", chart.render());

    heading("Fig. 8(f): optimal vs average carbon efficiency per task");
    let mut f = Table::new(vec![
        "tasks_lifetime".into(),
        "task".into(),
        "optimal_tcdp_inv".into(),
        "average_tcdp_inv".into(),
        "optimal_vs_average".into(),
    ]);
    let mut min_headroom = f64::INFINITY;
    for &n_target in &[1e4, 1e6, 1e8, 1e10] {
        for (name, sweep) in &sweeps {
            let idx = sweep.index_near(n_target);
            let best = sweep.tcdp_at(idx, sweep.optimal_at(idx));
            let avg = sweep.average_tcdp_at(idx);
            let headroom = sweep.optimal_vs_average_at(idx);
            min_headroom = min_headroom.min(headroom);
            f.row(vec![
                fmt_num(n_target),
                name.clone(),
                fmt_num(1.0 / best),
                fmt_num(1.0 / avg),
                fmt_ratio(headroom),
            ]);
        }
    }
    emit(&f, "fig8f");
    println!("Minimum optimal-vs-average benefit across tasks/op-times: {min_headroom:.2}x (paper: 2.3x).");

    // Specialization benefit, read as in the paper's Fig. 8(f): the
    // specialized task's optimal tCDP bar vs the general task's bar at
    // matched operational time.
    heading("Fig. 8(f) inset: specialization benefit vs the general task");
    let general = &sweeps[0].1;
    let mut s = Table::new(vec![
        "tasks_lifetime".into(),
        "specialized".into(),
        "benefit_vs_all_kernels".into(),
    ]);
    for &n_target in &[1e6, 1e10] {
        for (name, sweep) in &sweeps[1..] {
            let idx = sweep.index_near(n_target);
            let gidx = general.index_near(n_target);
            let spec = sweep.tcdp_at(idx, sweep.optimal_at(idx));
            let gen = general.tcdp_at(gidx, general.optimal_at(gidx));
            s.row(vec![fmt_num(n_target), name.clone(), fmt_ratio(gen / spec)]);
        }
    }
    emit(&s, "fig8_specialization");
    println!("Paper: specialization is up to 8.3x (AI 5, 1e6 inf) / 8.4x (XR 5, 1e10 inf) more carbon-efficient.");

    // Cross-hardware view: the specialized task run on the general task's
    // optimal accelerator versus its own optimum (the over-provisioning
    // penalty of generality).
    heading("Cross-hardware specialization: task on general-optimal vs own-optimal accelerator");
    let mut x = Table::new(vec![
        "tasks_lifetime".into(),
        "task".into(),
        "general_hw".into(),
        "own_hw".into(),
        "penalty".into(),
    ]);
    for &n_target in &[1e5, 1e7, 1e9] {
        for (name, sweep) in &sweeps[1..] {
            let idx = sweep.index_near(n_target);
            let gidx = general.index_near(n_target);
            let general_opt = &general.points[general.optimal_at(gidx)].name;
            let own = sweep.optimal_at(idx);
            let cross = sweep
                .points
                .iter()
                .position(|p| &p.name == general_opt)
                .expect("same config namespace");
            x.row(vec![
                fmt_num(n_target),
                name.clone(),
                general_opt.clone(),
                sweep.points[own].name.clone(),
                fmt_ratio(sweep.tcdp_at(idx, cross) / sweep.tcdp_at(idx, own)),
            ]);
        }
    }
    emit(&x, "fig8_cross_hardware");
}
