//! Regenerates the paper's Fig. 3: (a) total carbon versus clock frequency
//! and (b) normalized EDP and tCDP per IC, showing the EDP-optimal design
//! is "D" while the tCDP-optimal design is "E".

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};

fn main() {
    let scenario = Scenario::default();
    let (points, ctx) = design_points(&scenario);
    let ics = candidates();

    heading("Fig. 3(a): total carbon vs clock frequency");
    let mut a = Table::new(vec![
        "ic".into(),
        "clock_ghz".into(),
        "tC_gco2e".into(),
        "embodied_share".into(),
    ]);
    for (ic, p) in ics.iter().zip(&points) {
        a.row(vec![
            ic.name.clone(),
            fmt_num(ic.clock.to_gigahertz()),
            fmt_num(p.total_carbon(&ctx).value()),
            format!("{:.1}%", p.embodied_share(&ctx) * 100.0),
        ]);
    }
    emit(&a, "fig3a");

    heading("Fig. 3(b): normalized EDP and tCDP per IC");
    let min_edp = points
        .iter()
        .map(|p| p.edp().value())
        .fold(f64::INFINITY, f64::min);
    let min_tcdp = points
        .iter()
        .map(|p| p.tcdp(&ctx).value())
        .fold(f64::INFINITY, f64::min);
    let mut b = Table::new(vec![
        "ic".into(),
        "edp_normalized".into(),
        "tcdp_normalized".into(),
    ]);
    for p in &points {
        b.row(vec![
            p.name.clone(),
            fmt_num(p.edp().value() / min_edp),
            fmt_num(p.tcdp(&ctx).value() / min_tcdp),
        ]);
    }
    emit(&b, "fig3b");

    let edp_opt = argmin(&points, MetricKind::Edp, &ctx).expect("non-empty");
    let tcdp_opt = argmin(&points, MetricKind::Tcdp, &ctx).expect("non-empty");
    println!(
        "EDP-optimal: {} (paper: D) | tCDP-optimal: {} (paper: E)",
        edp_opt.name, tcdp_opt.name
    );
    println!(
        "The tCDP-optimal design trades away energy efficiency (EDP {} vs {}) for lower embodied pressure.",
        fmt_num(tcdp_opt.edp().value() / min_edp),
        fmt_num(edp_opt.edp().value() / min_edp)
    );
}
