//! Regenerates the paper's Table II: the carbon-aware six-IC analysis.
//!
//! Expected shape: IC "A" has the lowest tC and CCI but runs very slowly;
//! IC "E" has the best (lowest) tCDP and wins the fixed-carbon-budget
//! throughput scenario; throughput x tCDP is constant across ICs.

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};

fn main() {
    let scenario = Scenario::default();
    let rows = cordoba::case_ics::table_two(&scenario);

    heading("Table II: carbon-aware analysis of candidate ICs A-F");
    println!(
        "CI_use = {} gCO2e/kWh, C_emb = {} gCO2e/IC, lifetime = {:.2e} s, carbon budget = {:.3e} gCO2e\n",
        scenario.ci_use.value(),
        scenario.embodied_per_ic.value(),
        scenario.lifetime.value(),
        scenario.carbon_budget().value()
    );
    let mut table = Table::new(vec![
        "row".into(),
        "A".into(),
        "B".into(),
        "C".into(),
        "D".into(),
        "E".into(),
        "F".into(),
    ]);
    let mut push = |label: &str, f: &dyn Fn(&cordoba::case_ics::TableTwoRow) -> f64| {
        let mut cells = vec![label.to_owned()];
        cells.extend(rows.iter().map(|r| fmt_num(f(r))));
        table.row(cells);
    };
    push("[4] time per inf (s)", &|r| r.time_per_inference);
    push("[13] CCI_op (1e-5 g/inf)", &|r| r.cci_operational * 1e5);
    push("[14] CCI_emb (1e-5 g/inf)", &|r| r.cci_embodied * 1e5);
    push("[15] CCI (1e-5 g/inf)", &|r| r.cci * 1e5);
    push("[16] # infs under budget", &|r| r.budget_inferences);
    push("[17] throughput per service", &|r| r.budget_throughput);
    push("[18] tC (gCO2e)", &|r| r.total_carbon);
    push("[19] tCDP (gCO2e*s)", &|r| r.tcdp);
    emit(&table, "table2");

    let tcdp_best = rows
        .iter()
        .min_by(|a, b| a.tcdp.total_cmp(&b.tcdp))
        .expect("six rows");
    let tc_best = rows
        .iter()
        .min_by(|a, b| a.total_carbon.total_cmp(&b.total_carbon))
        .expect("six rows");
    println!(
        "tCDP-optimal IC: {} (paper: E) | min-tC IC: {} (paper: A)",
        tcdp_best.ic.name, tc_best.ic.name
    );
    let products: Vec<f64> = rows.iter().map(|r| r.budget_throughput * r.tcdp).collect();
    let spread = products.iter().cloned().fold(0.0f64, f64::max)
        / products.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "throughput x tCDP constant across ICs: max/min spread = {spread:.6} (paper: exactly 1)"
    );
}
