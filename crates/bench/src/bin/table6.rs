//! Regenerates the paper's Table VI: design knobs that trade energy against
//! delay (energy efficiency) versus knobs that trade energy efficiency
//! against embodied carbon (carbon efficiency).
//!
//! Expected shape: V_DD down / V_T up / width down improve energy at a
//! delay cost (embodied negligible or better); lifetime down and technology
//! node advance improve energy *and* delay but raise embodied carbon —
//! the paper's core argument for optimizing tCDP rather than EDP.

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};
use cordoba_carbon::embodied::{Die, EmbodiedModel};
use cordoba_carbon::fab::ProcessNode;
use cordoba_carbon::units::SquareCentimeters;
use cordoba_tech::prelude::*;

fn main() {
    heading("Table VI: design-knob directions from the device/scaling models");
    let effects = evaluate_knobs().expect("default models are valid");
    let mut t = Table::new(vec![
        "design knob".into(),
        "effect on E".into(),
        "effect on D".into(),
        "effect on C_emb".into(),
    ]);
    for e in &effects {
        t.row(vec![
            e.knob.name().into(),
            e.energy.to_string(),
            e.delay.to_string(),
            e.embodied.to_string(),
        ]);
    }
    emit(&t, "table6");

    heading("Supporting sweep: V_DD knob through the alpha-power model");
    let gate = GateModel::default();
    let mut v = Table::new(vec![
        "v_dd".into(),
        "delay_rel".into(),
        "energy_rel".into(),
        "edp_rel".into(),
        "ed2p_rel".into(),
    ]);
    for vdd in [0.45, 0.55, 0.65, 0.8, 1.0, 1.2] {
        let op = OperatingPoint::new(vdd, gate.device().v_t, 1.0).expect("above threshold");
        let ch = gate.characteristics(op);
        v.row(vec![
            format!("{vdd:.2}"),
            fmt_num(ch.delay),
            fmt_num(gate.energy_per_op(op)),
            fmt_num(gate.edp(op)),
            fmt_num(gate.ed2p(op)),
        ]);
    }
    emit(&v, "table6_vdd_sweep");

    heading("Supporting sweep: technology-node knob (fixed design ported across nodes)");
    let model = EmbodiedModel::default();
    let design = LogicDesign::new("probe", SquareCentimeters::new(1.0), ProcessNode::N28)
        .expect("positive area");
    let mut n = Table::new(vec![
        "node".into(),
        "area_cm2".into(),
        "energy_rel".into(),
        "delay_rel".into(),
        "edp_rel".into(),
        "embodied_per_die_g".into(),
        "embodied_per_cm2_g".into(),
    ]);
    for row in design.roadmap(&model) {
        let per_area = model.die_carbon(&Die {
            name: "unit".into(),
            area: SquareCentimeters::new(1.0),
            node: row.node,
        });
        n.row(vec![
            row.node.to_string(),
            fmt_num(row.area.value()),
            fmt_num(row.energy),
            fmt_num(row.delay),
            fmt_num(row.edp()),
            fmt_num(row.embodied.value()),
            fmt_num(per_area.value()),
        ]);
    }
    emit(&n, "table6_node_sweep");
    println!(
        "Shape: EDP improves monotonically with scaling, but embodied carbon per cm^2\n\
         rises — advancing the node trades energy efficiency against embodied carbon."
    );
}
