//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. **Yield model** (Murphy vs Poisson vs Seeds vs Bose-Einstein vs the
//!    paper's fixed 0.98): how much the embodied-carbon model moves.
//! 2. **`CI_use` profile** (constant vs diurnal vs decarbonizing): how much
//!    operational carbon moves over a 5-year deployment.
//! 3. **Elimination rule** (Pareto frontier vs lower convex hull): how many
//!    of the 121 designs each keeps.
//! 4. **SRAM spill-model sharpness** (refetch exponent): where the SR
//!    bandwidth-reduction factor lands.

use cordoba::prelude::*;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::sim::simulate;
use cordoba_accel::space::design_space;
use cordoba_bench::{emit, heading};
use cordoba_carbon::prelude::*;
use cordoba_workloads::kernel::KernelId;
use cordoba_workloads::task::Task;

fn main() {
    yield_ablation();
    ci_profile_ablation();
    elimination_rule_ablation();
    spill_sharpness_ablation();
    simulator_granularity_ablation();
}

fn simulator_granularity_ablation() {
    heading("Ablation 5: aggregate vs per-layer simulator (XR 10 kernels task delay)");
    use cordoba_accel::layered_sim::layered_cost_table;
    use cordoba_accel::sim::full_cost_table;
    use cordoba_accel::space::config_by_name;
    let task = Task::xr_10_kernels();
    let mut t = Table::new(vec![
        "config".into(),
        "aggregate_delay_s".into(),
        "layered_delay_s".into(),
        "ratio".into(),
    ]);
    for name in ["a1", "a37", "a48", "a72", "a84", "a108"] {
        let cfg = config_by_name(name).expect("valid config");
        let agg = full_cost_table(&cfg).task_delay(&task).expect("full table");
        let lay = layered_cost_table(&cfg)
            .task_delay(&task)
            .expect("full table");
        t.row(vec![
            name.into(),
            fmt_num(agg.value()),
            fmt_num(lay.value()),
            fmt_ratio(lay.value() / agg.value()),
        ]);
    }
    emit(&t, "ablation_granularity");
    println!("The per-layer path refines spill per layer but preserves config ordering.");
}

fn yield_ablation() {
    heading("Ablation 1: yield model vs embodied carbon (2.25 cm^2 die, 7 nm)");
    let die =
        Die::new("soc", SquareCentimeters::new(2.25), ProcessNode::N7).expect("positive area");
    let mut t = Table::new(vec![
        "yield_model".into(),
        "yield".into(),
        "embodied_gco2e".into(),
        "vs_murphy".into(),
    ]);
    let models = [
        YieldModel::Murphy,
        YieldModel::Poisson,
        YieldModel::Seeds,
        YieldModel::BoseEinstein { layers: 10 },
        YieldModel::fixed(0.98).expect("valid fraction"),
    ];
    let murphy = EmbodiedModel::default().die_carbon(&die);
    for ym in models {
        let model = EmbodiedModel::default().with_yield_model(ym);
        let carbon = model.die_carbon(&die);
        let y = ym.fraction(die.area, ProcessNode::N7.profile().defect_density);
        t.row(vec![
            ym.name().into(),
            format!("{y:.4}"),
            fmt_num(carbon.value()),
            fmt_ratio(carbon.value() / murphy.value()),
        ]);
    }
    emit(&t, "ablation_yield");
}

fn ci_profile_ablation() {
    heading("Ablation 2: CI_use profile vs operational carbon (8.3 W, 2 h/day, 5 y)");
    // Integrate over calendar time with a daily duty cycle, so multi-year
    // decarbonization trends act on the full deployment window.
    let usage = UsageProfile::from_daily_hours(5.0, 2.0).expect("valid usage");
    let power =
        DutyCycledPower::daily(Watts::new(8.3), Watts::ZERO, 2.0).expect("valid duty cycle");
    let life = usage.lifetime();
    let profiles: Vec<(&str, Box<dyn CiIntegral>)> = vec![
        (
            "constant US grid",
            Box::new(ConstantCi::new(grids::US_AVERAGE)),
        ),
        (
            "diurnal +/-140",
            Box::new(
                DiurnalCi::new(grids::US_AVERAGE, CarbonIntensity::new(140.0))
                    .expect("valid amplitude"),
            ),
        ),
        (
            "decarbonizing 5%/y",
            Box::new(TrendCi::new(grids::US_AVERAGE, 0.05).expect("valid decline")),
        ),
        (
            "decarbonizing 15%/y",
            Box::new(TrendCi::new(grids::US_AVERAGE, 0.15).expect("valid decline")),
        ),
        ("always solar", Box::new(ConstantCi::new(grids::SOLAR))),
    ];
    let baseline = operational_carbon_exact(&ConstantCi::new(grids::US_AVERAGE), &power, life);
    let mut t = Table::new(vec![
        "ci_profile".into(),
        "operational_gco2e".into(),
        "vs_constant".into(),
    ]);
    for (name, src) in &profiles {
        let c = operational_carbon_exact(src.as_ref(), &power, life);
        t.row(vec![
            (*name).into(),
            fmt_num(c.value()),
            fmt_ratio(c.value() / baseline.value()),
        ]);
    }
    emit(&t, "ablation_ci_profile");
}

fn elimination_rule_ablation() {
    heading("Ablation 3: Pareto frontier vs lower convex hull over the 121-design space");
    let points = evaluate_space(
        &design_space(),
        &Task::all_kernels(),
        &EmbodiedModel::default(),
    )
    .expect("static space evaluates");
    let sweep = BetaSweep::run(&points);
    let mut t = Table::new(vec![
        "rule".into(),
        "survivors".into(),
        "eliminated_pct".into(),
    ]);
    let n = points.len();
    t.row(vec![
        "pareto frontier".into(),
        sweep.pareto.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * (1.0 - sweep.pareto.len() as f64 / n as f64)
        ),
    ]);
    t.row(vec![
        "lower convex hull (beta support)".into(),
        sweep.support.len().to_string(),
        format!(
            "{:.1}%",
            100.0 * (1.0 - sweep.support.len() as f64 / n as f64)
        ),
    ]);
    emit(&t, "ablation_elimination");
    println!("The hull is a subset of the frontier: every hull design wins some beta,");
    println!("while frontier-only designs are non-dominated but never scalarization-optimal.");
}

fn spill_sharpness_ablation() {
    heading("Ablation 4: refetch exponent vs SR(1024) bandwidth-reduction factor (2 -> 32 MiB)");
    let kernel = KernelId::Sr1024.descriptor();
    let mut t = Table::new(vec![
        "refetch_exponent".into(),
        "traffic_at_2MiB_gb".into(),
        "traffic_at_32MiB_gb".into(),
        "reduction".into(),
    ]);
    for exponent in [1.2, 1.4, 1.6, 1.8] {
        let mut tuning = cordoba_accel::params::TechTuning::n7();
        tuning.refetch_exponent = exponent;
        let mk = |mib: f64| {
            AcceleratorConfig::with_tuning(
                format!("e{exponent}-{mib}"),
                16,
                cordoba_carbon::units::Bytes::from_mebibytes(mib),
                cordoba_accel::config::MemoryIntegration::OnDie,
                tuning,
            )
            .expect("valid config")
        };
        let at2 = simulate(&mk(2.0), &kernel);
        let at32 = simulate(&mk(32.0), &kernel);
        t.row(vec![
            format!("{exponent:.1}"),
            fmt_num(at2.dram_traffic.value() / 1e9),
            fmt_num(at32.dram_traffic.value() / 1e9),
            fmt_ratio(at2.dram_traffic.value() / at32.dram_traffic.value()),
        ]);
    }
    emit(&t, "ablation_spill");
    println!("Paper quotes 89.6x; the default exponent 1.6 lands in the same decade.");
}
