//! Regenerates the paper's Fig. 7: (a) tCDP versus die area and (b) EDP
//! versus die area over the 121-accelerator space.
//!
//! Expected shape: the tCDP-optimal design (red point) moves as operational
//! time changes and is never simply the minimum-area design; the
//! EDP-optimal design is invariant to operational time because EDP ignores
//! embodied carbon.

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_bench::{emit, heading};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;

fn main() {
    let points = evaluate_space(
        &design_space(),
        &Task::all_kernels(),
        &EmbodiedModel::default(),
    )
    .expect("static space evaluates");

    let op_times = [1e5, 1e7, 1e9, 1e11];
    heading("Fig. 7(a): tCDP vs die area across operational time");
    let mut a = Table::new(vec![
        "tasks".into(),
        "tcdp_optimal".into(),
        "optimal_area_cm2".into(),
        "min_area_design".into(),
        "min_area_cm2".into(),
        "min_area_is_tcdp_optimal".into(),
    ]);
    let min_area = points
        .iter()
        .min_by(|x, y| x.area.value().total_cmp(&y.area.value()))
        .expect("non-empty");
    for &n in &op_times {
        let ctx = OperationalContext::new(n, grids::US_AVERAGE).expect("valid tasks");
        let best = argmin(&points, MetricKind::Tcdp, &ctx).expect("non-empty");
        a.row(vec![
            fmt_num(n),
            best.name.clone(),
            fmt_num(best.area.value()),
            min_area.name.clone(),
            fmt_num(min_area.area.value()),
            (best.name == min_area.name).to_string(),
        ]);
    }
    emit(&a, "fig7a");

    heading("Fig. 7(b): EDP vs die area (EDP optimum invariant to operational time)");
    let mut b = Table::new(vec!["tasks".into(), "edp_optimal".into(), "edp_js".into()]);
    for &n in &op_times {
        let ctx = OperationalContext::new(n, grids::US_AVERAGE).expect("valid tasks");
        let best = argmin(&points, MetricKind::Edp, &ctx).expect("non-empty");
        b.row(vec![
            fmt_num(n),
            best.name.clone(),
            fmt_num(best.edp().value()),
        ]);
    }
    emit(&b, "fig7b");

    // The full scatter for both panels.
    let ctx_lo = OperationalContext::new(1e5, grids::US_AVERAGE).expect("valid tasks");
    let ctx_hi = OperationalContext::new(1e9, grids::US_AVERAGE).expect("valid tasks");
    let mut scatter = Table::new(vec![
        "design".into(),
        "area_cm2".into(),
        "edp_js".into(),
        "tcdp_at_1e5".into(),
        "tcdp_at_1e9".into(),
    ]);
    for p in &points {
        scatter.row(vec![
            p.name.clone(),
            fmt_num(p.area.value()),
            fmt_num(p.edp().value()),
            fmt_num(p.tcdp(&ctx_lo).value()),
            fmt_num(p.tcdp(&ctx_hi).value()),
        ]);
    }
    emit(&scatter, "fig7_scatter");
    println!("Shape: tCDP optimum moves with operational time; EDP optimum does not; neither equals min-area.");
}
