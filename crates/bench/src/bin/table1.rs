//! Regenerates the paper's Table I: the energy-aware six-IC analysis.
//!
//! Expected shape: IC "A" minimizes power for the 1000 inf/s constraint
//! despite being slowest; IC "D" has the best (lowest) EDP and wins the
//! fixed-energy-budget throughput scenario.

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};

fn main() {
    let scenario = Scenario::default();
    let rows = cordoba::case_ics::table_one(&scenario);

    heading("Table I: energy-aware analysis of candidate ICs A-F");
    let mut table = Table::new(vec![
        "row".into(),
        "A".into(),
        "B".into(),
        "C".into(),
        "D".into(),
        "E".into(),
        "F".into(),
    ]);
    let mut push = |label: &str, f: &dyn Fn(&cordoba::case_ics::TableOneRow) -> f64| {
        let mut cells = vec![label.to_owned()];
        cells.extend(rows.iter().map(|r| fmt_num(f(r))));
        table.row(cells);
    };
    push("[1] clock frequency (GHz)", &|r| r.ic.clock.to_gigahertz());
    push("[2] energy per cycle (nJ)", &|r| {
        r.ic.energy_per_cycle.value() * 1e9
    });
    push("[4] inf throughput (inf/s)", &|r| r.throughput);
    push("[5] # ICs for 1000 inf/s", &|r| {
        r.ics_for_required_throughput
    });
    push("[6] power of each IC (W)", &|r| r.power);
    push("[7] overall power (W)", &|r| r.overall_power);
    push("[8] energy per inference (J)", &|r| r.energy_per_inference);
    push("[9] # ICs given 9.5 J budget", &|r| r.ics_for_energy_budget);
    push("[10] budget throughput (inf/s)", &|r| r.budget_throughput);
    push("[11] EDP (J*s)", &|r| r.edp);
    emit(&table, "table1");

    let edp_best = rows
        .iter()
        .min_by(|a, b| a.edp.total_cmp(&b.edp))
        .expect("six rows");
    let power_best = rows
        .iter()
        .min_by(|a, b| a.overall_power.total_cmp(&b.overall_power))
        .expect("six rows");
    println!(
        "EDP-optimal IC: {} (paper: D) | min-power IC: {} (paper: A)",
        edp_best.ic.name, power_best.ic.name
    );
}
