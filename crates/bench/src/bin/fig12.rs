//! Regenerates the paper's Fig. 12: `E·D` versus `C_embodied·D` for the
//! seven 3D-integration configurations, with the §IV-B Pareto/Lagrange
//! elimination.
//!
//! Expected shape: five of the seven configurations are off the
//! Pareto-optimal curve and can be eliminated without knowing `CI_use(t)`;
//! the survivors are 3D_2K_4M and 3D_2K_8M, which are exactly the Fig. 11
//! winners of the embodied- and operational-dominant cases respectively.

use cordoba::prelude::*;
use cordoba_bench::stacking_study::StackingStudy;
use cordoba_bench::{emit, heading};

fn main() {
    let study = StackingStudy::run().expect("static study inputs are valid");
    let sweep = &study.beta_sweep;

    heading("Fig. 12: E*D vs C_emb*D with Pareto / beta-sweep elimination");
    let mut t = Table::new(vec![
        "config".into(),
        "c_emb_x_d".into(),
        "e_x_d".into(),
        "on_pareto".into(),
        "in_beta_support".into(),
    ]);
    for (i, p) in sweep.points.iter().enumerate() {
        t.row(vec![
            p.name.clone(),
            fmt_num(p.x),
            fmt_num(p.y),
            sweep.pareto.contains(&i).to_string(),
            sweep.support.contains(&i).to_string(),
        ]);
    }
    emit(&t, "fig12");

    println!(
        "Eliminated ({} of {}): {}",
        sweep.points.len() - sweep.pareto.len(),
        sweep.points.len(),
        study.beta_sweep.eliminated_names().join(", ")
    );
    println!(
        "Survivors: {} (paper: 3D_2K_4M and 3D_2K_8M)",
        study.pareto_survivors().join(", ")
    );

    // Demonstrate the Lagrange bridge: concrete beta values recover the
    // Fig. 11 winners.
    let ctx_emb = OperationalContext::us_grid(study.embodied_case_tasks);
    let ctx_op = OperationalContext::us_grid(study.operational_case_tasks);
    let beta_emb = beta_for_context(&ctx_emb);
    let beta_op = beta_for_context(&ctx_op);
    let name_for = |beta: f64| {
        sweep
            .optimal_for_beta(beta)
            .map(|i| sweep.points[i].name.clone())
            .unwrap_or_default()
    };
    println!(
        "beta (embodied case) = {:.3e} -> {} | beta (operational case) = {:.3e} -> {}",
        beta_emb,
        name_for(beta_emb),
        beta_op,
        name_for(beta_op)
    );
}
