//! Regenerates the paper's Fig. 2: energy per cycle versus clock frequency
//! for the six candidate ICs (the §III-A trade-off scatter).

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};

fn main() {
    heading("Fig. 2: energy/cycle vs clock frequency for ICs A-F");
    let mut table = Table::new(vec![
        "ic".into(),
        "clock_ghz".into(),
        "energy_per_cycle_nj".into(),
        "power_w".into(),
    ]);
    for ic in candidates() {
        table.row(vec![
            ic.name.clone(),
            fmt_num(ic.clock.to_gigahertz()),
            fmt_num(ic.energy_per_cycle.value() * 1e9),
            fmt_num(ic.power().value()),
        ]);
    }
    emit(&table, "fig2");
    println!("Shape: energy/cycle rises super-linearly with frequency (A -> F).");
}
