//! Smoke-mode performance record for the parallel sweep engine, the
//! exact-integration carbon kernel, and the observability layer.
//!
//! Times the headline sweeps with plain wall-clock measurement (the
//! vendored `criterion` is a stub, so this binary is the source of truth
//! for recorded numbers) and writes `BENCH_<N+1>.json` at the repository
//! root (where `N` is the highest committed record, so the current run
//! lands in `BENCH_6.json`): a flat map of bench name to median
//! nanoseconds. The highest committed record is also used for an
//! informational comparison (no gate — the files are usually recorded on
//! different machines). `--out <file>` overrides the output path.
//!
//! Each parallel or kernel bench is run twice — once pinned to one worker
//! and once with the default pool — so the thread-scaling ratio is visible
//! in the recorded file. The `integral/` and `uncertainty/` groups pair
//! each exact-kernel measurement with its sampled predecessor, so the
//! recorded file documents the kernel speedup directly. The `supervise/`
//! group pairs each headline pipeline with its supervised (unbounded)
//! sibling, documenting the cost of the cooperative stop checks and
//! per-item panic isolation when no deadline is set. The `obs/` group
//! records the cost of a disabled-registry counter bump next to the bare
//! loop it instruments, and the run's own `cordoba-obs` counter values are
//! appended as `obs/counter/...` entries so the recorded file shows what
//! the sweeps actually did.
//!
//! Usage: `cargo run -p cordoba-bench --release --bin bench_smoke \
//!     [-- --quick] [-- --out <file>]`
//! where `--quick` trims iteration counts for CI.

use cordoba::prelude::*;
use cordoba_accel::config::AcceleratorConfig;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::integral::CiIntegral;
use cordoba_carbon::intensity::{grids, CiSource, ConstantCi, SeasonalCi, TraceCi, TrendCi};
use cordoba_carbon::units::{CarbonIntensity, GramsCo2e, Joules, Seconds, SquareCentimeters};
use cordoba_par::supervise::Supervisor;
use cordoba_workloads::task::Task;
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Median wall-clock nanoseconds over `iters` calls of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Interleaved A/B medians for overhead ratios: alternates the two
/// closures sample by sample so a slow machine phase lands on both sides
/// equally — a ratio of two independently-taken medians cannot guarantee
/// that on a shared machine.
fn paired_median_ns(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (u128, u128) {
    let mut sa: Vec<u128> = Vec::with_capacity(iters.max(1));
    let mut sb: Vec<u128> = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        a();
        sa.push(start.elapsed().as_nanos());
        let start = Instant::now();
        b();
        sb.push(start.elapsed().as_nanos());
    }
    sa.sort_unstable();
    sb.sort_unstable();
    (sa[sa.len() / 2], sb[sb.len() / 2])
}

/// Deterministic pseudo-random point cloud (xorshift, no RNG dependency).
fn synthetic_cloud(n: usize) -> Vec<Point2> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = next() * 100.0 + 1.0;
            let y = 100.0 / x + next() * 10.0;
            Point2::new(format!("p{i}"), x, y)
        })
        .collect()
}

/// A deterministic `n`-sample hourly trace with grid-plausible values.
fn synthetic_trace(n: usize) -> TraceCi {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let samples: Vec<(Seconds, CarbonIntensity)> = (0..n)
        .map(|i| {
            // Diurnal swing plus bounded measurement noise — smooth enough
            // that the sampled baseline converges, like a real grid feed.
            let diurnal = (i as f64 / 24.0 * std::f64::consts::TAU).cos();
            (
                Seconds::from_hours(i as f64),
                CarbonIntensity::new(400.0 + 150.0 * diurnal + next() * 40.0),
            )
        })
        .collect();
    TraceCi::new(samples).expect("synthetic trace is monotonic")
}

/// The sampled interval-integral baseline the prefix-sum kernel replaced:
/// midpoint integration with `samples` `at()` lookups.
fn sampled_interval_integral(trace: &TraceCi, t0: Seconds, t1: Seconds, samples: usize) -> f64 {
    let dt = (t1.value() - t0.value()) / samples as f64;
    let mut sum = 0.0;
    for i in 0..samples {
        let tq = t0.value() + (i as f64 + 0.5) * dt;
        sum += trace.at(Seconds::new(tq)).value();
    }
    sum * dt
}

/// Reads a flat `{"name": nanoseconds, ...}` bench record; empty when the
/// file is missing or a line does not parse.
fn read_flat_json(path: &str) -> Vec<(String, u128)> {
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in content.lines() {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        if name.is_empty() {
            continue;
        }
        if let Ok(ns) = value.trim().trim_end_matches(',').parse::<u128>() {
            out.push((name.to_owned(), ns));
        }
    }
    out
}

/// Repository root holding the `BENCH_N.json` records.
const REPO_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

/// The highest `N` for which `BENCH_N.json` exists at the repository root.
fn latest_bench_generation() -> Option<u32> {
    let entries = std::fs::read_dir(REPO_ROOT).ok()?;
    entries
        .filter_map(Result::ok)
        .filter_map(|entry| {
            let name = entry.file_name();
            let name = name.to_str()?;
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u32>()
                .ok()
        })
        .max()
}

/// Mean wall-clock nanoseconds per call over a batch of `batch` calls.
fn per_call_ns(batch: u64, f: impl Fn()) -> u128 {
    let start = Instant::now();
    for _ in 0..batch {
        f();
    }
    start.elapsed().as_nanos() / u128::from(batch.max(1))
}

/// The disabled-overhead probe counter (satellite guard: a disabled
/// registry must cost a couple of relaxed loads per update, nothing more).
static OVERHEAD_PROBE: cordoba_obs::Counter = cordoba_obs::Counter::new("bench/overhead_probe");

/// Disabled-overhead probe for the labeled-counter update path.
static LABELED_PROBE: cordoba_obs::LabeledCounter =
    cordoba_obs::LabeledCounter::new("bench/labeled_probe", "tier", &["a", "b"]);

/// Disabled-overhead probe for the gauge update path.
static GAUGE_PROBE: cordoba_obs::Gauge = cordoba_obs::Gauge::new("bench/gauge_probe");
/// Counts loop iterations in the baseline arm so both arms do one atomic
/// add per iteration and the probe isolates the enablement-check cost.
static BASELINE_SINK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check_scaling = args.iter().any(|a| a == "--check-scaling");
    let out_override = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let iters = if quick { 3 } else { 11 };
    let heavy_iters = if quick { 1 } else { 5 };
    let thread_modes = [("threads=1", NonZeroUsize::new(1)), ("threads=auto", None)];
    let mut results: Vec<(String, u128)> = Vec::new();

    // dse/evaluate_space — 121 configs x all-kernels roofline characterization.
    let configs = design_space();
    let model = EmbodiedModel::default();
    let task = Task::all_kernels();
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        let ns = median_ns(iters, || {
            black_box(evaluate_space(black_box(&configs), &task, &model).unwrap());
        });
        results.push((format!("dse/evaluate_space/{label}"), ns));
    }

    // dse/op_time_sweep_121x29 — the Fig. 8 tCDP matrix.
    let points = evaluate_space(&configs, &task, &model).unwrap();
    let counts = log_sweep(4, 11, 4);
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        let ns = median_ns(iters, || {
            let sweep =
                OpTimeSweep::new(black_box(points.clone()), counts.clone(), grids::US_AVERAGE)
                    .unwrap();
            black_box(sweep.elimination_fraction());
        });
        results.push((format!("dse/op_time_sweep_121x29/{label}"), ns));
    }

    // scaling/* — thread-scaling sweep over a generated 1,000-config space
    // plus the 121-config seed space as the auto-vs-1 guard. The cost-hint
    // chunker keeps the seed space sequential (121 configs is below the
    // parallel-work threshold), so `threads=auto` must never lose to
    // `threads=1` there; the 1,000-config space is above it and records the
    // real fan-out. Speedup ratios are recorded x100 as integers so the
    // flat JSON stays integer-valued. On a single-core runner every
    // explicit thread count measures the same sequential chunk plus spawn
    // overhead; the ratios document that honestly rather than simulating a
    // wider machine.
    let wide_space: Vec<AcceleratorConfig> = (0..40u32)
        .flat_map(|u| (0..25u32).map(move |s| (u, s)))
        .map(|(u, s)| {
            AcceleratorConfig::on_die(
                format!("w{u}_{s}"),
                1 + u * 3,
                cordoba_carbon::units::Bytes::from_mebibytes(0.5 * f64::from(s + 1)),
            )
            .expect("generated config is valid")
        })
        .collect();
    assert_eq!(wide_space.len(), 1_000);
    let mut per_thread: Vec<(String, u128)> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let ns = median_ns(iters, || {
            black_box(
                evaluate_space_with_threads(black_box(&wide_space), &task, &model, threads)
                    .unwrap(),
            );
        });
        results.push((format!("scaling/evaluate_space_1000/threads={threads}"), ns));
        per_thread.push((format!("{threads}"), ns));
    }
    cordoba_par::set_threads(None);
    let auto_ns = median_ns(iters, || {
        black_box(evaluate_space(black_box(&wide_space), &task, &model).unwrap());
    });
    results.push((
        "scaling/evaluate_space_1000/threads=auto".to_owned(),
        auto_ns,
    ));
    per_thread.push(("auto".to_owned(), auto_ns));
    let one_thread_ns = per_thread[0].1;
    for (label, ns) in per_thread.iter().skip(1) {
        results.push((
            format!("scaling/evaluate_space_1000/speedup_{label}v1_x100"),
            one_thread_ns * 100 / (*ns).max(1),
        ));
    }
    // Batch (SoA) pipeline against the retained per-config scalar path,
    // interleaved so both arms see the same machine phases. Both run on one
    // worker: the ratio isolates the batch layout's effect (hoisted tuning
    // derivation, no per-config table allocation) from thread fan-out.
    let (scalar_ns, batch_ns) = paired_median_ns(
        iters,
        || {
            for config in &wide_space {
                black_box(accel_design_point(black_box(config), &task, &model).unwrap());
            }
        },
        || {
            black_box(
                evaluate_space_with_threads(black_box(&wide_space), &task, &model, 1).unwrap(),
            );
        },
    );
    results.push((
        "scaling/evaluate_space_1000/scalar_per_config".to_owned(),
        scalar_ns,
    ));
    results.push((
        "scaling/evaluate_space_1000/batch_threads=1".to_owned(),
        batch_ns,
    ));
    results.push((
        "scaling/evaluate_space_1000/batch_vs_scalar_x100".to_owned(),
        scalar_ns * 100 / batch_ns.max(1),
    ));
    // Seed-space guard: auto must not lose to an explicit single thread on
    // the 121-config space (the BENCH_6 regression this group exists to
    // prevent). Interleaved for the same shared-machine reason as above.
    let auto_workers = cordoba_par::effective_threads();
    let (seed_one_ns, seed_auto_ns) = paired_median_ns(
        iters * 3,
        || {
            black_box(evaluate_space_with_threads(black_box(&configs), &task, &model, 1).unwrap());
        },
        || {
            black_box(
                evaluate_space_with_threads(black_box(&configs), &task, &model, auto_workers)
                    .unwrap(),
            );
        },
    );
    results.push((
        "scaling/evaluate_space_121/threads=1".to_owned(),
        seed_one_ns,
    ));
    results.push((
        "scaling/evaluate_space_121/threads=auto".to_owned(),
        seed_auto_ns,
    ));
    results.push((
        "scaling/evaluate_space_121/auto_vs_1_x100".to_owned(),
        seed_auto_ns * 100 / seed_one_ns.max(1),
    ));

    // store/* — content-addressed persistent memoization over the same
    // 1,000-config space, layered like the CLI: sub-entries memoize the
    // space evaluation and the tCDP matrix (bit-identical restore), and a
    // run-level entry memoizes the whole pipeline's product — what a
    // repeated identical sweep is actually served from. Cold runs against
    // an evicted store (compute + write-behind); `warm` is the run-level
    // hit; `warm_decode` restores the full matrix from the sub-entries.
    // The run-level warm path must pay for itself: >=10x over cold,
    // asserted below.
    let store_root =
        std::env::temp_dir().join(format!("cordoba-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let store = cordoba_store::Store::open(&store_root).expect("temp store opens");
    let store_counts = log_sweep(4, 11, 4);
    let run_key = {
        let mut k = cordoba_store::KeyBuilder::new("bench-run");
        k.push_u64(wide_space.len() as u64);
        k.push_u64(store_counts.len() as u64);
        k.push_f64(grids::US_AVERAGE.value());
        k.finish()
    };
    let summarize = |sweep: &OpTimeSweep| -> Vec<String> {
        vec![
            format!("survivors {}", sweep.ever_optimal().len()),
            format!("robust {}", sweep.points[sweep.robust_choice()].name),
            format!(
                "eliminated_x1e6 {}",
                (sweep.elimination_fraction() * 1e6) as u64
            ),
        ]
    };
    let cold_store_ns = median_ns(iters, || {
        store.evict(None);
        let pts = evaluate_space_stored(black_box(&wide_space), &task, &model, &store).unwrap();
        let sweep =
            op_time_sweep_stored(pts, store_counts.clone(), grids::US_AVERAGE, &store).unwrap();
        store
            .put("bench-run", run_key, &summarize(&sweep))
            .expect("run entry writes");
    });
    let warm_store_ns = median_ns(iters, || {
        black_box(store.get("bench-run", run_key).expect("run entry is warm"));
    });
    let warm_decode_ns = median_ns(iters, || {
        let pts = evaluate_space_stored(black_box(&wide_space), &task, &model, &store).unwrap();
        black_box(
            op_time_sweep_stored(pts, store_counts.clone(), grids::US_AVERAGE, &store).unwrap(),
        );
    });
    results.push(("store/sweep_1000/cold".to_owned(), cold_store_ns));
    results.push(("store/sweep_1000/warm".to_owned(), warm_store_ns));
    results.push(("store/sweep_1000/warm_decode".to_owned(), warm_decode_ns));
    results.push((
        "store/sweep_1000/warm_speedup_x100".to_owned(),
        cold_store_ns * 100 / warm_store_ns.max(1),
    ));
    // Replay through the CLI layer: `dse --store` warms the run entry,
    // then `replay <hash>` serves the rendered output in one lookup.
    let dse_argv: Vec<String> = format!("dse --task xr5 --store {}", store_root.display())
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    let cold_cli = cordoba_cli::run(&dse_argv).expect("dse --store runs");
    let run_hash = cold_cli
        .lines()
        .find_map(|l| l.strip_prefix("store: run "))
        .expect("stored run prints its hash")
        .to_owned();
    let warm_cli_ns = median_ns(iters, || {
        black_box(cordoba_cli::run(black_box(&dse_argv)).unwrap());
    });
    let replay_argv: Vec<String> = format!("replay {run_hash} --store {}", store_root.display())
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    let replay_ns = median_ns(iters, || {
        black_box(cordoba_cli::run(black_box(&replay_argv)).unwrap());
    });
    results.push(("store/cli_dse/warm".to_owned(), warm_cli_ns));
    results.push(("store/cli_dse/replay".to_owned(), replay_ns));
    assert!(
        warm_store_ns * 10 <= cold_store_ns,
        "warm store sweep must beat cold by >=10x: warm {warm_store_ns}ns vs cold {cold_store_ns}ns"
    );
    let _ = std::fs::remove_dir_all(&store_root);

    // supervise/* — each headline pipeline against its supervised
    // (unbounded) sibling. With no deadline the added per-item cost is one
    // relaxed flag load plus a catch_unwind frame; target <=2% overhead on
    // the evaluate_space pair. The sweep pair widens the point set 8x so
    // each row carries ~2.4us of real work: on the bare 121-point rows
    // (~300ns each) the fixed per-row isolation cost and scheduler noise
    // would dominate the ratio. Note the sweep pair is no longer a pure
    // supervision probe: the unsupervised sweep streams entries straight
    // into the flat row-major matrix, while the checkpointable supervised
    // path must keep per-row storage (so interrupted rows can be saved and
    // resumed) and pays a one-time row merge at completion.
    let wide_points: Vec<_> = std::iter::repeat_n(points.clone(), 8).flatten().collect();
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        let workers = cordoba_par::effective_threads();
        let (plain, supervised) = paired_median_ns(
            iters * 3,
            || {
                black_box(
                    evaluate_space_with_threads(black_box(&configs), &task, &model, workers)
                        .unwrap(),
                );
            },
            || {
                let sup = Supervisor::unbounded();
                let eval = evaluate_space_supervised_with_threads(
                    black_box(&configs),
                    &task,
                    &model,
                    &sup,
                    workers,
                );
                black_box(eval.is_complete());
            },
        );
        results.push((
            format!("supervise/evaluate_space/unsupervised/{label}"),
            plain,
        ));
        results.push((
            format!("supervise/evaluate_space/supervised/{label}"),
            supervised,
        ));
        let (plain, supervised) = paired_median_ns(
            iters * 3,
            || {
                black_box(
                    OpTimeSweep::new(
                        black_box(wide_points.clone()),
                        counts.clone(),
                        grids::US_AVERAGE,
                    )
                    .unwrap(),
                );
            },
            || {
                let sup = Supervisor::unbounded();
                black_box(
                    op_time_sweep_supervised(
                        black_box(wide_points.clone()),
                        counts.clone(),
                        grids::US_AVERAGE,
                        &sup,
                    )
                    .unwrap(),
                );
            },
        );
        results.push((
            format!("supervise/op_time_sweep/unsupervised/{label}"),
            plain,
        ));
        results.push((
            format!("supervise/op_time_sweep/supervised/{label}"),
            supervised,
        ));
    }
    cordoba_par::set_threads(None);

    // pareto/frontier_10000 — sort-based skyline vs the all-pairs scan.
    let cloud = synthetic_cloud(10_000);
    let skyline = pareto_indices(&cloud);
    let naive = pareto_indices_naive(&cloud);
    assert_eq!(skyline, naive, "skyline and naive fronts must agree");
    results.push((
        "pareto/frontier_10000/skyline".to_owned(),
        median_ns(iters, || {
            black_box(pareto_indices(black_box(&cloud)));
        }),
    ));
    results.push((
        "pareto/frontier_10000/naive".to_owned(),
        median_ns(heavy_iters, || {
            black_box(pareto_indices_naive(black_box(&cloud)));
        }),
    ));

    // integral/trace_integral_10k_x256 — 256 interval integrals over a
    // 10k-sample trace: two prefix-table lookups each vs the 1024-lookup
    // midpoint baseline the kernel replaced. Single-threaded work; recorded
    // under both modes so the file shape matches the other groups.
    let trace = synthetic_trace(10_000);
    let (first, last) = trace.span();
    let span = last.value() - first.value();
    let intervals: Vec<(Seconds, Seconds)> = (0..256)
        .map(|i| {
            let a = first.value() + span * (i as f64 / 256.0) * 0.5;
            let b = (a + span * 0.25 + (i as f64 + 1.0) * 7.0).min(last.value());
            (Seconds::new(a), Seconds::new(b))
        })
        .collect();
    // Sanity: the two integrators must agree before being timed.
    for &(a, b) in &intervals {
        let exact = trace.integral_over(a, b).value();
        let approx = sampled_interval_integral(&trace, a, b, 1_024);
        let scale = exact.abs().max(1.0);
        assert!(
            (exact - approx).abs() / scale < 1e-2,
            "sampled baseline diverged from prefix sums"
        );
    }
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        results.push((
            format!("integral/trace_integral_10k_x256/exact/{label}"),
            median_ns(iters, || {
                let mut acc = 0.0;
                for &(a, b) in &intervals {
                    acc += trace.integral_over(black_box(a), black_box(b)).value();
                }
                black_box(acc);
            }),
        ));
        results.push((
            format!("integral/trace_integral_10k_x256/sampled_1024/{label}"),
            median_ns(iters, || {
                let mut acc = 0.0;
                for &(a, b) in &intervals {
                    acc += sampled_interval_integral(&trace, black_box(a), black_box(b), 1_024);
                }
                black_box(acc);
            }),
        ));
    }

    // uncertainty/source_mc_256 — 256 Monte Carlo draws over time-varying
    // sources: the exact kernel's O(1) lifetime means vs the 10k-lookup
    // sampled means each draw used to cost.
    let point = DesignPoint::new(
        "bench",
        Seconds::new(1e-3),
        Joules::new(0.5),
        GramsCo2e::new(500.0),
        SquareCentimeters::new(1.0),
    )
    .expect("valid bench point");
    let flat = ConstantCi::new(grids::US_AVERAGE);
    let trend = TrendCi::new(grids::COAL, 0.10).expect("valid trend");
    let seasonal = SeasonalCi::solar_rich();
    let sources: [&dyn CiIntegral; 3] = [&flat, &trend, &seasonal];
    let spec = SourceMonteCarloSpec::new(256, 42);
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        results.push((
            format!("uncertainty/source_mc_256/exact/{label}"),
            median_ns(iters, || {
                black_box(monte_carlo_source_tcdp(black_box(&point), &sources, &spec).unwrap());
            }),
        ));
        results.push((
            format!("uncertainty/source_mc_256/sampled_10000/{label}"),
            median_ns(heavy_iters, || {
                black_box(
                    monte_carlo_source_tcdp_sampled_with_threads(
                        black_box(&point),
                        &sources,
                        &spec,
                        10_000,
                        cordoba_par::effective_threads(),
                    )
                    .unwrap(),
                );
            }),
        ));
    }
    cordoba_par::set_threads(None);

    // obs/disabled_overhead — per-update cost of an instrumented counter
    // while the registry is disabled, next to a bare atomic add. Both arms
    // do one relaxed `fetch_add` per iteration; the instrumented arm adds
    // the enablement check every hot path pays when observability is off.
    cordoba_obs::set_metrics_enabled(false);
    let batch = if quick { 100_000 } else { 1_000_000 };
    results.push((
        "obs/disabled_overhead/baseline".to_owned(),
        per_call_ns(batch, || {
            BASELINE_SINK.fetch_add(black_box(1), std::sync::atomic::Ordering::Relaxed);
        }),
    ));
    results.push((
        "obs/disabled_overhead/instrumented".to_owned(),
        per_call_ns(batch, || {
            OVERHEAD_PROBE.add(black_box(1));
        }),
    ));
    results.push((
        "obs/disabled_overhead/labeled".to_owned(),
        per_call_ns(batch, || {
            LABELED_PROBE.incr(black_box(1));
        }),
    ));
    results.push((
        "obs/disabled_overhead/gauge".to_owned(),
        per_call_ns(batch, || {
            GAUGE_PROBE.set(black_box(1.0));
        }),
    ));

    // With the registry live, re-run the cache-sharing sweep and a β-solve
    // so the recorded file carries the counters those paths emit.
    cordoba_obs::set_metrics_enabled(true);
    let multi = evaluate_space_multi(&configs, std::slice::from_ref(&task), &model).unwrap();
    black_box(&multi);
    let beta = BetaSweep::run(&points);
    black_box(beta.solve_transitions(0.0, 1e4, 1e-3, 10_000).unwrap());
    for (name, value) in cordoba_obs::counter_snapshot() {
        results.push((format!("obs/counter/{name}"), u128::from(value)));
    }

    // obs/prom_render — cost of rendering the now-populated registry in
    // Prometheus text exposition format (what a scrape endpoint would pay).
    let rendered = cordoba_obs::render_prometheus();
    cordoba_obs::validate_prometheus_text(&rendered)
        .unwrap_or_else(|e| panic!("bench registry renders invalid exposition: {e}"));
    results.push((
        "obs/prom_render".to_owned(),
        median_ns(iters, || {
            black_box(cordoba_obs::render_prometheus());
        }),
    ));
    cordoba_obs::set_metrics_enabled(false);

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("  \"{name}\": {ns}{sep}\n"));
        println!("{name:<55} {ns:>14} ns");
    }
    json.push_str("}\n");
    let previous_generation = latest_bench_generation();
    let path = out_override.unwrap_or_else(|| {
        format!(
            "{REPO_ROOT}/BENCH_{}.json",
            previous_generation.map_or(1, |n| n + 1)
        )
    });
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");

    // Exact-vs-sampled kernel speedups, straight from this run's medians.
    println!("\nkernel speedups (sampled baseline / exact kernel):");
    let lookup = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, ns)| ns as f64)
    };
    for (group, exact, sampled) in [
        (
            "integral/trace_integral_10k_x256",
            "integral/trace_integral_10k_x256/exact",
            "integral/trace_integral_10k_x256/sampled_1024",
        ),
        (
            "uncertainty/source_mc_256",
            "uncertainty/source_mc_256/exact",
            "uncertainty/source_mc_256/sampled_10000",
        ),
    ] {
        for (label, _) in thread_modes {
            if let (Some(e), Some(s)) = (
                lookup(&format!("{exact}/{label}")),
                lookup(&format!("{sampled}/{label}")),
            ) {
                println!("  {group} [{label}]: {:.1}x", s / e.max(1.0));
            }
        }
    }

    // Thread-scaling summary for the batch pipeline, from this run.
    println!("\nthread scaling (1,000-config evaluate_space, vs threads=1):");
    if let Some(one) = lookup("scaling/evaluate_space_1000/threads=1") {
        for label in ["2", "4", "8", "auto"] {
            if let Some(ns) = lookup(&format!("scaling/evaluate_space_1000/threads={label}")) {
                println!(
                    "  threads={label:<4} {ns:>14.0} ns  ({:.2}x)",
                    one / ns.max(1.0)
                );
            }
        }
    }
    if let (Some(scalar), Some(batch)) = (
        lookup("scaling/evaluate_space_1000/scalar_per_config"),
        lookup("scaling/evaluate_space_1000/batch_threads=1"),
    ) {
        println!(
            "  batch vs scalar (1 worker): {:.2}x ({scalar:.0} -> {batch:.0} ns)",
            scalar / batch.max(1.0)
        );
    }
    if let (Some(one), Some(auto)) = (
        lookup("scaling/evaluate_space_121/threads=1"),
        lookup("scaling/evaluate_space_121/threads=auto"),
    ) {
        let ratio = auto / one.max(1.0);
        println!("  121-config seed, auto vs 1 thread: {ratio:.3}x (target <= 1.05x)");
        if check_scaling {
            assert!(
                ratio <= 1.05,
                "auto threads regressed the 121-config seed sweep: \
                 {auto:.0} ns auto vs {one:.0} ns single-thread ({ratio:.3}x > 1.05x)"
            );
            println!("  check-scaling: ok");
        }
    }

    // Supervised-vs-unsupervised overhead, straight from this run's
    // medians. The <=2% target applies to evaluate_space; the sweep pair
    // additionally carries the checkpointable path's per-row storage and
    // completion merge (see the supervise/* comment above).
    println!("\nsupervision overhead (supervised vs unsupervised, no deadline; evaluate_space target <=2%):");
    for group in ["supervise/evaluate_space", "supervise/op_time_sweep"] {
        for (label, _) in thread_modes {
            if let (Some(plain), Some(supervised)) = (
                lookup(&format!("{group}/unsupervised/{label}")),
                lookup(&format!("{group}/supervised/{label}")),
            ) {
                println!(
                    "  {group} [{label}]: {:+.1}%",
                    (supervised - plain) / plain.max(1.0) * 100.0
                );
            }
        }
    }

    // Informational comparison against the newest committed record; the
    // shared names are the carried-over sweep benches.
    let previous_path = previous_generation.map(|n| format!("{REPO_ROOT}/BENCH_{n}.json"));
    let previous = previous_path
        .as_deref()
        .map(read_flat_json)
        .unwrap_or_default();
    if previous.is_empty() {
        println!("\nno previous BENCH_N.json found; skipping comparison");
    } else {
        let previous_name = previous_path.as_deref().unwrap_or("BENCH_N.json");
        println!("\nvs {previous_name} (informational, not a gate):");
        for (name, old_ns) in &previous {
            if let Some(new_ns) = lookup(name) {
                println!(
                    "  {name:<45} {old_ns:>12} -> {new_ns:>12.0} ns ({:+.1}%)",
                    (new_ns - *old_ns as f64) / *old_ns as f64 * 100.0
                );
            }
        }
    }
}
