//! Smoke-mode performance record for the parallel sweep engine.
//!
//! Times the headline sweeps with plain wall-clock measurement (the
//! vendored `criterion` is a stub, so this binary is the source of truth
//! for recorded numbers) and writes `BENCH_3.json` at the repository
//! root: a flat map of bench name to median nanoseconds.
//!
//! Each parallel bench is run twice — once pinned to one worker and once
//! with the default pool — so the thread-scaling ratio is visible in the
//! recorded file. On a single-core runner the two entries are expected to
//! be close; the comparison is a record, not a regression gate.
//!
//! Usage: `cargo run -p cordoba-bench --release --bin bench_smoke [-- --quick]`
//! where `--quick` trims iteration counts for CI.

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Instant;

/// Median wall-clock nanoseconds over `iters` calls of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Deterministic pseudo-random point cloud (xorshift, no RNG dependency).
fn synthetic_cloud(n: usize) -> Vec<Point2> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let x = next() * 100.0 + 1.0;
            let y = 100.0 / x + next() * 10.0;
            Point2::new(format!("p{i}"), x, y)
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 3 } else { 11 };
    let heavy_iters = if quick { 1 } else { 5 };
    let thread_modes = [("threads=1", NonZeroUsize::new(1)), ("threads=auto", None)];
    let mut results: Vec<(String, u128)> = Vec::new();

    // dse/evaluate_space — 121 configs x all-kernels roofline characterization.
    let configs = design_space();
    let model = EmbodiedModel::default();
    let task = Task::all_kernels();
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        let ns = median_ns(iters, || {
            black_box(evaluate_space(black_box(&configs), &task, &model).unwrap());
        });
        results.push((format!("dse/evaluate_space/{label}"), ns));
    }

    // dse/op_time_sweep_121x29 — the Fig. 8 tCDP matrix.
    let points = evaluate_space(&configs, &task, &model).unwrap();
    let counts = log_sweep(4, 11, 4);
    for (label, threads) in thread_modes {
        cordoba_par::set_threads(threads);
        let ns = median_ns(iters, || {
            let sweep =
                OpTimeSweep::new(black_box(points.clone()), counts.clone(), grids::US_AVERAGE)
                    .unwrap();
            black_box(sweep.elimination_fraction());
        });
        results.push((format!("dse/op_time_sweep_121x29/{label}"), ns));
    }
    cordoba_par::set_threads(None);

    // pareto/frontier_10000 — sort-based skyline vs the all-pairs scan.
    let cloud = synthetic_cloud(10_000);
    let skyline = pareto_indices(&cloud);
    let naive = pareto_indices_naive(&cloud);
    assert_eq!(skyline, naive, "skyline and naive fronts must agree");
    results.push((
        "pareto/frontier_10000/skyline".to_owned(),
        median_ns(iters, || {
            black_box(pareto_indices(black_box(&cloud)));
        }),
    ));
    results.push((
        "pareto/frontier_10000/naive".to_owned(),
        median_ns(heavy_iters, || {
            black_box(pareto_indices_naive(black_box(&cloud)));
        }),
    ));

    let mut json = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("  \"{name}\": {ns}{sep}\n"));
        println!("{name:<45} {ns:>14} ns");
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(path, &json).expect("write BENCH_3.json");
    println!("wrote {path}");
}
