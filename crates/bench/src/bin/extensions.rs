//! Demonstrates the framework extensions the paper's conclusion calls for:
//!
//! 1. **System bill of materials** — memory/storage embodied carbon next to
//!    logic dice (ACT-style DRAM/NAND/HDD factors).
//! 2. **Lifetime workload mixes** — DSE over a blend of tasks instead of a
//!    single fixed task.
//! 3. **Two-factor elimination** — dropping designs when *both* `CI_use(t)`
//!    and `CI_fab` are unknown, via the 3-D Pareto front of
//!    (`materials·D`, `fab_energy·D`, `E·D`).
//! 4. **Carbon-aware DVFS** — the tCDP-optimal supply voltage as a function
//!    of operational lifetime.

use cordoba::prelude::*;
use cordoba_accel::sim::simulate;
use cordoba_accel::space::design_space;
use cordoba_accel::stacking::study_configs;
use cordoba_bench::{emit, heading};
use cordoba_carbon::prelude::*;
use cordoba_tech::dvfs::DvfsCurve;
use cordoba_tech::mosfet::GateModel;
use cordoba_workloads::kernel::KernelId;
use cordoba_workloads::task::Task;

fn main() {
    bom_study();
    mix_study();
    two_factor_study();
    dvfs_study();
}

fn bom_study() {
    heading("Extension 1: system BOM with memory/storage embodied carbon");
    let model = EmbodiedModel::default();
    let mut bom = SystemBom::new("vr-headset");
    bom.add_die(Die::new("xr2-soc", SquareCentimeters::new(2.25), ProcessNode::N7).unwrap());
    bom.add_memory(MemoryDevice::new(MemoryKind::Dram, 8.0).unwrap());
    bom.add_memory(MemoryDevice::new(MemoryKind::Nand, 256.0).unwrap());
    let mut t = Table::new(vec!["component".into(), "embodied_gco2e".into()]);
    t.row(vec![
        "SoC (2.25 cm^2, 7 nm)".into(),
        fmt_num(bom.logic_carbon(&model).value()),
    ]);
    for m in bom.memories() {
        t.row(vec![
            format!("{} {} GB", m.kind, m.capacity_gb),
            fmt_num(m.embodied_carbon().value()),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        fmt_num(bom.embodied_carbon(&model).value()),
    ]);
    emit(&t, "ext_bom");
    println!(
        "Memory/storage share of embodied carbon: {:.0}% — ignoring it understates tC substantially.",
        bom.memory_share(&model) * 100.0
    );
}

fn mix_study() {
    heading("Extension 2: DSE over a lifetime workload mix (60% AI-5 / 40% XR-5)");
    let mix = LifetimeMix::new(vec![
        (Task::ai_5_kernels(), 0.6),
        (Task::xr_5_kernels(), 0.4),
    ])
    .expect("valid mix");
    let points = mix
        .evaluate_space(&design_space(), &EmbodiedModel::default())
        .expect("static space evaluates");
    let sweep =
        OpTimeSweep::new(points, log_sweep(4, 11, 2), grids::US_AVERAGE).expect("valid sweep");
    let mut t = Table::new(vec!["tasks_lifetime".into(), "optimal".into()]);
    let mut last = String::new();
    for n in 0..sweep.task_counts.len() {
        let best = &sweep.points[sweep.optimal_at(n)];
        if best.name != last {
            t.row(vec![fmt_num(sweep.task_counts[n]), best.name.clone()]);
            last = best.name.clone();
        }
    }
    emit(&t, "ext_mix");
    println!(
        "Mix '{}' eliminates {:.1}% of the space; its optima sit between the AI-only and XR-only optima.",
        mix.name(),
        sweep.elimination_fraction() * 100.0
    );
}

fn two_factor_study() {
    heading("Extension 3: elimination with unknown CI_use AND CI_fab (3D stacking study)");
    let model = EmbodiedModel::default();
    let kernel = KernelId::Sr512.descriptor();
    let candidates: Vec<_> = study_configs()
        .iter()
        .map(|cfg| {
            let sim = simulate(cfg, &kernel);
            let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
            let point = DesignPoint::new(
                cfg.name(),
                sim.latency,
                energy,
                cfg.embodied_carbon(&model).unwrap(),
                cfg.total_area(),
            )
            .unwrap();
            (point, cfg.embodied_breakdown(&model).unwrap())
        })
        .collect();
    let two = TwoFactorSweep::run(&candidates);
    let mut t = Table::new(vec![
        "config".into(),
        "materials_x_d".into(),
        "fab_energy_x_d".into(),
        "e_x_d".into(),
        "survives".into(),
    ]);
    for (i, p) in two.points.iter().enumerate() {
        t.row(vec![
            p.name.clone(),
            fmt_num(p.objectives[0]),
            fmt_num(p.objectives[1]),
            fmt_num(p.objectives[2]),
            two.pareto.contains(&i).to_string(),
        ]);
    }
    emit(&t, "ext_two_factor");
    println!(
        "Survivors for ANY (CI_fab, CI_use) pair: {:?} ({:.0}% eliminated)",
        two.surviving_names(),
        two.elimination_fraction() * 100.0
    );
}

fn dvfs_study() {
    heading("Extension 4: carbon-aware DVFS — tCDP-optimal V_DD vs operational lifetime");
    let curve = DvfsCurve::new(
        GateModel::default(),
        Hertz::from_gigahertz(1.5),
        Joules::from_nanojoules(1.0),
        Watts::new(0.2),
    );
    let embodied = GramsCo2e::new(2_000.0);
    let mut t = Table::new(vec![
        "tasks_lifetime".into(),
        "optimal_v_dd".into(),
        "frequency_ghz".into(),
    ]);
    for tasks in [1.0, 1e4, 1e6, 1e8, 1e10] {
        let p = curve
            .tcdp_optimal_point(5e8, embodied, tasks, grids::US_AVERAGE, 0.5, 1.15, 48)
            .expect("valid sweep");
        t.row(vec![
            fmt_num(tasks),
            format!("{:.3}", p.v_dd),
            format!("{:.2}", p.frequency.to_gigahertz()),
        ]);
    }
    emit(&t, "ext_dvfs");
    println!(
        "Embodied-dominant lifetimes run flat-out (minimize D);\n\
         operational-dominant lifetimes settle near the EDP-optimal voltage."
    );
}
