//! Regenerates the paper's Fig. 10: carbon efficiency of VR tasks on a
//! Quest-2-class SoC versus CPU core count (4-8), with stars at the
//! tCDP-optimal configuration.
//!
//! Expected shape: M-1 (media) is optimal at 4 cores with ~1.25x tCDP
//! improvement; B-1 and SG-1 suffer degraded tCDP at 4 cores due to higher
//! TLP; even "All Tasks" improves ~1.08x at 5 cores.

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};
use cordoba_soc::prelude::*;

fn main() {
    let deployment = Deployment::default();
    let mut apps = VrApp::studied_tasks();
    apps.push(VrApp::all_tasks());

    heading("Fig. 10: tCDP^-1 vs CPU core count per VR task");
    let mut table = Table::new(vec![
        "task".into(),
        "tlp".into(),
        "4-core".into(),
        "5-core".into(),
        "6-core".into(),
        "7-core".into(),
        "8-core".into(),
        "optimal".into(),
        "improvement_vs_8".into(),
    ]);
    for app in &apps {
        let rows = sweep(app, &deployment).expect("valid deployment");
        let mut cells = vec![app.name.clone(), format!("{:.2}", app.tlp())];
        // Normalize efficiency to the 8-core baseline for readability.
        let base = rows
            .iter()
            .find(|r| r.cores == 8)
            .expect("sweep includes 8 cores")
            .tcdp
            .value();
        for r in &rows {
            cells.push(fmt_num(base / r.tcdp.value()));
        }
        let best = optimal_cores(&rows);
        cells.push(format!("{best}-core"));
        cells.push(fmt_ratio(improvement_over_8core(&rows)));
        table.row(cells);
    }
    emit(&table, "fig10");
    println!(
        "Paper: M-1 optimal at 4 cores (1.25x); B-1/SG-1 degraded at 4 cores;\n\
         All Tasks improves 1.08x at 5 cores. TLP range 3.52-4.15."
    );
}
