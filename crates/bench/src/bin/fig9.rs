//! Regenerates the paper's Fig. 9: tCDP normalized to the per-operational-
//! time optimum, and the robust-design selection.
//!
//! Expected shape: the design optimal at short operational times degrades
//! heavily at long ones (the paper's a1 is up to 12.5x worse at 1e11
//! inferences); a mid-sized design has the best *average* normalized tCDP
//! and is the robust choice under usage uncertainty.

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_bench::{emit, heading};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_workloads::task::Task;

fn main() {
    let configs = design_space();
    let model = EmbodiedModel::default();
    let counts = log_sweep(4, 11, 4);

    heading("Fig. 9: normalized tCDP vs operational time and robust choices");
    let mut robust = Table::new(vec![
        "task".into(),
        "early_optimal".into(),
        "late_optimal".into(),
        "early_design_worst_case".into(),
        "robust_choice".into(),
        "robust_avg_normalized_tcdp".into(),
    ]);
    let mut curves = Table::new(vec![
        "task".into(),
        "design".into(),
        "tasks_lifetime".into(),
        "tcdp_normalized".into(),
    ]);
    for task in Task::evaluation_suite() {
        let points = evaluate_space(&configs, &task, &model).expect("static space evaluates");
        let sweep = OpTimeSweep::new(points, counts.clone(), grids::US_AVERAGE)
            .expect("valid sweep inputs");
        let early = sweep.optimal_at(0);
        let late = sweep.optimal_at(sweep.task_counts.len() - 1);
        let robust_idx = sweep.robust_choice();
        // Worst-case degradation of the early specialist across the sweep.
        let worst_early = (0..sweep.task_counts.len())
            .map(|n| sweep.normalized_at(n)[early])
            .fold(0.0f64, f64::max);
        robust.row(vec![
            task.name().into(),
            sweep.points[early].name.clone(),
            sweep.points[late].name.clone(),
            fmt_ratio(worst_early),
            sweep.points[robust_idx].name.clone(),
            fmt_num(sweep.robustness_score(robust_idx)),
        ]);
        // Emit curves for the interesting designs.
        let mut interesting = vec![early, late, robust_idx];
        interesting.dedup();
        for &p in &interesting {
            for n in (0..sweep.task_counts.len()).step_by(4) {
                curves.row(vec![
                    task.name().into(),
                    sweep.points[p].name.clone(),
                    fmt_num(sweep.task_counts[n]),
                    fmt_num(sweep.normalized_at(n)[p]),
                ]);
            }
        }
    }
    emit(&robust, "fig9_robust");
    emit(&curves, "fig9_curves");

    // ASCII rendering of the "All kernels" normalized-tCDP curves: the
    // early specialist degrades rightward, the late specialist leftward,
    // the robust choice stays flat.
    let points =
        evaluate_space(&configs, &Task::all_kernels(), &model).expect("static space evaluates");
    let sweep = OpTimeSweep::new(points, counts, grids::US_AVERAGE).expect("valid sweep");
    let mut chart = AsciiChart::new(64, 12).with_log_y();
    let mut interesting = vec![
        sweep.optimal_at(0),
        sweep.robust_choice(),
        sweep.optimal_at(sweep.task_counts.len() - 1),
    ];
    interesting.dedup();
    for p in interesting {
        let series: Vec<f64> = (0..sweep.task_counts.len())
            .map(|n| sweep.normalized_at(n)[p])
            .collect();
        chart.series(sweep.points[p].name.clone(), &series);
    }
    println!("Fig. 9 shape — normalized tCDP vs operational time (1e4 -> 1e11), All kernels:");
    println!("{}", chart.render());
    println!(
        "Paper: for All kernels, the short-lifetime optimum (a1) is up to 12.5x\n\
         worse at 1e11 inferences; robust picks (a38/a48/a23/a12) have the best\n\
         average normalized tCDP across operational time."
    );
}
