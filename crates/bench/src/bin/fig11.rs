//! Regenerates the paper's Fig. 11: tCDP benefits of 3D stacking on the
//! SR(512x512) kernel.
//!
//! Expected shape: 3D stacking beats the 2D baseline in both the
//! embodied-carbon-dominant and operational-carbon-dominant cases;
//! 3D_2K_4M wins the embodied case (paper: 1.08x) and 3D_2K_8M wins the
//! operational case (paper: 6.9x), with the operational-case benefit much
//! larger.

use cordoba::prelude::*;
use cordoba_bench::stacking_study::StackingStudy;
use cordoba_bench::{emit, heading};

fn main() {
    let study = StackingStudy::run().expect("static study inputs are valid");

    heading("Fig. 11(a): configurations");
    let mut a = Table::new(vec![
        "config".into(),
        "delay_s".into(),
        "energy_j".into(),
        "embodied_gco2e".into(),
        "area_cm2".into(),
    ]);
    for row in &study.rows {
        a.row(vec![
            row.point.name.clone(),
            fmt_num(row.point.delay.value()),
            fmt_num(row.point.energy.value()),
            fmt_num(row.point.embodied.value()),
            fmt_num(row.point.area.value()),
        ]);
    }
    emit(&a, "fig11a");

    heading("Fig. 11(b): tCDP improvement vs baseline, both cases");
    println!(
        "embodied-dominant case: {:.3e} inferences | operational-dominant case: {:.3e} inferences\n",
        study.embodied_case_tasks, study.operational_case_tasks
    );
    let mut b = Table::new(vec![
        "config".into(),
        "tcdp_embodied_case".into(),
        "improvement_embodied".into(),
        "tcdp_operational_case".into(),
        "improvement_operational".into(),
    ]);
    let base = study.baseline().clone();
    for row in &study.rows {
        b.row(vec![
            row.point.name.clone(),
            fmt_num(row.tcdp_embodied_case),
            fmt_ratio(base.tcdp_embodied_case / row.tcdp_embodied_case),
            fmt_num(row.tcdp_operational_case),
            fmt_ratio(base.tcdp_operational_case / row.tcdp_operational_case),
        ]);
    }
    emit(&b, "fig11b");
    println!(
        "Winners: embodied case -> {} (paper: 3D_2K_4M at 1.08x), operational case -> {} (paper: 3D_2K_8M at 6.9x)",
        study.embodied_case_winner(),
        study.operational_case_winner()
    );
    println!(
        "Measured improvements: embodied {:.2}x, operational {:.2}x (operational >> embodied, as in the paper).",
        study.embodied_case_improvement(),
        study.operational_case_improvement()
    );
}
