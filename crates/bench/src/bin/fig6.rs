//! Regenerates the paper's Fig. 6: tCDP versus EDP across wearable, mobile,
//! and datacenter design spaces.
//!
//! Expected shape: the EDP-tCDP correlation is weak when embodied carbon
//! dominates (wearables, 95 % embodied) and strengthens toward
//! operational-carbon-dominant datacenters (50 %); EDP-equivalent designs
//! can differ by orders of magnitude in tCDP; only under full operational
//! dominance would the EDP- and tCDP-optimal designs coincide.

use cordoba::prelude::*;
use cordoba_accel::space::design_space;
use cordoba_bench::{emit, heading};
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_workloads::task::Task;

fn main() {
    let points = evaluate_space(
        &design_space(),
        &Task::all_kernels(),
        &EmbodiedModel::default(),
    )
    .expect("static space evaluates");

    heading("Fig. 6: EDP vs tCDP correlation per domain (121 accelerator designs)");
    let mut summary = Table::new(vec![
        "domain".into(),
        "embodied_share".into(),
        "tasks_lifetime".into(),
        "log_correlation(EDP,tCDP)".into(),
        "iso-EDP tCDP spread".into(),
        "EDP-optimal".into(),
        "tCDP-optimal".into(),
    ]);
    let mut scatter = Table::new(vec![
        "domain".into(),
        "design".into(),
        "edp_js".into(),
        "tcdp_gs".into(),
    ]);
    for domain in DomainClass::ALL {
        let analysis = domain_analysis(&points, domain).expect("non-empty space");
        summary.row(vec![
            domain.label().into(),
            format!("{:.0}%", domain.embodied_share() * 100.0),
            fmt_num(analysis.context.tasks),
            format!("{:.3}", analysis.correlation),
            fmt_ratio(analysis.iso_edp_tcdp_spread),
            analysis.edp_optimal.clone(),
            analysis.tcdp_optimal.clone(),
        ]);
        for (p, (edp, tcdp)) in points
            .iter()
            .zip(analysis.edp.iter().zip(analysis.tcdp.iter()))
        {
            scatter.row(vec![
                domain.label().into(),
                p.name.clone(),
                fmt_num(*edp),
                fmt_num(*tcdp),
            ]);
        }
    }
    emit(&summary, "fig6_summary");
    emit(&scatter, "fig6_scatter");
    println!(
        "Shape: correlation weakest for wearables, strongest for datacenters;\n\
         EDP-equivalent designs exhibit large tCDP spreads when embodied dominates\n\
         (paper reports up to ~100x)."
    );
}
