//! Regenerates the paper's Table V: VR SoC parameters before (8-core) and
//! after (4-core) carbon-efficient optimization for the M-1 task.
//!
//! Expected shape: area 2.25 -> 1.35 cm² (1.67x), embodied ~2x better,
//! total carbon ~1.27x better, delay ~0.98x (slightly worse), tCDP ~1.25x
//! better, power/energy roughly unchanged.

use cordoba::prelude::*;
use cordoba_bench::{emit, heading};
use cordoba_soc::prelude::*;

fn main() {
    let deployment = Deployment::default();
    let app = VrApp::m1();
    let rows = sweep(&app, &deployment).expect("valid deployment");
    let before = rows.iter().find(|r| r.cores == 8).expect("8-core row");
    let after = rows.iter().find(|r| r.cores == 4).expect("4-core row");

    heading("Table V: M-1 before (8-core) and after (4-core) optimization");
    let mut t = Table::new(vec![
        "parameter".into(),
        "before".into(),
        "after".into(),
        "improvement".into(),
        "paper".into(),
    ]);
    let ratio = |b: f64, a: f64| fmt_ratio(b / a);
    t.row(vec![
        "P_total (W)".into(),
        fmt_num(before.energy.value() / before.delay.value()),
        fmt_num(after.energy.value() / after.delay.value()),
        "-".into(),
        "8.3 W / 8.3 W".into(),
    ]);
    t.row(vec![
        "E per task (J)".into(),
        fmt_num(before.energy.value()),
        fmt_num(after.energy.value()),
        ratio(before.energy.value(), after.energy.value()),
        "332 J / 332 J".into(),
    ]);
    t.row(vec![
        "A (cm^2)".into(),
        fmt_num(before.soc.die_area().value()),
        fmt_num(after.soc.die_area().value()),
        ratio(before.soc.die_area().value(), after.soc.die_area().value()),
        "2.25 -> 1.35 (1.67x)".into(),
    ]);
    t.row(vec![
        "CPU cores".into(),
        before.soc.to_string(),
        after.soc.to_string(),
        "reduced 4 cores".into(),
        "4g+4s -> 2g+2s".into(),
    ]);
    t.row(vec![
        "C_embodied (gCO2e)".into(),
        fmt_num(before.embodied.value()),
        fmt_num(after.embodied.value()),
        ratio(before.embodied.value(), after.embodied.value()),
        "5375 -> 2688 (2x)".into(),
    ]);
    t.row(vec![
        "C_total (gCO2e)".into(),
        fmt_num(before.total_carbon().value()),
        fmt_num(after.total_carbon().value()),
        ratio(before.total_carbon().value(), after.total_carbon().value()),
        "12273 -> 9696 (1.27x)".into(),
    ]);
    t.row(vec![
        "D (normalized FPS)".into(),
        "1.000".into(),
        format!("{:.3}", before.delay.value() / after.delay.value()),
        ratio(before.delay.value(), after.delay.value()),
        "1.0 -> 0.98 (0.98x)".into(),
    ]);
    t.row(vec![
        "EDP (normalized)".into(),
        "1.000".into(),
        fmt_num(after.edp / before.edp),
        ratio(before.edp, after.edp),
        "1 -> 1.02 (0.98x)".into(),
    ]);
    t.row(vec![
        "tCDP (normalized)".into(),
        "1.000".into(),
        fmt_num(after.tcdp.value() / before.tcdp.value()),
        ratio(before.tcdp.value(), after.tcdp.value()),
        "1 -> 0.8 (1.25x)".into(),
    ]);
    emit(&t, "table5");
}
