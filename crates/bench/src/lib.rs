//! Shared helpers for the CORDOBA experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure from the
//! paper, printing the same rows/series the paper reports and writing a
//! CSV copy into `results/`.

use cordoba::report::Table;
use std::path::{Path, PathBuf};

/// The Fig. 11/12 three-dimensional-integration study, shared by the
/// `fig11`, `fig12`, and `ablations` binaries and the integration tests.
pub mod stacking_study;

/// Locates the repository's `results/` directory (next to the workspace
/// `Cargo.toml`), creating it if needed.
///
/// Falls back to the current directory when the workspace root cannot be
/// found.
#[must_use]
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            break;
        }
        if !dir.pop() {
            dir = PathBuf::from(".");
            break;
        }
    }
    let results = dir.join("results");
    let _ = std::fs::create_dir_all(&results);
    results
}

/// Prints a section header.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a table and writes its CSV twin into `results/<name>.csv`.
pub fn emit(table: &Table, name: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[written {}]", relative_to_cwd(&path));
    }
}

fn relative_to_cwd(path: &Path) -> String {
    std::env::current_dir()
        .ok()
        .and_then(|cwd| path.strip_prefix(cwd).ok())
        .map_or_else(|| path.display().to_string(), |p| p.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn emit_writes_csv() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        emit(&t, "selftest");
        let path = results_dir().join("selftest.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a\n"));
        let _ = std::fs::remove_file(path);
    }
}
