//! The §VI-E three-dimensional-integration study (Fig. 11 and Fig. 12).
//!
//! Runs the SR(512x512) kernel on the baseline and the six 3D-stacked
//! configurations, evaluates tCDP at an *embodied-carbon-dominant*
//! operational time (embodied ≈ 80 % of total on average) and an
//! *operational-carbon-dominant* one (embodied ≈ 8 %), and performs the
//! Fig. 12 `E·D` vs `C_emb·D` Pareto elimination.

use cordoba::lagrange::BetaSweep;
use cordoba::metrics::DesignPoint;
use cordoba::uncertainty::context_for_embodied_share;
use cordoba_accel::sim::simulate;
use cordoba_accel::stacking::study_configs;
use cordoba_carbon::embodied::EmbodiedModel;
use cordoba_carbon::intensity::grids;
use cordoba_carbon::CarbonError;
use cordoba_workloads::kernel::KernelId;

/// The paper's target embodied share for the "embodied carbon dominant"
/// case (80 % embodied / 20 % operational, averaged over configurations).
pub const EMBODIED_DOMINANT_SHARE: f64 = 0.80;
/// The paper's target embodied share for the "operational carbon dominant"
/// case (8 % embodied / 92 % operational).
pub const OPERATIONAL_DOMINANT_SHARE: f64 = 0.08;

/// One configuration's results across both Fig. 11 cases.
#[derive(Debug, Clone, PartialEq)]
pub struct StackingRow {
    /// The design point (delay/energy for one SR(512x512) inference).
    pub point: DesignPoint,
    /// tCDP in the embodied-dominant case.
    pub tcdp_embodied_case: f64,
    /// tCDP in the operational-dominant case.
    pub tcdp_operational_case: f64,
}

/// The full study output.
#[derive(Debug, Clone, PartialEq)]
pub struct StackingStudy {
    /// Per-configuration rows, in Fig. 11 order (baseline first).
    pub rows: Vec<StackingRow>,
    /// Task count of the embodied-dominant case.
    pub embodied_case_tasks: f64,
    /// Task count of the operational-dominant case.
    pub operational_case_tasks: f64,
    /// The Fig. 12 elimination (Pareto + β-sweep support set).
    pub beta_sweep: BetaSweep,
}

impl StackingStudy {
    /// Runs the study.
    ///
    /// # Errors
    ///
    /// Propagates carbon-model errors (cannot occur for the built-in
    /// configurations).
    pub fn run() -> Result<Self, CarbonError> {
        let embodied_model = EmbodiedModel::default();
        let kernel = KernelId::Sr512.descriptor();
        let mut points = Vec::new();
        for cfg in study_configs() {
            let sim = simulate(&cfg, &kernel);
            // Charge leakage over the inference for the task energy.
            let energy = sim.dynamic_energy + cfg.leakage_power() * sim.latency;
            points.push(DesignPoint::new(
                cfg.name(),
                sim.latency,
                energy,
                cfg.embodied_carbon(&embodied_model)?,
                cfg.total_area(),
            )?);
        }

        let ci = grids::US_AVERAGE;
        let embodied_ctx = context_for_embodied_share(&points, ci, EMBODIED_DOMINANT_SHARE)?;
        let operational_ctx = context_for_embodied_share(&points, ci, OPERATIONAL_DOMINANT_SHARE)?;

        let rows = points
            .iter()
            .map(|p| StackingRow {
                point: p.clone(),
                tcdp_embodied_case: p.tcdp(&embodied_ctx).value(),
                tcdp_operational_case: p.tcdp(&operational_ctx).value(),
            })
            .collect();
        Ok(Self {
            rows,
            embodied_case_tasks: embodied_ctx.tasks,
            operational_case_tasks: operational_ctx.tasks,
            beta_sweep: BetaSweep::run(&points),
        })
    }

    /// The baseline row.
    ///
    /// # Panics
    ///
    /// Panics if the study is empty (cannot happen for [`Self::run`]).
    #[must_use]
    pub fn baseline(&self) -> &StackingRow {
        &self.rows[0]
    }

    /// Name of the tCDP-optimal configuration in the embodied-dominant
    /// case.
    #[must_use]
    pub fn embodied_case_winner(&self) -> &str {
        &self
            .rows
            .iter()
            .min_by(|a, b| a.tcdp_embodied_case.total_cmp(&b.tcdp_embodied_case))
            .expect("rows non-empty")
            .point
            .name
    }

    /// Name of the tCDP-optimal configuration in the operational-dominant
    /// case.
    #[must_use]
    pub fn operational_case_winner(&self) -> &str {
        &self
            .rows
            .iter()
            .min_by(|a, b| a.tcdp_operational_case.total_cmp(&b.tcdp_operational_case))
            .expect("rows non-empty")
            .point
            .name
    }

    /// tCDP improvement of the best design over the baseline in the
    /// embodied-dominant case (the paper reports 1.08x).
    #[must_use]
    pub fn embodied_case_improvement(&self) -> f64 {
        let best = self
            .rows
            .iter()
            .map(|r| r.tcdp_embodied_case)
            .fold(f64::INFINITY, f64::min);
        self.baseline().tcdp_embodied_case / best
    }

    /// tCDP improvement of the best design over the baseline in the
    /// operational-dominant case (the paper reports 6.9x).
    #[must_use]
    pub fn operational_case_improvement(&self) -> f64 {
        let best = self
            .rows
            .iter()
            .map(|r| r.tcdp_operational_case)
            .fold(f64::INFINITY, f64::min);
        self.baseline().tcdp_operational_case / best
    }

    /// Names of the Fig. 12 Pareto survivors (the only designs that can be
    /// tCDP-optimal for any `CI_use(t)`).
    #[must_use]
    pub fn pareto_survivors(&self) -> Vec<&str> {
        self.beta_sweep.surviving_names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winners_match_paper() {
        let study = StackingStudy::run().unwrap();
        // Fig. 11(b): 3D_2K_4M wins the embodied-dominant case, 3D_2K_8M
        // the operational-dominant case.
        assert_eq!(study.embodied_case_winner(), "3D_2K_4M");
        assert_eq!(study.operational_case_winner(), "3D_2K_8M");
    }

    #[test]
    fn both_cases_improve_on_baseline_and_operational_improves_more() {
        let study = StackingStudy::run().unwrap();
        let emb = study.embodied_case_improvement();
        let op = study.operational_case_improvement();
        assert!(emb > 1.0, "embodied-case improvement {emb}");
        assert!(op > emb, "operational {op} should exceed embodied {emb}");
    }

    #[test]
    fn pareto_keeps_exactly_the_two_2k_mid_sram_designs() {
        // Fig. 12: five of seven configurations eliminated.
        let study = StackingStudy::run().unwrap();
        let survivors = study.pareto_survivors();
        assert_eq!(survivors.len(), 2, "survivors {survivors:?}");
        assert!(survivors.contains(&"3D_2K_4M"));
        assert!(survivors.contains(&"3D_2K_8M"));
    }

    #[test]
    fn case_task_counts_are_ordered() {
        let study = StackingStudy::run().unwrap();
        assert!(study.operational_case_tasks > study.embodied_case_tasks * 10.0);
    }
}
