//! Fixture-driven tests for the `determinism` rule family, plus cross-file
//! resolution tests that feed several in-memory sources to one run.

use cordoba_lint::diagnostics::{Diagnostic, Severity};
use cordoba_lint::rules::determinism::FAMILY;
use cordoba_lint::Linter;

/// Lints a fixture file under its on-disk relative path.
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path} unreadable: {e}"));
    Linter::new().check_source(&format!("fixtures/{name}"), &source)
}

/// Asserts the fixture triggers `rule` at every line in `lines`, and that
/// every diagnostic it produces is of that rule (fixtures are single-rule
/// by construction, so cross-talk is a bug in another rule).
fn assert_rule_fires(fixture: &str, rule: &str, lines: &[u32]) {
    let diags = lint_fixture(fixture);
    for d in &diags {
        assert_eq!(
            d.rule, rule,
            "unexpected cross-rule finding in {fixture}: {d}"
        );
    }
    let got: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(got, lines, "wrong lines for {rule} in {fixture}: {diags:?}");
}

#[test]
fn nondet_iteration_fires() {
    assert_rule_fires("bad/nondet_iteration.rs", "nondet-iteration", &[11, 17, 26]);
}

#[test]
fn wall_clock_fires() {
    assert_rule_fires("bad/wall_clock.rs", "wall-clock", &[7, 8, 9]);
}

#[test]
fn raw_thread_fires() {
    assert_rule_fires("bad/raw_thread.rs", "raw-thread", &[7, 8]);
}

#[test]
fn ambient_input_fires() {
    assert_rule_fires("bad/ambient_input.rs", "ambient-input", &[7, 8, 10]);
}

#[test]
fn atomic_ordering_fires() {
    assert_rule_fires("bad/atomic_ordering.rs", "atomic-ordering", &[12, 16]);
}

#[test]
fn global_state_fires() {
    assert_rule_fires("bad/global_state.rs", "global-state", &[6, 8, 10, 22]);
}

#[test]
fn clean_determinism_fixture_is_clean() {
    let diags = lint_fixture("clean_determinism.rs");
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn determinism_allow_markers_suppress_everything() {
    let diags = lint_fixture("allowed_determinism.rs");
    assert!(diags.is_empty(), "allow markers ignored: {diags:?}");

    // Sanity: stripping the markers resurrects one finding per family rule,
    // so the empty result above is the markers' doing.
    let path = format!(
        "{}/fixtures/allowed_determinism.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let stripped: String = source
        .lines()
        .map(|l| {
            let l = l.split("// cordoba-lint:").next().unwrap_or(l);
            format!("{l}\n")
        })
        .collect();
    let unsuppressed = Linter::new().check_source("fixtures/allowed_determinism.rs", &stripped);
    let rules: std::collections::BTreeSet<&str> = unsuppressed.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules.len(),
        FAMILY.len(),
        "expected every determinism rule to fire once markers are stripped: {unsuppressed:?}"
    );
    for rule in &rules {
        assert!(
            FAMILY.contains(rule),
            "non-determinism rule {rule} fired on the determinism fixture"
        );
    }
}

#[test]
fn atomic_ordering_defaults_to_warn_others_to_deny() {
    for d in lint_fixture("bad/atomic_ordering.rs") {
        assert_eq!(d.severity, Severity::Warn, "default severity: {d}");
    }
    for d in lint_fixture("bad/global_state.rs") {
        assert_eq!(d.severity, Severity::Deny, "default severity: {d}");
    }
}

#[test]
fn severity_overrides_expand_families() {
    let path = format!(
        "{}/fixtures/bad/atomic_ordering.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(path).expect("fixture readable");

    // `--deny determinism` escalates the family's warn-by-default member.
    let mut linter = Linter::new();
    linter
        .set_severity(&["determinism"], Severity::Deny)
        .expect("family name expands");
    let escalated = linter.check_source("fixtures/bad/atomic_ordering.rs", &source);
    assert!(!escalated.is_empty());
    for d in &escalated {
        assert_eq!(d.severity, Severity::Deny, "escalation ignored: {d}");
    }

    // And a targeted demotion goes the other way.
    let wall = format!("{}/fixtures/bad/wall_clock.rs", env!("CARGO_MANIFEST_DIR"));
    let wall_src = std::fs::read_to_string(wall).expect("fixture readable");
    let mut linter = Linter::new();
    linter
        .set_severity(&["wall-clock"], Severity::Warn)
        .expect("known rule");
    let demoted = linter.check_source("fixtures/bad/wall_clock.rs", &wall_src);
    assert!(!demoted.is_empty());
    for d in &demoted {
        assert_eq!(d.severity, Severity::Warn, "demotion ignored: {d}");
    }
}

#[test]
fn family_name_expands_in_rule_selection() {
    let mut linter = Linter::new();
    linter.restrict_to(&["determinism"]).expect("family known");
    let mut active = linter.active_rules();
    active.sort_unstable();
    let mut family: Vec<&str> = FAMILY.to_vec();
    family.sort_unstable();
    assert_eq!(active, family);

    let mut linter = Linter::new();
    linter.skip(&["determinism"]).expect("family known");
    assert!(linter.active_rules().iter().all(|r| !FAMILY.contains(r)));
    assert!(!linter.active_rules().is_empty());
}

#[test]
fn type_alias_resolves_across_files() {
    let diags = Linter::new().check_sources(&[
        (
            "crates/core/src/types.rs",
            "use std::collections::HashMap;\npub type ShapeIndex = HashMap<u64, f64>;\n",
        ),
        (
            "crates/core/src/report.rs",
            "use crate::types::ShapeIndex;\n\nfn dump(index: &ShapeIndex) -> Vec<u64> {\n    \
             index.keys().copied().collect::<Vec<u64>>()\n}\n",
        ),
    ]);
    assert_eq!(diags.len(), 1, "alias should resolve to HashMap: {diags:?}");
    assert_eq!(diags[0].rule, "nondet-iteration");
    assert_eq!(diags[0].file, "crates/core/src/report.rs");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn sanctioned_crates_are_exempt_by_path() {
    let source = "use std::time::Instant;\n\nfn stamp() -> Instant {\n    Instant::now()\n}\n";
    let in_obs = Linter::new().check_sources(&[("crates/obs/src/trace.rs", source)]);
    assert!(in_obs.is_empty(), "obs owns timing: {in_obs:?}");

    let in_core = Linter::new().check_sources(&[("crates/core/src/trace.rs", source)]);
    assert_eq!(
        in_core.len(),
        1,
        "core must not read the clock: {in_core:?}"
    );
    assert_eq!(in_core[0].rule, "wall-clock");
}

#[test]
fn obs_owned_statics_are_sanctioned_across_crates() {
    let obs_metrics = (
        "crates/obs/src/metrics.rs",
        "use std::sync::atomic::AtomicU64;\n\npub struct Counter {\n    value: AtomicU64,\n}\n",
    );
    let core_counter = (
        "crates/core/src/dse.rs",
        "use cordoba_obs::Counter;\n\npub static EVALS: Counter = Counter::new();\n",
    );
    let core_holder_def = (
        "crates/core/src/state.rs",
        "use std::sync::Mutex;\n\npub struct Holder {\n    slot: Mutex<u64>,\n}\n",
    );
    let core_holder_static = (
        "crates/core/src/globals.rs",
        "use crate::state::Holder;\n\npub static SHARED: Holder = Holder::new();\n",
    );
    let diags = Linter::new().check_sources(&[
        obs_metrics,
        core_counter,
        core_holder_def,
        core_holder_static,
    ]);
    assert_eq!(
        diags.len(),
        1,
        "only the core-owned interior-mutable static should fire: {diags:?}"
    );
    assert_eq!(diags[0].rule, "global-state");
    assert_eq!(diags[0].file, "crates/core/src/globals.rs");
    assert_eq!(diags[0].line, 3);
}
