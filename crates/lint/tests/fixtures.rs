//! Fixture-driven rule tests: every rule must fire on its `bad/` fixture,
//! stay silent on `clean.rs`, and be suppressed by the markers in
//! `allowed.rs`.

use cordoba_lint::Linter;

/// Lints a fixture file under its on-disk relative path.
fn lint_fixture(name: &str) -> Vec<cordoba_lint::diagnostics::Diagnostic> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path} unreadable: {e}"));
    Linter::new().check_source(&format!("fixtures/{name}"), &source)
}

/// Asserts the fixture triggers `rule` at every line in `lines`, and that
/// every diagnostic it produces is of that rule (fixtures are single-rule
/// by construction, so cross-talk is a bug in another rule).
fn assert_rule_fires(fixture: &str, rule: &str, lines: &[u32]) {
    let diags = lint_fixture(fixture);
    for d in &diags {
        assert_eq!(
            d.rule, rule,
            "unexpected cross-rule finding in {fixture}: {d}"
        );
    }
    let got: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(got, lines, "wrong lines for {rule} in {fixture}: {diags:?}");
}

#[test]
fn unit_laundering_fires() {
    assert_rule_fires("bad/unit_laundering.rs", "unit-laundering", &[4, 8]);
}

#[test]
fn no_panic_fires() {
    assert_rule_fires("bad/no_panic.rs", "no-panic", &[4, 6, 8, 13]);
}

#[test]
fn float_eq_fires() {
    assert_rule_fires("bad/float_eq.rs", "float-eq", &[4, 7, 7]);
}

#[test]
fn lossy_cast_fires() {
    assert_rule_fires("bad/lossy_cast.rs", "lossy-cast", &[4, 5]);
}

#[test]
fn raw_constant_fires() {
    assert_rule_fires("bad/raw_constant.rs", "raw-constant", &[4, 8, 12]);
}

#[test]
fn missing_must_use_fires() {
    assert_rule_fires("bad/missing_must_use.rs", "missing-must-use", &[3, 7]);
}

#[test]
fn clean_fixture_is_clean() {
    let diags = lint_fixture("clean.rs");
    assert!(diags.is_empty(), "clean fixture flagged: {diags:?}");
}

#[test]
fn allow_markers_suppress_everything() {
    let diags = lint_fixture("allowed.rs");
    assert!(diags.is_empty(), "allow markers ignored: {diags:?}");

    // Sanity: the same source without its markers is far from clean, so the
    // empty result above is the markers' doing.
    let path = format!("{}/fixtures/allowed.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).expect("fixture readable");
    let stripped: String = source
        .lines()
        .map(|l| {
            let l = l.split("// cordoba-lint:").next().unwrap_or(l);
            format!("{l}\n")
        })
        .collect();
    let unsuppressed = Linter::new().check_source("fixtures/allowed.rs", &stripped);
    assert!(
        unsuppressed.len() >= 6,
        "expected one finding per rule once markers are stripped: {unsuppressed:?}"
    );
}

#[test]
fn rule_selection_filters_findings() {
    let mut linter = Linter::new();
    linter.restrict_to(&["float-eq"]).expect("known rule");
    let path = format!("{}/fixtures/bad/no_panic.rs", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(path).expect("fixture readable");
    assert!(linter
        .check_source("fixtures/bad/no_panic.rs", &source)
        .is_empty());

    let mut linter = Linter::new();
    linter.skip(&["no-panic"]).expect("known rule");
    assert!(linter
        .check_source("fixtures/bad/no_panic.rs", &source)
        .is_empty());

    assert!(Linter::new().restrict_to(&["not-a-rule"]).is_err());
    assert!(Linter::new().skip(&["not-a-rule"]).is_err());
}
