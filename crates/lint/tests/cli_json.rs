//! CLI contract tests: JSON output, the baseline ratchet, severity flags,
//! and the documented exit codes (0 clean, 1 new deny findings, 2 usage/IO).

use std::path::PathBuf;
use std::process::{Command, Output};

use cordoba_lint::json::{self, Value};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cordoba-lint")
}

fn bad_fixture(name: &str) -> String {
    format!("{}/fixtures/bad/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("lint binary runs")
}

#[test]
fn json_report_parses_and_matches_summary() {
    let out = run(&["check", "--format", "json", &bad_fixture("wall_clock.rs")]);
    assert_eq!(out.status.code(), Some(1), "deny findings must exit 1");
    let doc = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("stdout is valid JSON");

    let Some(Value::Arr(findings)) = doc.get("findings") else {
        panic!("report has a findings array: {doc:?}");
    };
    assert_eq!(findings.len(), 3, "wall_clock fixture has three findings");
    for f in findings {
        assert_eq!(f.get("rule").and_then(Value::as_str), Some("wall-clock"));
        assert_eq!(f.get("severity").and_then(Value::as_str), Some("deny"));
        assert!(f
            .get("file")
            .and_then(Value::as_str)
            .is_some_and(|p| p.ends_with("fixtures/bad/wall_clock.rs")));
    }
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("deny"), Some(&Value::Num(3.0)));
    assert_eq!(summary.get("warn"), Some(&Value::Num(0.0)));
    assert_eq!(
        summary.get("by_rule").and_then(|b| b.get("wall-clock")),
        Some(&Value::Num(3.0))
    );
}

#[test]
fn warn_only_findings_exit_zero_and_deny_flag_escalates() {
    // atomic-ordering defaults to warn: reported, but not a failure.
    let warn_only = run(&[
        "check",
        "--format",
        "json",
        &bad_fixture("atomic_ordering.rs"),
    ]);
    assert_eq!(
        warn_only.status.code(),
        Some(0),
        "warn-severity findings alone must not fail the run"
    );
    let doc =
        json::parse(&String::from_utf8_lossy(&warn_only.stdout)).expect("stdout is valid JSON");
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(summary.get("deny"), Some(&Value::Num(0.0)));
    assert_eq!(summary.get("warn"), Some(&Value::Num(2.0)));

    // `--deny determinism` escalates the whole family.
    let escalated = run(&[
        "check",
        "--deny",
        "determinism",
        &bad_fixture("atomic_ordering.rs"),
    ]);
    assert_eq!(escalated.status.code(), Some(1), "--deny must escalate");

    // And `--warn` demotes a deny rule back to advisory.
    let demoted = run(&[
        "check",
        "--warn",
        "global-state",
        &bad_fixture("global_state.rs"),
    ]);
    assert_eq!(demoted.status.code(), Some(0), "--warn must demote");
}

#[test]
fn baseline_round_trip_tolerates_recorded_findings() {
    let baseline: PathBuf =
        PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("cli_json_baseline.json");
    let target = bad_fixture("ambient_input.rs");

    let write = run(&[
        "check",
        "--write-baseline",
        &baseline.to_string_lossy(),
        &target,
    ]);
    assert_eq!(
        write.status.code(),
        Some(0),
        "--write-baseline records and exits 0: {}",
        String::from_utf8_lossy(&write.stderr)
    );

    let gated = run(&[
        "check",
        "--format",
        "json",
        "--baseline",
        &baseline.to_string_lossy(),
        &target,
    ]);
    assert_eq!(
        gated.status.code(),
        Some(0),
        "baselined findings must not fail the run"
    );
    let doc = json::parse(&String::from_utf8_lossy(&gated.stdout)).expect("stdout is valid JSON");
    assert_eq!(doc.get("baselined"), Some(&Value::Num(3.0)));
    let Some(Value::Arr(findings)) = doc.get("findings") else {
        panic!("report has a findings array: {doc:?}");
    };
    assert!(findings.is_empty(), "no fresh findings: {findings:?}");

    // The ratchet only absorbs what was recorded: a second dirty file still
    // fails against the same baseline.
    let two_files = run(&[
        "check",
        "--baseline",
        &baseline.to_string_lossy(),
        &target,
        &bad_fixture("raw_thread.rs"),
    ]);
    assert_eq!(
        two_files.status.code(),
        Some(1),
        "non-baselined findings must still fail"
    );
}

#[test]
fn io_and_usage_errors_exit_two() {
    let missing = run(&[
        "check",
        "--baseline",
        "/nonexistent/baseline.json",
        &bad_fixture("wall_clock.rs"),
    ]);
    assert_eq!(
        missing.status.code(),
        Some(2),
        "unreadable baseline is an IO error"
    );

    let bad_format = run(&["check", "--format", "yaml"]);
    assert_eq!(
        bad_format.status.code(),
        Some(2),
        "unknown format is a usage error"
    );

    let bad_family = run(&["check", "--deny", "not-a-rule"]);
    assert_eq!(
        bad_family.status.code(),
        Some(2),
        "unknown rule is a usage error"
    );
}

#[test]
fn help_documents_exit_codes_and_flags() {
    let help = run(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    let text = String::from_utf8_lossy(&help.stderr).to_string();
    for needle in [
        "--format",
        "--baseline",
        "--write-baseline",
        "--deny",
        "--warn",
        "exit codes",
    ] {
        assert!(text.contains(needle), "help must mention {needle}:\n{text}");
    }
}
