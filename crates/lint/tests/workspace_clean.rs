//! The workspace self-check: the full lint pass over the repository must be
//! clean, and the CLI must report the same verdict via its exit code.

use std::process::Command;

use cordoba_lint::{workspace_root, Linter};

#[test]
fn workspace_is_lint_clean() {
    let diags = Linter::new()
        .check_path(&workspace_root())
        .expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_is_clean_with_determinism_at_deny() {
    // The CI gate escalates the whole family (including warn-by-default
    // `atomic-ordering`) to deny; the workspace must stay clean even then,
    // i.e. every Relaxed site carries a justified allow marker.
    let mut linter = Linter::new();
    linter
        .set_severity(&["determinism"], cordoba_lint::diagnostics::Severity::Deny)
        .expect("family name expands");
    let diags = linter
        .check_path(&workspace_root())
        .expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "workspace has determinism findings at deny:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_exit_codes_reflect_findings() {
    let bin = env!("CARGO_BIN_EXE_cordoba-lint");

    let clean = Command::new(bin)
        .args(["check", &workspace_root().to_string_lossy()])
        .output()
        .expect("lint binary runs");
    assert_eq!(clean.status.code(), Some(0), "workspace check must exit 0");

    let bad_dir = format!("{}/fixtures/bad", env!("CARGO_MANIFEST_DIR"));
    let dirty = Command::new(bin)
        .args(["check", &bad_dir])
        .output()
        .expect("lint binary runs");
    assert_eq!(dirty.status.code(), Some(1), "bad fixtures must exit 1");
    assert!(
        !String::from_utf8_lossy(&dirty.stdout).is_empty(),
        "diagnostics go to stdout"
    );

    let usage = Command::new(bin)
        .args(["check", "--rules", "not-a-rule"])
        .output()
        .expect("lint binary runs");
    assert_eq!(usage.status.code(), Some(2), "bad usage must exit 2");
}
