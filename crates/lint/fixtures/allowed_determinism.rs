//! Fixture: determinism findings suppressed by allow markers. Not compiled —
//! parsed by tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn stable_enough(weights: &HashMap<String, f64>) -> Vec<String> {
    // cordoba-lint: allow(nondet-iteration) — caller sorts before display
    weights.keys().cloned().collect::<Vec<_>>()
}

fn coarse_timer() -> Instant {
    // cordoba-lint: allow(wall-clock) — log timestamp only, never reaches results
    Instant::now()
}

struct Tally {
    value: AtomicU64,
}

impl Tally {
    fn bump(&self) {
        // cordoba-lint: allow(atomic-ordering) — monotonic counter
        self.value.fetch_add(1, Ordering::Relaxed);
    }
}

// cordoba-lint: allow-file(global-state)
static SCRATCH_SLOTS: AtomicU64 = AtomicU64::new(0);

fn ambient_region() -> String {
    // cordoba-lint: allow(ambient-input) — documented escape hatch
    std::env::var("CORDOBA_REGION").unwrap_or_default()
}

fn helper_thread() {
    // cordoba-lint: allow(raw-thread) — joined before return, order-independent
    let worker = std::thread::spawn(|| {});
    let _ = worker.join();
}
