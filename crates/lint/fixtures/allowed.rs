//! Fixture: every violation below carries an allow marker, so the linter
//! must report nothing. Not compiled — parsed by tests.

fn sentinel(x: f64) -> bool {
    // cordoba-lint: allow(float-eq) — exact-zero sentinel
    x == 0.0
}

fn trusted(v: Option<f64>) -> f64 {
    v.expect("validated upstream") // cordoba-lint: allow(no-panic) — invariant documented
}

fn bounded(steps: usize) -> f64 {
    // cordoba-lint: allow(lossy-cast) — steps ≪ 2^53
    steps as f64
}

// cordoba-lint: allow-file(raw-constant)
fn kwh(j: f64) -> f64 {
    j / 3.6e6
}

fn relabel(a: Seconds, b: Hertz) -> Seconds {
    // cordoba-lint: allow(unit-laundering) — deliberate renormalization
    Seconds::new(a.value() * b.value())
}

// cordoba-lint: allow(missing-must-use)
pub fn fire_and_forget() -> Seconds {
    Seconds::ZERO
}
