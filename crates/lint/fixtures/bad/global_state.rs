//! Fixture: `global-state` positive cases. Not compiled — parsed by tests.

use std::collections::BTreeMap;
use std::sync::Mutex;

static mut TOTAL_RUNS: u64 = 0;

static RESULTS: Mutex<BTreeMap<u64, f64>> = Mutex::new(BTreeMap::new());

thread_local! {
    static SCRATCH: BTreeMap<u64, f64> = BTreeMap::new();
}

const LIMIT_IS_CLEAN: u64 = 64;

static NAME_IS_CLEAN: &str = "cordoba";

struct Wrapper {
    inner: Mutex<u64>,
}

static WRAPPED: Wrapper = Wrapper {
    inner: Mutex::new(0),
};
