//! Fixture: `ambient-input` positive cases. Not compiled — parsed by tests.

use std::env;
use std::fs;

fn load_config() -> String {
    let region = env::var("CORDOBA_REGION").unwrap_or_default();
    let file = fs::read_to_string("cordoba.toml").unwrap_or_default();
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    format!("{region}{file}{line}")
}

fn parse_config_is_clean(text: &str) -> Vec<String> {
    text.lines().map(str::to_owned).collect()
}
