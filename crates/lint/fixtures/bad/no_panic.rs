//! Fixture: `no-panic` positive case. Not compiled — parsed by tests.

fn boom(v: Option<f64>) -> f64 {
    let x = v.unwrap();
    if x < 0.0 {
        panic!("negative");
    }
    let y = v.expect("present");
    x + y
}

fn unfinished() {
    unreachable!()
}
