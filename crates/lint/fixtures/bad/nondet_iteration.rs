//! Fixture: `nondet-iteration` positive cases. Not compiled — parsed by tests.

use std::collections::{BTreeMap, HashMap, HashSet};

struct Index {
    by_name: HashMap<String, u64>,
}

impl Index {
    fn names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect::<Vec<_>>()
    }
}

fn report(weights: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (name, _w) in weights.iter() {
        out.push_str(name);
    }
    out
}

fn leaked_iter(tags: &HashSet<u64>) -> Vec<u64> {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    let mut all: Vec<u64> = tags.iter().copied().collect::<Vec<u64>>();
    all.extend(seen.drain());
    all
}

fn order_insensitive_is_clean(weights: &HashMap<String, f64>) -> f64 {
    weights.values().sum()
}

fn sorted_is_clean(weights: &BTreeMap<String, f64>) -> usize {
    let mut n = 0;
    for _ in weights.keys() {
        n += 1;
    }
    n
}
