//! Fixture: `lossy-cast` positive case. Not compiled — parsed by tests.

fn truncate(steps: usize, raw: f64) -> f64 {
    let n = steps as f64;
    let k = raw as u32;
    n + f64::from(k)
}
