//! Fixture: `raw-thread` positive cases. Not compiled — parsed by tests.

use std::sync::mpsc;
use std::thread;

fn fan_out() -> u64 {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        let _ = tx.send(1u64);
    });
    let _ = worker.join();
    let mut total = 0u64;
    while let Ok(v) = rx.recv() {
        total += v;
    }
    total
}

struct Pool;

impl Pool {
    fn spawn(&self) {}
}

fn method_spawn_is_clean(pool: &Pool) {
    pool.spawn();
}
