//! Fixture: `unit-laundering` positive case. Not compiled — parsed by tests.

fn launder(a: Seconds, b: Hertz) -> Seconds {
    Seconds::new(a.value() * b.value())
}

fn launder_sum(e: Joules, t: Seconds) -> Watts {
    Watts::new(e.value() / t.value() + 1.0)
}
