//! Fixture: `atomic-ordering` positive cases. Not compiled — parsed by tests.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicU64, Ordering};

struct Handoff {
    ready: AtomicU64,
}

impl Handoff {
    fn publish(&self) {
        self.ready.store(1, Ordering::Relaxed);
    }

    fn poll(&self) -> u64 {
        self.ready.load(Relaxed)
    }

    fn strong_is_clean(&self) -> u64 {
        self.ready.load(Ordering::Acquire)
    }
}

enum Mode {
    Relaxed,
    Strict,
}

fn variant_is_clean() -> Mode {
    let _ = Mode::Strict;
    Mode::Relaxed
}
