//! Fixture: `raw-constant` positive case. Not compiled — parsed by tests.

fn joules_to_kwh(j: f64) -> f64 {
    j / 3.6e6
}

fn days(s: f64) -> f64 {
    s / 86_400.0
}

fn hours(s: f64) -> f64 {
    s / 3_600.0
}
