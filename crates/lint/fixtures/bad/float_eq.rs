//! Fixture: `float-eq` positive case. Not compiled — parsed by tests.

fn compare(x: f64) -> bool {
    if x == 1.5 {
        return true;
    }
    x != 0.25 && -2.0 == x
}
