//! Fixture: `missing-must-use` positive case. Not compiled — parsed by tests.

pub fn total_energy(a: Joules, b: Joules) -> Joules {
    a + b
}

pub fn qualified() -> units::Seconds {
    units::Seconds::ZERO
}
