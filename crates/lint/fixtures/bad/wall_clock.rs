//! Fixture: `wall-clock` positive cases. Not compiled — parsed by tests.

use std::time::Instant as Clock;
use std::time::SystemTime;

fn measure() -> f64 {
    let started = Clock::now();
    let _wall = SystemTime::now();
    let _precise = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}

struct Stamp;

impl Stamp {
    fn now() -> Self {
        Stamp
    }
}

fn workspace_clock_is_clean() -> Stamp {
    Stamp::now()
}
