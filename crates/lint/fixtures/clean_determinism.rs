//! Fixture: determinism-family negative cases — order-insensitive sinks,
//! ordered containers, and locally-defined look-alike APIs. Not compiled —
//! parsed by tests.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

fn total(weights: &HashMap<String, f64>) -> f64 {
    weights.values().sum()
}

fn distinct(tags: &HashSet<u64>) -> usize {
    tags.iter().count()
}

fn ordered_report(weights: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for name in weights.keys() {
        out.push_str(name);
    }
    out
}

fn sorted_names(index: &HashMap<String, u64>) -> BTreeSet<String> {
    index.keys().cloned().collect::<BTreeSet<String>>()
}

fn merge(dst: &mut BTreeMap<u64, f64>, src: &HashMap<u64, f64>) {
    dst.extend(src.iter().map(|(k, v)| (*k, *v)));
}

fn bounded(values: &HashMap<u64, f64>) -> bool {
    values.values().all(|v| v.is_finite())
}
