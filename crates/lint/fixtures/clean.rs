//! Fixture: negative case — every rule must stay silent on this file.
//! Not compiled — parsed by tests.

/// Typed arithmetic, no laundering, no panics, no bare casts.
#[must_use]
pub fn total_energy(p: Watts, t: Seconds) -> Joules {
    p * t
}

/// Fallible paths propagate errors instead of panicking.
pub fn checked(v: Option<f64>) -> Result<f64, String> {
    let x = v.ok_or_else(|| "missing".to_owned())?;
    if x.abs() < 1e-12 {
        return Err("zero".to_owned());
    }
    Ok(units::JOULES_PER_KILOWATT_HOUR / x)
}

/// Exact conversions only.
pub fn widen(k: u32) -> f64 {
    f64::from(k)
}

#[cfg(test)]
mod tests {
    // Test code may unwrap freely.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<f64> = Some(1.0);
        assert!(v.unwrap() > 0.5);
    }
}
