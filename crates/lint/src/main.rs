//! CLI driver for `cordoba-lint`.
//!
//! ```text
//! cordoba-lint check [--rules a,b] [--skip a,b] [PATH ...]
//! cordoba-lint rules
//! ```
//!
//! `check` with no paths lints the whole workspace. Exit codes: 0 clean,
//! 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cordoba_lint::rules::all_rules;
use cordoba_lint::{workspace_root, Linter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            for rule in all_rules() {
                println!("{:<18} {}", rule.name(), rule.description());
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("cordoba-lint: unknown command `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cordoba-lint check [--rules a,b] [--skip a,b] [PATH ...]\n       \
         cordoba-lint rules\n\n\
         `check` with no PATH lints the whole workspace. Suppress a finding\n\
         with `// cordoba-lint: allow(<rule>)` on or above the offending line."
    );
}

fn run_check(args: &[String]) -> ExitCode {
    let mut linter = Linter::new();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let configure = |list: Option<&String>,
                         f: &mut dyn FnMut(&[&str]) -> Result<(), String>| {
            let Some(list) = list else {
                return Err("missing comma-separated rule list".to_string());
            };
            f(&list.split(',').map(str::trim).collect::<Vec<_>>())
        };
        let result = match arg.as_str() {
            "--rules" => configure(it.next(), &mut |names| linter.restrict_to(names)),
            "--skip" => configure(it.next(), &mut |names| linter.skip(names)),
            flag if flag.starts_with("--") => Err(format!("unknown flag `{flag}`")),
            path => {
                paths.push(PathBuf::from(path));
                Ok(())
            }
        };
        if let Err(msg) = result {
            eprintln!("cordoba-lint: {msg}");
            return ExitCode::from(2);
        }
    }

    if paths.is_empty() {
        paths.push(workspace_root());
    }

    let mut diags = Vec::new();
    for path in &paths {
        match linter.check_path(path) {
            Ok(d) => diags.extend(d),
            Err(err) => {
                eprintln!("cordoba-lint: failed to read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "cordoba-lint: clean ({} rules: {})",
            linter.active_rules().len(),
            linter.active_rules().join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("cordoba-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}
