//! CLI driver for `cordoba-lint`.
//!
//! ```text
//! cordoba-lint check [options] [PATH ...]
//! cordoba-lint rules
//! ```
//!
//! `check` with no paths lints the whole workspace; multiple (even
//! overlapping) paths are deduplicated into one run. See `--help` for
//! options and exit codes.

use std::path::PathBuf;
use std::process::ExitCode;

use cordoba_lint::diagnostics::Severity;
use cordoba_lint::rules::all_rules;
use cordoba_lint::{json, workspace_root, Linter};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            for rule in all_rules() {
                println!(
                    "{:<18} {:<5} {}",
                    rule.name(),
                    rule.severity(),
                    rule.description()
                );
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("cordoba-lint: unknown command `{other}`");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cordoba-lint check [options] [PATH ...]\n       \
         cordoba-lint rules\n\n\
         options:\n  \
         --rules a,b            run only these rules (`determinism` expands to the family)\n  \
         --skip a,b             disable these rules\n  \
         --deny a,b             escalate these rules' findings to deny\n  \
         --warn a,b             demote these rules' findings to warn\n  \
         --format text|json     output format (default: text)\n  \
         --baseline FILE        tolerate findings recorded in FILE (JSON)\n  \
         --write-baseline FILE  record current findings into FILE and exit 0\n\n\
         `check` with no PATH lints the whole workspace; overlapping paths are\n\
         deduplicated into a single run. Suppress a finding in source with\n\
         `// cordoba-lint: allow(<rule>)` on or above the offending line.\n\n\
         exit codes:\n  \
         0  clean (no findings outside the baseline at `deny` severity)\n  \
         1  new `deny` findings\n  \
         2  usage or I/O error"
    );
}

struct CheckConfig {
    linter: Linter,
    paths: Vec<PathBuf>,
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

#[derive(PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn parse_args(args: &[String]) -> Result<CheckConfig, String> {
    let mut cfg = CheckConfig {
        linter: Linter::new(),
        paths: Vec::new(),
        format: Format::Text,
        baseline: None,
        write_baseline: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match arg.as_str() {
            "--rules" => {
                let list = value("--rules")?;
                cfg.linter.restrict_to(&split(&list))?;
            }
            "--skip" => {
                let list = value("--skip")?;
                cfg.linter.skip(&split(&list))?;
            }
            "--deny" => {
                let list = value("--deny")?;
                cfg.linter.set_severity(&split(&list), Severity::Deny)?;
            }
            "--warn" => {
                let list = value("--warn")?;
                cfg.linter.set_severity(&split(&list), Severity::Warn)?;
            }
            "--format" => {
                cfg.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--baseline" => cfg.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                cfg.write_baseline = Some(PathBuf::from(value("--write-baseline")?));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => cfg.paths.push(PathBuf::from(path)),
        }
    }
    if cfg.paths.is_empty() {
        cfg.paths.push(workspace_root());
    }
    Ok(cfg)
}

fn split(list: &str) -> Vec<&str> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn run_check(args: &[String]) -> ExitCode {
    let cfg = match parse_args(args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("cordoba-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let diags = match cfg.linter.run(&cfg.paths) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("cordoba-lint: I/O error: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &cfg.write_baseline {
        let text = json::baseline_to_json(&diags);
        if let Err(err) = std::fs::write(path, text) {
            eprintln!("cordoba-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "cordoba-lint: wrote baseline with {} finding(s) to {}",
            diags.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let (fresh, baselined) = match &cfg.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(err) => {
                    eprintln!("cordoba-lint: cannot read {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match json::parse_baseline(&text) {
                Ok(e) => e,
                Err(msg) => {
                    eprintln!("cordoba-lint: {}: {msg}", path.display());
                    return ExitCode::from(2);
                }
            };
            json::apply_baseline(diags, &entries)
        }
        None => (diags, 0),
    };

    match cfg.format {
        Format::Json => print!("{}", json::report_to_json(&fresh, baselined)),
        Format::Text => {
            for d in &fresh {
                println!("{d}");
            }
            eprintln!("{}", summary_line(&cfg, &fresh, baselined));
        }
    }

    if fresh.iter().any(|d| d.severity == Severity::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One-line human summary with per-rule counts:
/// `cordoba-lint: 3 finding(s) (deny: 2, warn: 1; no-panic: 2, float-eq: 1), 4 baselined`.
fn summary_line(
    cfg: &CheckConfig,
    fresh: &[cordoba_lint::diagnostics::Diagnostic],
    baselined: usize,
) -> String {
    let suffix = if baselined > 0 {
        format!(", {baselined} baselined")
    } else {
        String::new()
    };
    if fresh.is_empty() {
        return format!(
            "cordoba-lint: clean ({} rules: {}){suffix}",
            cfg.linter.active_rules().len(),
            cfg.linter.active_rules().join(", ")
        );
    }
    let mut by_rule: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    let mut deny = 0usize;
    let mut warn = 0usize;
    for d in fresh {
        *by_rule.entry(d.rule).or_insert(0) += 1;
        match d.severity {
            Severity::Deny => deny += 1,
            Severity::Warn => warn += 1,
        }
    }
    let rule_counts = by_rule
        .iter()
        .map(|(rule, n)| format!("{rule}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "cordoba-lint: {} finding(s) (deny: {deny}, warn: {warn}; {rule_counts}){suffix}",
        fresh.len()
    )
}
