//! A small, self-contained Rust tokenizer.
//!
//! `cordoba-lint` must run in fully-offline builds, so it cannot depend on
//! `syn`/`proc-macro2`. This lexer produces a flat token stream — identifiers,
//! literals, multi-character operators, and delimiters, each tagged with a
//! 1-based source line — which is all the pattern-matching rules need.
//! Comments are skipped (allow-markers are recovered separately from raw
//! source lines by [`crate::markers`]); strings, raw strings, char literals,
//! and lifetimes are handled so that tokens inside them are never
//! misinterpreted as code.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `as`, `unwrap`, `Seconds`, ...).
    Ident,
    /// Lifetime (`'a`); the text excludes the leading quote.
    Lifetime,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `3.6e6`, `1f64`).
    Float,
    /// String, raw-string, byte-string, or char literal.
    Text,
    /// Operator or other punctuation; multi-character operators such as
    /// `==`, `::`, and `..=` are joined into a single token.
    Punct,
    /// Opening delimiter: `(`, `[`, or `{`.
    Open,
    /// Closing delimiter: `)`, `]`, or `}`.
    Close,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What sort of token this is.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Text`], the opening quote only, to
    /// keep the stream small; rules never need string contents).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// `true` when the token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// `true` when the token is punctuation with exactly this text.
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }

    /// `true` for an opening delimiter of the given character.
    #[must_use]
    pub fn is_open(&self, ch: char) -> bool {
        self.kind == TokenKind::Open && self.text.starts_with(ch)
    }

    /// `true` for a closing delimiter of the given character.
    #[must_use]
    pub fn is_close(&self, ch: char) -> bool {
        self.kind == TokenKind::Close && self.text.starts_with(ch)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenizes `source`, skipping comments and whitespace.
#[must_use]
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = chars.len();

    let count_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (also doc comments `///`, `//!`).
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            // Block comment, possibly nested.
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            // Raw strings: r"..." / r#"..."# (and br variants via the ident
            // path below falling through when followed by quote handling).
            'r' | 'b' if starts_raw_or_byte_string(&chars, i) => {
                let start = i;
                i = skip_string_like(&chars, i);
                line += count_lines(&chars[start..i]);
                tokens.push(Token {
                    kind: TokenKind::Text,
                    text: "\"".into(),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&chars, i, line);
                i = next;
                tokens.push(tok);
            }
            '"' => {
                let start = i;
                i = skip_string_like(&chars, i);
                line += count_lines(&chars[start..i]);
                tokens.push(Token {
                    kind: TokenKind::Text,
                    text: "\"".into(),
                    line,
                });
            }
            '\'' => {
                // Lifetime (`'a` not closed by another quote) vs char literal.
                let is_lifetime = matches!(
                    chars.get(i + 1),
                    Some(c2) if (c2.is_alphabetic() || *c2 == '_')
                ) && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line,
                    });
                } else {
                    i += 1; // opening quote
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    tokens.push(Token {
                        kind: TokenKind::Text,
                        text: "'".into(),
                        line,
                    });
                }
            }
            '(' | '[' | '{' => {
                tokens.push(Token {
                    kind: TokenKind::Open,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                tokens.push(Token {
                    kind: TokenKind::Close,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
            _ => {
                let mut matched = false;
                for op in OPERATORS {
                    let oc: Vec<char> = op.chars().collect();
                    if chars[i..].starts_with(&oc) {
                        tokens.push(Token {
                            kind: TokenKind::Punct,
                            text: (*op).into(),
                            line,
                        });
                        i += oc.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    tokens
}

/// `true` when position `i` starts `r"..."`, `r#"..."#`, `b"..."`,
/// `br"..."`, or `br#"..."#`. Raw identifiers (`r#type`) do not match
/// because the `#` run must be followed by a quote.
fn starts_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let rest = &chars[i..];
    let quote_after_hashes = |mut k: usize| {
        while rest.get(k) == Some(&'#') {
            k += 1;
        }
        rest.get(k) == Some(&'"')
    };
    match rest.first() {
        Some('r') => quote_after_hashes(1),
        Some('b') => match rest.get(1) {
            Some('"') => true,
            Some('r') => quote_after_hashes(2),
            _ => false, // byte char `b'x'` handled by the '\'' arm later
        },
        _ => false,
    }
}

/// Skips a string-like literal starting at `i` (plain, raw, or byte string),
/// returning the index one past its closing quote.
fn skip_string_like(chars: &[char], mut i: usize) -> usize {
    let n = chars.len();
    // Optional b / r prefixes.
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    i += 1;
    while i < n {
        if chars[i] == '\\' && !raw {
            i += 2;
            continue;
        }
        if chars[i] == '"' {
            let mut k = 0;
            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Lexes a numeric literal starting at `i`; returns the token and the index
/// one past its end.
fn lex_number(chars: &[char], mut i: usize, line: u32) -> (Token, usize) {
    let n = chars.len();
    let start = i;
    let mut is_float = false;

    if chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b')) {
        // Radix literal: always an integer.
        i += 2;
        while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    } else {
        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
        // Fractional part: a dot followed by a digit (excludes `0..9` ranges,
        // tuple access, and method calls on literals like `1.max(2)`).
        if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
            is_float = true;
            i += 1;
            while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        } else if i < n
            && chars[i] == '.'
            && !matches!(chars.get(i + 1), Some('.') | Some('_'))
            && !matches!(chars.get(i + 1), Some(c) if c.is_alphabetic())
        {
            // Trailing-dot float like `1.` (before `)`, `,`, whitespace, ...).
            is_float = true;
            i += 1;
        }
        // Exponent.
        if i < n && matches!(chars[i], 'e' | 'E') {
            let mut j = i + 1;
            if matches!(chars.get(j), Some('+') | Some('-')) {
                j += 1;
            }
            if matches!(chars.get(j), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                i = j;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...).
    let suffix_start = i;
    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    let suffix: String = chars[suffix_start..i].iter().collect();
    if suffix.starts_with('f') {
        is_float = true;
    }

    let kind = if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    };
    (
        Token {
            kind,
            text: chars[start..i].iter().collect(),
            line,
        },
        i,
    )
}

/// Parses a float-literal token's text to its numeric value, ignoring `_`
/// separators and any `f32`/`f64` suffix. Returns `None` for non-floats.
#[must_use]
pub fn float_literal_value(text: &str) -> Option<f64> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned.strip_suffix("f64").unwrap_or(&cleaned);
    let cleaned = cleaned.strip_suffix("f32").unwrap_or(cleaned);
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::{float_literal_value, tokenize, TokenKind};

    #[test]
    fn idents_numbers_and_operators() {
        let toks = tokenize("let x = a.value() * 3.6e6; // c\nx != 0.0");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "value", "(", ")", "*", "3.6e6", ";", "x", "!=", "0.0"]
        );
        assert_eq!(toks[9].kind, TokenKind::Float);
        assert_eq!(toks[12].kind, TokenKind::Punct);
        assert_eq!(toks[13].line, 2);
    }

    #[test]
    fn ranges_and_tuple_access_are_not_floats() {
        let toks = tokenize("0..9 self.0 1.0.abs()");
        assert_eq!(toks[0].kind, TokenKind::Int);
        assert_eq!(toks[1].text, "..");
        let zero = toks.iter().find(|t| t.text == "0" && t.line == 1).unwrap();
        assert_eq!(zero.kind, TokenKind::Int);
        assert!(toks
            .iter()
            .any(|t| t.text == "1.0" && t.kind == TokenKind::Float));
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let toks = tokenize("fn f<'a>(s: &'a str) { let c = '\\n'; \"x == 1.0\" }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        // The `==` inside the string must not become a token.
        assert!(!toks.iter().any(|t| t.text == "=="));
    }

    #[test]
    fn raw_strings_and_comments_are_skipped() {
        let toks = tokenize("/* a /* nested */ == */ r\"lit == 2.0\" b\"by\" done");
        assert!(!toks.iter().any(|t| t.text == "=="));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn float_values_parse_with_separators() {
        // The physical-constant values below are the test subject itself.
        // cordoba-lint: allow-file(raw-constant)
        assert_eq!(float_literal_value("86_400.0"), Some(86_400.0));
        assert_eq!(float_literal_value("3.6e6"), Some(3.6e6));
        assert_eq!(float_literal_value("1f64"), Some(1.0));
    }
}
