//! Machine-readable output: JSON report rendering and the baseline file.
//!
//! The crate must stay zero-dependency (the lint gate runs fully offline),
//! so this is a small hand-rolled JSON layer: an escaping serializer for
//! reports/baselines and a recursive-descent parser for reading baselines
//! back. The baseline is a ratchet: findings recorded in it are tolerated
//! (matched by `(file, rule, message)` as a multiset, so line drift from
//! unrelated edits does not resurrect them), anything new fails the run.

use std::collections::BTreeMap;

use crate::diagnostics::Diagnostic;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered for deterministic re-rendering).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, when this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup, when this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Obj(map) => map.get(key),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document (without quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while c.get(*pos).is_some_and(|ch| ch.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(c: &[char], pos: &mut usize, ch: char) -> Result<(), String> {
    if c.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{ch}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('{') => parse_obj(c, pos),
        Some('[') => parse_arr(c, pos),
        Some('"') => parse_str(c, pos).map(Value::Str),
        Some('t') if c[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if c[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if c[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(ch) if *ch == '-' || ch.is_ascii_digit() => parse_num(c, pos),
        _ => Err(format!("unexpected input at offset {pos}", pos = *pos)),
    }
}

fn parse_num(c: &[char], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while c
        .get(*pos)
        .is_some_and(|ch| ch.is_ascii_digit() || matches!(ch, '-' | '+' | '.' | 'e' | 'E'))
    {
        *pos += 1;
    }
    let text: String = c[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at offset {start}"))
}

fn parse_str(c: &[char], pos: &mut usize) -> Result<String, String> {
    expect(c, pos, '"')?;
    let mut out = String::new();
    loop {
        match c.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = c
                            .get(*pos + 1..*pos + 5)
                            .map(|s| s.iter().collect())
                            .unwrap_or_default();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape `{other:?}`")),
                }
                *pos += 1;
            }
            Some(ch) => {
                out.push(*ch);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(c: &[char], pos: &mut usize) -> Result<Value, String> {
    expect(c, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(c, pos)?);
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(c: &[char], pos: &mut usize) -> Result<Value, String> {
    expect(c, pos, '{')?;
    let mut map = BTreeMap::new();
    skip_ws(c, pos);
    if c.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(c, pos);
        let key = parse_str(c, pos)?;
        skip_ws(c, pos);
        expect(c, pos, ':')?;
        map.insert(key, parse_value(c, pos)?);
        skip_ws(c, pos);
        match c.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

/// One baseline entry: findings are matched by content, not by line, so
/// unrelated edits that shift code do not resurrect baselined findings.
pub type BaselineEntry = (String, String, String);

/// Renders findings as a committed baseline document.
#[must_use]
pub fn baseline_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            escape(d.rule),
            escape(&d.message),
        ));
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Parses a baseline document into its `(file, rule, message)` entries.
///
/// # Errors
///
/// Returns a message when the document is not valid baseline JSON.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = parse(text)?;
    let Some(Value::Arr(findings)) = doc.get("findings") else {
        return Err("baseline: missing `findings` array".to_string());
    };
    let mut entries = Vec::new();
    for f in findings {
        let field = |k: &str| -> Result<String, String> {
            f.get(k)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("baseline: finding missing string `{k}`"))
        };
        entries.push((field("file")?, field("rule")?, field("message")?));
    }
    Ok(entries)
}

/// Splits findings into (new, baselined-count): each baseline entry absorbs
/// at most one matching finding (multiset semantics).
#[must_use]
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    baseline: &[BaselineEntry],
) -> (Vec<Diagnostic>, usize) {
    let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for (file, rule, message) in baseline {
        *budget
            .entry((file.clone(), rule.clone(), message.clone()))
            .or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    let mut absorbed = 0usize;
    for d in diags {
        let key = (d.file.clone(), d.rule.to_string(), d.message.clone());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                absorbed += 1;
            }
            _ => fresh.push(d),
        }
    }
    (fresh, absorbed)
}

/// Renders the full machine-readable report: findings, baseline count, and
/// per-rule/severity summary.
#[must_use]
pub fn report_to_json(diags: &[Diagnostic], baselined: usize) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    let mut deny = 0usize;
    let mut warn = 0usize;
    for d in diags {
        *by_rule.entry(d.rule).or_insert(0) += 1;
        match d.severity {
            crate::diagnostics::Severity::Deny => deny += 1,
            crate::diagnostics::Severity::Warn => warn += 1,
        }
    }
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            escape(d.rule),
            d.severity,
            escape(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"baselined\": {baselined},\n  \"summary\": {{\"deny\": {deny}, \"warn\": {warn}, \"by_rule\": {{"
    ));
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {count}", escape(rule)));
    }
    out.push_str("}}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::{apply_baseline, baseline_to_json, parse, parse_baseline, report_to_json, Value};
    use crate::diagnostics::{Diagnostic, Severity};

    fn diag(file: &str, line: u32, rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic::new(file, line, rule, msg)
    }

    #[test]
    fn parser_round_trips_a_report() {
        let mut warn = diag("a.rs", 3, "atomic-ordering", "relaxed");
        warn.severity = Severity::Warn;
        let diags = vec![diag("a.rs", 1, "float-eq", "x == \"quoted\"\nnext"), warn];
        let text = report_to_json(&diags, 2);
        let doc = parse(&text).expect("report parses");
        let Some(Value::Arr(findings)) = doc.get("findings") else {
            panic!("findings array");
        };
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("message").and_then(Value::as_str),
            Some("x == \"quoted\"\nnext")
        );
        assert_eq!(doc.get("baselined"), Some(&Value::Num(2.0)));
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("deny"), Some(&Value::Num(1.0)));
        assert_eq!(summary.get("warn"), Some(&Value::Num(1.0)));
        assert_eq!(
            summary.get("by_rule").and_then(|b| b.get("float-eq")),
            Some(&Value::Num(1.0))
        );
    }

    #[test]
    fn baseline_round_trips_and_absorbs_as_multiset() {
        let recorded = vec![
            diag("a.rs", 1, "no-panic", "unwrap"),
            diag("a.rs", 9, "no-panic", "unwrap"),
        ];
        let baseline = parse_baseline(&baseline_to_json(&recorded)).expect("baseline parses");
        // Three identical findings against two baseline slots: one is new.
        let now = vec![
            diag("a.rs", 2, "no-panic", "unwrap"),
            diag("a.rs", 10, "no-panic", "unwrap"),
            diag("a.rs", 20, "no-panic", "unwrap"),
        ];
        let (fresh, absorbed) = apply_baseline(now, &baseline);
        assert_eq!(absorbed, 2);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 20);
    }

    #[test]
    fn empty_baseline_parses() {
        let text = baseline_to_json(&[]);
        assert_eq!(parse_baseline(&text).expect("parses"), Vec::new());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(parse("{\"findings\": [").is_err());
        assert!(parse("").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
    }
}
