//! Workspace model: cross-file structure for name-based queries.
//!
//! The determinism rules need to answer questions no single file can:
//! *does `Instant` here mean `std::time::Instant`?* (depends on this file's
//! `use` list), *is `self.entries` a `HashMap`?* (depends on a struct
//! declared in another file of the same crate), *is this static's type
//! interior-mutable?* (depends on field types possibly declared in another
//! crate). [`WorkspaceModel`] is built once per lint run from every parsed
//! file and answers those queries:
//!
//! - each file is mapped to its **crate** (from its `crates/<name>/...`
//!   path) and carries its flattened **import table** (`use` trees, aliases
//!   included);
//! - each crate indexes its **struct fields** and **type aliases** by name,
//!   so `self.<field>` lookups and alias chains resolve across files;
//! - **interior mutability** is propagated through struct fields to a
//!   fixpoint, across crates (`cordoba_obs::Counter` wrapping an
//!   `AtomicU64` is interior-mutable from any crate's point of view).
//!
//! Everything is name-based and deliberately approximate: a query that
//! cannot be resolved returns "unknown", and rules must treat unknown as
//! clean. All containers are `BTreeMap`/`BTreeSet` so lint output is itself
//! deterministic.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::FileContext;
use crate::parser::{flatten_use, struct_fields, type_path, Item, ItemKind};

/// Type heads from `std`/`core` that carry interior mutability.
const INTERIOR_MUTABLE_PRIMITIVES: &[&str] = &[
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
    "Condvar",
];

/// A struct declaration: where it lives and its field types.
#[derive(Debug, Clone, Default)]
pub struct StructDef {
    /// Workspace-relative path of the declaring file.
    pub file: String,
    /// Field name → type path as written at the declaration.
    pub fields: BTreeMap<String, Vec<String>>,
}

/// Everything the model knows about one crate.
#[derive(Debug, Clone, Default)]
pub struct CrateModel {
    /// Struct name → declaration.
    pub structs: BTreeMap<String, StructDef>,
    /// `type Alias = Target;` → (declaring file, target type path).
    pub aliases: BTreeMap<String, (String, Vec<String>)>,
    /// Structs whose fields (transitively) contain interior mutability.
    pub interior_mutable: BTreeSet<String>,
}

/// Per-file facts: owning crate and the flattened import table.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Crate key (`carbon`, `obs`, ...; empty for files outside `crates/`).
    pub crate_key: String,
    /// Local name → full path as written in the `use` declaration.
    pub imports: BTreeMap<String, Vec<String>>,
}

/// The cross-file model for one lint run.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    files: BTreeMap<String, FileModel>,
    crates: BTreeMap<String, CrateModel>,
}

/// The crate key a workspace-relative path belongs to (`crates/<k>/...` →
/// `k`; anything else shares the anonymous `""` crate so stand-alone
/// snippets still resolve against themselves).
#[must_use]
pub fn crate_key_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    String::new()
}

impl WorkspaceModel {
    /// Builds the model from every file in the run.
    #[must_use]
    pub fn build(ctxs: &[FileContext]) -> Self {
        let mut model = Self::default();
        for ctx in ctxs {
            let crate_key = crate_key_of(&ctx.rel);
            let mut fm = FileModel {
                crate_key: crate_key.clone(),
                imports: BTreeMap::new(),
            };
            let cm = model.crates.entry(crate_key).or_default();
            index_items(&ctx.items, ctx, &mut fm, cm);
            model.files.insert(ctx.rel.clone(), fm);
        }
        model.propagate_interior_mutability();
        model
    }

    /// The per-file model, when the file was part of this run.
    #[must_use]
    pub fn file(&self, rel: &str) -> Option<&FileModel> {
        self.files.get(rel)
    }

    /// The crate model for a crate key.
    #[must_use]
    pub fn crate_model(&self, key: &str) -> Option<&CrateModel> {
        self.crates.get(key)
    }

    /// Expands a single name through the file's import table; unresolved
    /// names map to themselves.
    #[must_use]
    pub fn resolve_name(&self, rel: &str, name: &str) -> Vec<String> {
        self.files
            .get(rel)
            .and_then(|f| f.imports.get(name))
            .cloned()
            .unwrap_or_else(|| vec![name.to_string()])
    }

    /// Expands the first segment of `path` through the file's import table.
    /// Root segments (`std`, `core`, `alloc`, `crate`, `self`, `super`) are
    /// kept as written.
    #[must_use]
    pub fn resolve_path(&self, rel: &str, path: &[String]) -> Vec<String> {
        let Some(head) = path.first() else {
            return Vec::new();
        };
        if matches!(
            head.as_str(),
            "std" | "core" | "alloc" | "crate" | "self" | "super"
        ) {
            return path.to_vec();
        }
        let mut base = self.resolve_name(rel, head);
        base.extend(path.iter().skip(1).cloned());
        base
    }

    /// Resolves `path` and chases workspace-local `type` aliases to a
    /// canonical type path (bounded depth, cycles tolerated).
    #[must_use]
    pub fn canonical_type(&self, rel: &str, path: &[String]) -> Vec<String> {
        let mut cur = self.resolve_path(rel, path);
        let mut cur_file = rel.to_string();
        for _ in 0..4 {
            let Some(name) = cur.last().cloned() else {
                break;
            };
            let Some(owner) = self.type_owner_crate(&cur_file, &cur) else {
                break;
            };
            let Some((def_file, target)) =
                self.crates.get(&owner).and_then(|c| c.aliases.get(&name))
            else {
                break;
            };
            let next_file = def_file.clone();
            let next = self.resolve_path(&next_file, target);
            if next == cur {
                break;
            }
            cur = next;
            cur_file = next_file;
        }
        cur
    }

    /// The workspace crate a canonical type path belongs to, if any:
    /// `cordoba_x::...` → `x`; `crate`/`self`/`super`/bare names → the
    /// current file's crate; `std`-family paths → `None`.
    #[must_use]
    pub fn type_owner_crate(&self, rel: &str, path: &[String]) -> Option<String> {
        let head = path.first()?;
        if let Some(stripped) = head.strip_prefix("cordoba_") {
            return Some(stripped.to_string());
        }
        if matches!(head.as_str(), "std" | "core" | "alloc" | "hashbrown") {
            return None;
        }
        Some(crate_key_of(rel))
    }

    /// Looks up the struct a type path names, across files of its crate.
    #[must_use]
    pub fn struct_def(&self, rel: &str, path: &[String]) -> Option<&StructDef> {
        let canon = self.canonical_type(rel, path);
        let name = canon.last()?;
        let owner = self.type_owner_crate(rel, &canon)?;
        self.crates.get(&owner)?.structs.get(name)
    }

    /// `true` when the type path (as written at `rel`) denotes a
    /// hash-ordered container (`HashMap`/`HashSet` from std or hashbrown,
    /// directly or through a type alias).
    #[must_use]
    pub fn is_hash_container(&self, rel: &str, path: &[String]) -> bool {
        let canon = self.canonical_type(rel, path);
        let Some(last) = canon.last() else {
            return false;
        };
        if last != "HashMap" && last != "HashSet" {
            return false;
        }
        if canon.len() == 1 {
            // A bare `HashMap` with no import is assumed to be std's unless
            // the crate declares its own type of that name.
            let key = crate_key_of(rel);
            return !self
                .crates
                .get(&key)
                .is_some_and(|c| c.structs.contains_key(last) || c.aliases.contains_key(last));
        }
        matches!(canon[0].as_str(), "std" | "core" | "alloc" | "hashbrown")
            || canon.iter().any(|s| s == "collections")
    }

    /// `true` when the type path denotes an interior-mutable type: a
    /// std primitive (`Mutex`, `Atomic*`, `OnceLock`, ...) or a workspace
    /// struct transitively containing one.
    #[must_use]
    pub fn is_interior_mutable_type(&self, rel: &str, path: &[String]) -> bool {
        let canon = self.canonical_type(rel, path);
        let Some(last) = canon.last() else {
            return false;
        };
        if INTERIOR_MUTABLE_PRIMITIVES.contains(&last.as_str()) || last.starts_with("Atomic") {
            return true;
        }
        let Some(owner) = self.type_owner_crate(rel, &canon) else {
            return false;
        };
        self.crates
            .get(&owner)
            .is_some_and(|c| c.interior_mutable.contains(last))
    }

    /// Marks structs with (transitively) interior-mutable fields, to a
    /// fixpoint across all crates.
    fn propagate_interior_mutability(&mut self) {
        loop {
            let mut newly: Vec<(String, String)> = Vec::new();
            for (ckey, cm) in &self.crates {
                for (sname, sdef) in &cm.structs {
                    if cm.interior_mutable.contains(sname) {
                        continue;
                    }
                    let im = sdef
                        .fields
                        .values()
                        .any(|ty| self.is_interior_mutable_type(&sdef.file, ty));
                    if im {
                        newly.push((ckey.clone(), sname.clone()));
                    }
                }
            }
            if newly.is_empty() {
                return;
            }
            for (ckey, sname) in newly {
                if let Some(cm) = self.crates.get_mut(&ckey) {
                    cm.interior_mutable.insert(sname);
                }
            }
        }
    }
}

/// Indexes one file's items (recursively through `mod`/`impl` bodies) into
/// its file model and crate model.
fn index_items(items: &[Item], ctx: &FileContext, fm: &mut FileModel, cm: &mut CrateModel) {
    for item in items {
        match &item.kind {
            ItemKind::Use => {
                for import in flatten_use(&ctx.tokens[item.kw + 1..item.header.1]) {
                    if import.name != "*" && import.name != "_" {
                        fm.imports.insert(import.name, import.path);
                    }
                }
            }
            ItemKind::Struct => {
                if let (Some(name), Some(body)) = (&item.name, item.body) {
                    let fields = struct_fields(&ctx.tokens, body)
                        .into_iter()
                        .collect::<BTreeMap<_, _>>();
                    cm.structs.insert(
                        name.clone(),
                        StructDef {
                            file: ctx.rel.clone(),
                            fields,
                        },
                    );
                }
            }
            ItemKind::TypeAlias => {
                if let Some(name) = &item.name {
                    let header = &ctx.tokens[item.kw..item.header.1];
                    if let Some(eq) = header.iter().position(|t| t.is_punct("=")) {
                        let target = type_path(&header[eq + 1..]);
                        if !target.is_empty() {
                            cm.aliases.insert(name.clone(), (ctx.rel.clone(), target));
                        }
                    }
                }
            }
            ItemKind::Mod | ItemKind::Impl => {
                index_items(&item.children, ctx, fm, cm);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{crate_key_of, WorkspaceModel};
    use crate::context::FileContext;

    fn model(files: &[(&str, &str)]) -> (Vec<FileContext>, WorkspaceModel) {
        let ctxs: Vec<FileContext> = files
            .iter()
            .map(|(rel, src)| FileContext::new(rel, src))
            .collect();
        let m = WorkspaceModel::build(&ctxs);
        (ctxs, m)
    }

    #[test]
    fn crate_keys_follow_layout() {
        assert_eq!(crate_key_of("crates/carbon/src/units.rs"), "carbon");
        assert_eq!(crate_key_of("crates/obs/tests/t.rs"), "obs");
        assert_eq!(crate_key_of("examples/quickstart.rs"), "");
    }

    #[test]
    fn imports_resolve_through_aliases() {
        let (_, m) = model(&[(
            "crates/x/src/lib.rs",
            "use std::collections::HashMap as Fast;\nuse std::time::Instant;\n",
        )]);
        assert_eq!(
            m.resolve_name("crates/x/src/lib.rs", "Fast"),
            ["std", "collections", "HashMap"]
        );
        assert_eq!(
            m.resolve_path(
                "crates/x/src/lib.rs",
                &["Instant".to_string(), "now".to_string()]
            ),
            ["std", "time", "Instant", "now"]
        );
        assert!(m.is_hash_container("crates/x/src/lib.rs", &["Fast".to_string()]));
    }

    #[test]
    fn type_aliases_chase_across_files_of_a_crate() {
        let (_, m) = model(&[
            (
                "crates/x/src/types.rs",
                "use std::collections::HashMap;\npub type ShapeIndex = HashMap<u64, f64>;\n",
            ),
            (
                "crates/x/src/consumer.rs",
                "use crate::types::ShapeIndex;\n",
            ),
        ]);
        assert!(m.is_hash_container("crates/x/src/consumer.rs", &["ShapeIndex".to_string()]));
        assert!(!m.is_hash_container("crates/x/src/consumer.rs", &["Unrelated".to_string()]));
    }

    #[test]
    fn struct_fields_resolve_cross_file() {
        let (_, m) = model(&[
            (
                "crates/x/src/types.rs",
                "use std::collections::HashMap;\npub struct Registry { pub by_name: HashMap<String, u32> }\n",
            ),
            ("crates/x/src/report.rs", "use crate::types::Registry;\n"),
        ]);
        let def = m
            .struct_def("crates/x/src/report.rs", &["Registry".to_string()])
            .expect("registry resolves");
        assert_eq!(def.fields["by_name"], vec!["HashMap".to_string()]);
    }

    #[test]
    fn interior_mutability_propagates_across_crates() {
        let (_, m) = model(&[
            (
                "crates/obs/src/metrics.rs",
                "use std::sync::atomic::AtomicU64;\npub struct Counter { value: AtomicU64 }\n",
            ),
            (
                "crates/core/src/dse.rs",
                "use cordoba_obs::Counter;\npub struct Wrapper { inner: Counter }\n",
            ),
        ]);
        assert!(m.is_interior_mutable_type("crates/core/src/dse.rs", &["Counter".to_string()]));
        assert!(m.is_interior_mutable_type("crates/core/src/dse.rs", &["Wrapper".to_string()]));
        assert!(!m.is_interior_mutable_type("crates/core/src/dse.rs", &["u64".to_string()]));
    }

    #[test]
    fn own_hashmap_type_is_not_std() {
        let (_, m) = model(&[(
            "crates/x/src/lib.rs",
            "pub struct HashMap { items: u32 }\nfn f() {}\n",
        )]);
        assert!(!m.is_hash_container("crates/x/src/lib.rs", &["HashMap".to_string()]));
    }
}
