//! Suppression markers.
//!
//! A finding can be silenced in source with a line comment:
//!
//! ```text
//! // cordoba-lint: allow(no-panic) — length checked two lines above
//! let first = items.first().unwrap();
//! ```
//!
//! The marker suppresses matching diagnostics on its own line and on the
//! line directly below it. A whole file can opt out of a rule with
//! `// cordoba-lint: allow-file(rule-name)` anywhere in the file (typically
//! next to the crate docs). Multiple rules may be listed, comma-separated.

use std::collections::{BTreeMap, BTreeSet};

/// Parsed suppression markers for one file.
///
/// Containers are `BTree*` so [`Markers::mentioned_rules`] (and therefore
/// any validation output derived from it) iterates in a stable order — the
/// lint tool holds itself to its own `nondet-iteration` rule.
#[derive(Debug, Default, Clone)]
pub struct Markers {
    /// Rules allowed on a specific line (and the line after it).
    line_allows: BTreeMap<u32, BTreeSet<String>>,
    /// Rules allowed for the whole file.
    file_allows: BTreeSet<String>,
}

impl Markers {
    /// Scans raw source for `cordoba-lint:` markers.
    #[must_use]
    pub fn parse(source: &str) -> Self {
        let mut markers = Self::default();
        for (idx, raw_line) in source.lines().enumerate() {
            let line = idx as u32 + 1;
            // Markers must live in a line comment.
            let Some(comment_at) = raw_line.find("//") else {
                continue;
            };
            let comment = &raw_line[comment_at..];
            let Some(tag_at) = comment.find("cordoba-lint:") else {
                continue;
            };
            let directive = comment[tag_at + "cordoba-lint:".len()..].trim_start();
            let (file_wide, rest) = if let Some(r) = directive.strip_prefix("allow-file") {
                (true, r)
            } else if let Some(r) = directive.strip_prefix("allow") {
                (false, r)
            } else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix('(').and_then(|r| r.split(')').next()) else {
                continue;
            };
            for rule in inner.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                if file_wide {
                    markers.file_allows.insert(rule.to_string());
                } else {
                    markers
                        .line_allows
                        .entry(line)
                        .or_default()
                        .insert(rule.to_string());
                }
            }
        }
        markers
    }

    /// `true` when a diagnostic for `rule` at `line` is suppressed.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        if self.file_allows.contains(rule) {
            return true;
        }
        let on = |l: u32| {
            self.line_allows
                .get(&l)
                .is_some_and(|set| set.contains(rule))
        };
        on(line) || (line > 1 && on(line - 1))
    }

    /// Every rule name mentioned by any marker (for validation).
    #[must_use]
    pub fn mentioned_rules(&self) -> BTreeSet<&str> {
        self.file_allows
            .iter()
            .map(String::as_str)
            .chain(self.line_allows.values().flatten().map(String::as_str))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Markers;

    #[test]
    fn line_marker_covers_same_and_next_line() {
        let m = Markers::parse("let a = 1; // cordoba-lint: allow(no-panic)\nlet b = 2;\n");
        assert!(m.is_allowed("no-panic", 1));
        assert!(m.is_allowed("no-panic", 2));
        assert!(!m.is_allowed("no-panic", 3));
        assert!(!m.is_allowed("float-eq", 1));
    }

    #[test]
    fn file_marker_covers_everything() {
        let m = Markers::parse("//! docs\n// cordoba-lint: allow-file(raw-constant)\n");
        assert!(m.is_allowed("raw-constant", 999));
    }

    #[test]
    fn multiple_rules_and_justification_text() {
        let m = Markers::parse("// cordoba-lint: allow(float-eq, lossy-cast) — sentinel\n");
        assert!(m.is_allowed("float-eq", 2));
        assert!(m.is_allowed("lossy-cast", 2));
        assert_eq!(m.mentioned_rules().len(), 2);
    }

    #[test]
    fn non_comment_text_is_ignored() {
        let m = Markers::parse("let s = \"cordoba-lint: allow(no-panic)\";\n");
        assert!(!m.is_allowed("no-panic", 1));
    }
}
