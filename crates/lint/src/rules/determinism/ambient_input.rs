//! `ambient-input`: forbids environment and filesystem reads in library
//! crates.
//!
//! A kernel that consults `std::env::var` or reads a file computes a
//! function of *machine state*, not of its inputs — the content-addressed
//! result store (ROADMAP item 5) would happily serve a stale answer after
//! the environment changes, with no key mismatch to save it. All I/O
//! belongs at the edges: the CLI parses files into typed configs, the
//! bench harness owns its result files, and the lint tool walks the tree.
//! Library crates receive parsed, typed values.

use crate::diagnostics::Diagnostic;
use crate::rules::determinism::{in_scope, path_ending_at};
use crate::rules::{Rule, RuleInputs};

/// Crates whose job is I/O at the process edge.
const SANCTIONED: &[&str] = &["cli", "bench", "lint"];

/// `std::env` read functions (write access is rarer and stranger — flagged
/// by the same env check).
const ENV_READS: &[&str] = &["var", "vars", "var_os", "vars_os"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct AmbientInput;

impl Rule for AmbientInput {
    fn name(&self) -> &'static str {
        "ambient-input"
    }

    fn description(&self) -> &'static str {
        "env::var / std::fs access in library crates — take parsed inputs at the edge"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, SANCTIONED) {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let rel = &inputs.file.rel;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if t[i].kind != crate::lexer::TokenKind::Ident
                || !t.get(i + 1).is_some_and(|n| n.is_open('('))
                || inputs.file.in_test_code(i)
            {
                continue;
            }
            // Method calls are someone else's API surface.
            if i > 0 && t[i - 1].is_punct(".") {
                continue;
            }
            let resolved = inputs.model.resolve_path(rel, &path_ending_at(t, i));
            if !matches!(resolved.first().map(String::as_str), Some("std" | "core")) {
                continue;
            }
            let offending = if resolved.iter().any(|s| s == "env")
                && resolved
                    .last()
                    .is_some_and(|l| ENV_READS.contains(&l.as_str()))
            {
                Some("reads the process environment")
            } else if resolved.iter().any(|s| s == "fs") {
                Some("touches the filesystem")
            } else if resolved.ends_with(&["io".to_string(), "stdin".to_string()])
                || (resolved.len() >= 2 && resolved.last().is_some_and(|l| l == "stdin"))
            {
                Some("reads stdin")
            } else {
                None
            };
            if let Some(what) = offending {
                diags.push(Diagnostic::new(
                    rel,
                    t[i].line,
                    self.name(),
                    format!(
                        "`{}` {what} from a library crate; results stop being a pure \
                         function of their inputs — parse at the edge (cli/bench) and pass \
                         typed values in",
                        resolved.join("::"),
                    ),
                ));
            }
        }
        diags
    }
}
