//! `atomic-ordering`: flags `Ordering::Relaxed` outside the obs counter
//! registry.
//!
//! `Relaxed` is correct for monotonic statistics counters (the obs registry
//! and cache hit/miss tallies) but silently wrong the moment an atomic is
//! used to *hand data off* between threads: a relaxed flag read can observe
//! the flag before the data it guards, producing once-in-a-blue-moon
//! nondeterminism no seeded test reproduces. Because the distinction is
//! semantic, this rule defaults to `warn`: legitimate counter sites keep a
//! justified `// cordoba-lint: allow(atomic-ordering)` marker, everything
//! else should use `Acquire`/`Release` (or `SeqCst` when in doubt).

use crate::diagnostics::{Diagnostic, Severity};
use crate::parser::{Item, ItemKind};
use crate::rules::determinism::{in_scope, path_ending_at};
use crate::rules::{Rule, RuleInputs};

/// The obs registry owns its relaxed counters; bench's sink is a black box.
const SANCTIONED: &[&str] = &["obs", "bench"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed outside the obs registry — Acquire/Release for data handoff"
    }

    fn severity(&self) -> Severity {
        Severity::Warn
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, SANCTIONED) {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let rel = &inputs.file.rel;
        // Enum bodies declare variant names and `use` items merely import
        // them; neither is a use of the atomic ordering.
        let mut decl_ranges = Vec::new();
        collect_decl_ranges(&inputs.file.items, &mut decl_ranges);
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if !t[i].is_ident("Relaxed")
                || inputs.file.in_test_code(i)
                || decl_ranges.iter().any(|&(lo, hi)| i >= lo && i < hi)
            {
                continue;
            }
            let relaxed = if i >= 2 && t[i - 1].is_punct("::") {
                // `Ordering::Relaxed` / `atomic::Ordering::Relaxed`: resolve
                // the type part and require it to be the atomic Ordering
                // (cmp::Ordering has no Relaxed variant, so a bare
                // unimported `Ordering` counts too).
                let path = path_ending_at(t, i);
                let ty = &path[..path.len() - 1];
                let resolved = inputs.model.resolve_path(rel, ty);
                resolved.last().is_some_and(|l| l == "Ordering")
                    && (resolved.len() == 1 || resolved.iter().any(|s| s == "atomic"))
            } else {
                // Bare `Relaxed` must be imported from the atomic module to
                // count (otherwise it is some local enum's variant).
                let resolved = inputs.model.resolve_name(rel, "Relaxed");
                resolved.iter().any(|s| s == "atomic")
            };
            if relaxed {
                diags.push(Diagnostic::new(
                    rel,
                    t[i].line,
                    self.name(),
                    "`Ordering::Relaxed` provides no happens-before edge; use \
                     `Acquire`/`Release` for cross-thread data handoff, or justify a \
                     monotonic counter with `// cordoba-lint: allow(atomic-ordering)`"
                        .to_string(),
                ));
            }
        }
        diags
    }
}

fn collect_decl_ranges(items: &[Item], out: &mut Vec<(usize, usize)>) {
    for item in items {
        match item.kind {
            ItemKind::Enum => {
                if let Some(body) = item.body {
                    out.push(body);
                }
            }
            ItemKind::Use => out.push((item.header.0, item.end)),
            _ => {}
        }
        collect_decl_ranges(&item.children, out);
    }
}
