//! `nondet-iteration`: forbids hash-ordered iteration where order can
//! escape.
//!
//! `HashMap`/`HashSet` iteration order is randomized per process (SipHash
//! keying), so any result that observes it — a `Vec` collected from
//! `.keys()`, a `for` loop pushing into an output, a report string — varies
//! run to run. The rule types iteration receivers through the workspace
//! model (fn params, `let` bindings, `self.field` via the enclosing
//! `impl`'s struct declared in any file of the crate, type aliases
//! chased cross-file), then checks where the iterator's order goes:
//!
//! - **clean**: order-insensitive sinks (`sum`, `count`, `min`/`max`,
//!   `any`/`all`, ...), `collect()` into an unordered or sorted container
//!   (`HashMap`/`HashSet`/`BTreeMap`/`BTreeSet`), and feeding an
//!   order-insensitive consumer (`extend`, `from_iter`);
//! - **flagged**: everything else — `for` loops over hash containers,
//!   chains ending in `collect::<Vec<_>>()`, or iterators that simply
//!   escape.
//!
//! Receivers the model cannot type are never flagged (unknown = clean);
//! the fix is almost always `BTreeMap`/`BTreeSet`, which cost one log
//! factor and buy reproducible output.

use std::collections::BTreeSet;

use crate::context::FileContext;
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::parser::{matching_close, skip_angles, struct_fields, type_path, Item, ItemKind};
use crate::rules::determinism::in_scope;
use crate::rules::{Rule, RuleInputs};
use crate::workspace::WorkspaceModel;

/// Methods that begin iteration over a container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Chain sinks whose result does not depend on iteration order.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "is_empty",
    "len",
];

/// Callers that consume an iterator order-insensitively
/// (`set.extend(map.keys())`).
const ORDER_INSENSITIVE_CONSUMERS: &[&str] = &["extend", "from_iter"];

/// `collect()` targets that erase or re-establish order.
const ORDER_SAFE_COLLECT: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration where order reaches the result — use BTreeMap/BTreeSet"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, &[]) {
            return Vec::new();
        }
        let mut lines = BTreeSet::new();
        walk_fns(
            inputs.file,
            inputs.model,
            &inputs.file.items,
            None,
            &mut lines,
        );
        lines
            .into_iter()
            .map(|line| {
                Diagnostic::new(
                    &inputs.file.rel,
                    line,
                    self.name(),
                    "iterates a hash-ordered container where the order can reach the \
                     result; HashMap/HashSet order is randomized per process — use \
                     BTreeMap/BTreeSet, or sort before use"
                        .to_string(),
                )
            })
            .collect()
    }
}

/// Recurses into every fn body, tracking the enclosing `impl` self type for
/// `self.field` lookups.
fn walk_fns(
    file: &FileContext,
    model: &WorkspaceModel,
    items: &[Item],
    self_ty: Option<&str>,
    lines: &mut BTreeSet<u32>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn => {
                if let Some(body) = item.body {
                    if !file.in_test_code(item.kw) {
                        check_fn(file, model, item, body, self_ty, lines);
                    }
                }
            }
            ItemKind::Impl => {
                walk_fns(file, model, &item.children, item.name.as_deref(), lines);
            }
            ItemKind::Mod => {
                walk_fns(file, model, &item.children, self_ty, lines);
            }
            _ => {}
        }
    }
}

/// Typed bindings visible in one fn: parameters plus `let` bindings whose
/// type is annotated or constructed in place.
fn fn_bindings(
    file: &FileContext,
    item: &Item,
    body: (usize, usize),
) -> Vec<(String, Vec<String>)> {
    let t = &file.tokens;
    let mut bindings = Vec::new();
    // Parameters share the `name: Type` shape with struct fields.
    let mut k = item.header.0;
    while k < item.header.1 && !t[k].is_open('(') {
        k += 1;
    }
    if k < item.header.1 {
        let close = matching_close(t, k, item.header.1);
        bindings.extend(struct_fields(t, (k + 1, close)));
    }
    // `let [mut] name: Type = ...` and `let [mut] name = Type::new(...)`.
    let (mut i, end) = body;
    while i < end {
        if !t[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < end && t[j].is_ident("mut") {
            j += 1;
        }
        if j >= end || t[j].kind != TokenKind::Ident {
            i = j;
            continue;
        }
        let name = t[j].text.clone();
        let ty = match t.get(j + 1) {
            Some(n) if n.is_punct(":") => type_path(&t[j + 2..end.min(j + 16)]),
            Some(n) if n.is_punct("=") => {
                // `= HashMap::new()` / `= HashMap::with_capacity(..)`.
                let rhs = type_path(&t[j + 2..end.min(j + 16)]);
                match rhs.last().map(String::as_str) {
                    Some("new" | "with_capacity" | "default" | "from") if rhs.len() > 1 => {
                        rhs[..rhs.len() - 1].to_vec()
                    }
                    _ => Vec::new(),
                }
            }
            _ => Vec::new(),
        };
        if !ty.is_empty() {
            bindings.push((name, ty));
        }
        i = j + 1;
    }
    bindings
}

fn check_fn(
    file: &FileContext,
    model: &WorkspaceModel,
    item: &Item,
    body: (usize, usize),
    self_ty: Option<&str>,
    lines: &mut BTreeSet<u32>,
) {
    let t = &file.tokens;
    let bindings = fn_bindings(file, item, body);
    let receiver_is_hash = |start: usize, i: usize| -> bool {
        // `self.field` → field type from the enclosing impl's struct.
        if t[start].is_ident("self")
            && i == start + 2
            && t[start + 1].is_punct(".")
            && t[i].kind == TokenKind::Ident
        {
            let Some(ty_name) = self_ty else {
                return false;
            };
            let Some(def) = model.struct_def(&file.rel, &[ty_name.to_string()]) else {
                return false;
            };
            let Some(fty) = def.fields.get(&t[i].text) else {
                return false;
            };
            let def_file = def.file.clone();
            return model.is_hash_container(&def_file, fty);
        }
        // A plain local/param binding.
        if start == i && t[i].kind == TokenKind::Ident {
            let found = bindings.iter().rev().find(|(n, _)| *n == t[i].text);
            return found.is_some_and(|(_, ty)| model.is_hash_container(&file.rel, ty));
        }
        false
    };

    let (mut i, end) = body;
    while i < end {
        // `for pat in <receiver><chain> {`
        if t[i].is_ident("for") && !t.get(i + 1).is_some_and(|n| n.text.starts_with('<')) {
            if let Some(in_at) = find_in_keyword(t, i + 1, end) {
                let mut r = in_at + 1;
                while r < end && (t[r].is_punct("&") || t[r].is_ident("mut")) {
                    r += 1;
                }
                let (base_start, base_end) = receiver_span(t, r, end);
                if base_end > base_start && receiver_is_hash(base_start, base_end - 1) {
                    // A chain between the receiver and `{` may still fix the
                    // order (`.collect::<BTreeSet<_>>()`); otherwise flag.
                    if chain_orders_escape(t, base_end, end) {
                        lines.insert(t[i].line);
                    }
                }
                i = in_at + 1;
                continue;
            }
        }
        // `<receiver>.iter()`-style chains.
        if i >= 2
            && t[i].kind == TokenKind::Ident
            && ITER_METHODS.contains(&t[i].text.as_str())
            && t[i - 1].is_punct(".")
            && t.get(i + 1).is_some_and(|n| n.is_open('('))
        {
            let (base_start, base_end) = receiver_before(t, i - 1, body.0);
            if base_end > base_start
                && receiver_is_hash(base_start, base_end - 1)
                && !consumed_order_insensitively(t, base_start, body.0)
                && chain_orders_escape(t, base_end, end)
            {
                lines.insert(t[i].line);
            }
        }
        i += 1;
    }
}

/// The `in` of a `for` loop: first `in` at zero delimiter depth.
fn find_in_keyword(t: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut k = from;
    while k < end {
        if t[k].kind == TokenKind::Open {
            k = (matching_close(t, k, end) + 1).min(end);
            continue;
        }
        if t[k].is_ident("in") {
            return Some(k);
        }
        if t[k].is_open('{') || t[k].is_punct(";") {
            return None;
        }
        k += 1;
    }
    None
}

/// The receiver expression starting at `r`: `self.field` or a single
/// identifier. Returns a half-open token span; empty when unrecognized.
fn receiver_span(t: &[Token], r: usize, end: usize) -> (usize, usize) {
    if r < end && t[r].is_ident("self") {
        if r + 2 < end && t[r + 1].is_punct(".") && t[r + 2].kind == TokenKind::Ident {
            return (r, r + 3);
        }
        return (r, r);
    }
    if r < end && t[r].kind == TokenKind::Ident {
        // `ident.method(...)` chains leave the base as just `ident`; a
        // deeper field path (`a.b.c`) is unknown → clean.
        return (r, r + 1);
    }
    (r, r)
}

/// Walks back from the `.` at `dot` to find the receiver span.
fn receiver_before(t: &[Token], dot: usize, floor: usize) -> (usize, usize) {
    if dot == floor || t[dot - 1].kind != TokenKind::Ident {
        return (dot, dot);
    }
    let id = dot - 1;
    if id >= floor + 2 && t[id - 1].is_punct(".") && t[id - 2].is_ident("self") {
        return (id - 2, id + 1);
    }
    if id > floor && (t[id - 1].is_punct(".") || t[id - 1].is_punct("::")) {
        return (id, id); // deeper chain or path → unknown
    }
    (id, id + 1)
}

/// `true` when the receiver is an argument to an order-insensitive consumer:
/// `set.extend(map.keys())`.
fn consumed_order_insensitively(t: &[Token], base_start: usize, floor: usize) -> bool {
    if base_start <= floor || !t[base_start - 1].is_open('(') {
        return false;
    }
    base_start >= floor + 2
        && t[base_start - 2].kind == TokenKind::Ident
        && ORDER_INSENSITIVE_CONSUMERS.contains(&t[base_start - 2].text.as_str())
}

/// Scans the method chain starting right after the receiver at `from` and
/// decides whether iteration order can escape. Conservative in the lint's
/// favour: unknown sinks (`collect()` with no turbofish) are clean.
fn chain_orders_escape(t: &[Token], from: usize, end: usize) -> bool {
    let mut k = from;
    while k + 1 < end && t[k].is_punct(".") && t[k + 1].kind == TokenKind::Ident {
        let method = t[k + 1].text.as_str();
        let mut after = k + 2;
        // Turbofish: `collect::<BTreeMap<_, _>>()`.
        let mut turbofish: Option<(usize, usize)> = None;
        if t.get(after).is_some_and(|n| n.is_punct("::"))
            && t.get(after + 1).is_some_and(|n| n.text.starts_with('<'))
        {
            let close = skip_angles(t, after + 1, end);
            turbofish = Some((after + 1, close));
            after = close;
        }
        if ORDER_INSENSITIVE_SINKS.contains(&method) {
            return false;
        }
        if method == "collect" {
            return match turbofish {
                Some((lo, hi)) => !t[lo.min(end)..hi.min(end)]
                    .iter()
                    .any(|tok| ORDER_SAFE_COLLECT.contains(&tok.text.as_str())),
                // No turbofish: the target type is unknown → clean.
                None => false,
            };
        }
        // Adapter (`map`, `filter`, `cloned`, ...): skip its args, continue.
        if t.get(after).is_some_and(|n| n.is_open('(')) {
            k = (matching_close(t, after, end) + 1).min(end);
        } else {
            k = after;
        }
    }
    // Chain ended without an order-insensitive sink: the iterator (or the
    // loop) observes hash order.
    true
}
