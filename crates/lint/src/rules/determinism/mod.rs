//! The `determinism` rule family.
//!
//! CORDOBA's caching, replay, and parallel-equivalence guarantees all rest
//! on one invariant: **every sweep result is a pure function of its
//! inputs**. The property suites (`prop_parallel`, `prop_obs_determinism`)
//! verify that after the fact; these rules enforce the sources of
//! nondeterminism at commit time, using the [`crate::parser`] /
//! [`crate::workspace`] layers to resolve names across files:
//!
//! | rule | what it forbids | sanctioned in |
//! |------|-----------------|---------------|
//! | `nondet-iteration` | iterating `HashMap`/`HashSet` where order can escape | — |
//! | `wall-clock` | `SystemTime::now` / `Instant::now` | `obs`, `bench`, `cli` |
//! | `raw-thread` | `std::thread` spawn/scope, `mpsc` channels | `par` |
//! | `ambient-input` | `env::var`, `std::fs` reads in library crates | `cli`, `bench`, `lint` |
//! | `atomic-ordering` | `Ordering::Relaxed` outside the obs counter registry | `obs`, `bench` |
//! | `global-state` | `static mut`, interior-mutable statics, `thread_local!` | `obs`, `bench` |
//!
//! Test code (`#[cfg(test)]`, `tests/`) is exempt everywhere: tests may
//! time, spawn, and read as they like. All rules are `deny` by default
//! except `atomic-ordering` (`warn` — relaxed loads on monotonic stat
//! counters are a legitimate pattern that deserves a justified
//! `allow` marker rather than a failing gate).

mod ambient_input;
mod atomic_ordering;
mod global_state;
mod nondet_iteration;
mod raw_thread;
mod wall_clock;

pub use ambient_input::AmbientInput;
pub use atomic_ordering::AtomicOrdering;
pub use global_state::GlobalState;
pub use nondet_iteration::NondetIteration;
pub use raw_thread::RawThread;
pub use wall_clock::WallClock;

use crate::context::FileKind;
use crate::lexer::{Token, TokenKind};

/// Names of every rule in the family (the `determinism` group in rule
/// lists).
pub const FAMILY: &[&str] = &[
    "nondet-iteration",
    "wall-clock",
    "raw-thread",
    "ambient-input",
    "atomic-ordering",
    "global-state",
];

/// `true` when a determinism rule applies to this file: crate sources
/// outside the rule's sanctioned crates, plus stand-alone snippets.
/// Tests, benches, and examples are never in scope.
pub(crate) fn in_scope(kind: &FileKind, sanctioned: &[&str]) -> bool {
    match kind {
        FileKind::CrateSrc(k) => !sanctioned.contains(&k.as_str()),
        FileKind::Unknown => true,
        FileKind::Test | FileKind::Bench | FileKind::Example => false,
    }
}

/// Collects the `a::b::c` path whose final segment is the identifier at
/// token index `i` (walking `ident::` pairs backwards).
pub(crate) fn path_ending_at(t: &[Token], i: usize) -> Vec<String> {
    let mut start = i;
    while start >= 2 && t[start - 1].is_punct("::") && t[start - 2].kind == TokenKind::Ident {
        start -= 2;
    }
    let mut segs = Vec::new();
    let mut k = start;
    while k <= i {
        segs.push(t[k].text.clone());
        k += 2;
    }
    segs
}
