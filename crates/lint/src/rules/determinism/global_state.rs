//! `global-state`: forbids mutable process-wide state outside the obs
//! registry.
//!
//! `static mut`, interior-mutable statics (`Mutex`, `AtomicU64`,
//! `OnceLock`, ...), and `thread_local!` slots make results depend on what
//! ran *before* — call order, warm-up, other tests in the same process.
//! The sanctioned channel for process-wide state is the `cordoba_obs`
//! metrics registry: statics whose type resolves to an obs-owned type
//! (`Counter`, `Histogram`) are allowed anywhere, because the registry is
//! observability-only by construction and never feeds back into results.
//! Interior mutability is resolved through the workspace model, so a
//! static whose type is a local struct *wrapping* an `AtomicU64` three
//! files away still fires.

use crate::context::FileContext;
use crate::diagnostics::Diagnostic;
use crate::parser::{type_path, Item, ItemKind};
use crate::rules::determinism::in_scope;
use crate::rules::{Rule, RuleInputs};
use crate::workspace::WorkspaceModel;

/// obs owns the registry; bench may keep harness state.
const SANCTIONED: &[&str] = &["obs", "bench"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct GlobalState;

impl Rule for GlobalState {
    fn name(&self) -> &'static str {
        "global-state"
    }

    fn description(&self) -> &'static str {
        "static mut / interior-mutable statics outside the obs registry"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, SANCTIONED) {
            return Vec::new();
        }
        let mut diags = Vec::new();
        walk(
            self,
            inputs.file,
            inputs.model,
            &inputs.file.items,
            &mut diags,
        );
        diags
    }
}

fn walk(
    rule: &GlobalState,
    file: &FileContext,
    model: &WorkspaceModel,
    items: &[Item],
    diags: &mut Vec<Diagnostic>,
) {
    for item in items {
        if file.in_test_code(item.kw) {
            continue;
        }
        match &item.kind {
            ItemKind::Static { mutable } => {
                let name = item.name.as_deref().unwrap_or("_");
                if *mutable {
                    diags.push(Diagnostic::new(
                        &file.rel,
                        item.line,
                        rule.name(),
                        format!(
                            "`static mut {name}` is process-wide mutable state; results \
                             become order-dependent — pass state through arguments or use \
                             the obs registry for metrics",
                        ),
                    ));
                    continue;
                }
                let ty = static_type(file, item);
                if ty.is_empty() || !model.is_interior_mutable_type(&file.rel, &ty) {
                    continue;
                }
                // The sanctioned channel: obs registry types are fine
                // anywhere (Counter/Histogram statics never feed results).
                let canon = model.canonical_type(&file.rel, &ty);
                if model.type_owner_crate(&file.rel, &canon).as_deref() == Some("obs") {
                    continue;
                }
                diags.push(Diagnostic::new(
                    &file.rel,
                    item.line,
                    rule.name(),
                    format!(
                        "static `{name}: {}` is interior-mutable process-wide state; \
                         results become order-dependent — thread it through arguments, or \
                         register an obs Counter/Histogram if this is a metric",
                        ty.join("::"),
                    ),
                ));
            }
            ItemKind::MacroCall if item.name.as_deref() == Some("thread_local") => {
                diags.push(Diagnostic::new(
                    &file.rel,
                    item.line,
                    rule.name(),
                    "`thread_local!` state differs per worker thread, so parallel and \
                     sequential runs diverge — pass state through arguments instead"
                        .to_string(),
                ));
            }
            ItemKind::Mod | ItemKind::Impl => {
                walk(rule, file, model, &item.children, diags);
            }
            _ => {}
        }
    }
}

/// The declared type of a `static` item: tokens between `:` and `=` in its
/// header. Empty when the shape is unexpected.
fn static_type(file: &FileContext, item: &Item) -> Vec<String> {
    let header = &file.tokens[item.kw..item.header.1];
    let Some(colon) = header.iter().position(|t| t.is_punct(":")) else {
        return Vec::new();
    };
    type_path(&header[colon + 1..])
}
