//! `raw-thread`: forbids raw `std::thread` / `mpsc` use outside
//! `cordoba-par`.
//!
//! PR 3 pinned bit-identical parallel/sequential results by funnelling all
//! concurrency through `cordoba_par`'s deterministic, order-preserving
//! chunked map. A stray `thread::spawn` or `mpsc::channel` reintroduces
//! scheduling-order dependence that no property suite can exhaustively
//! test. Library code must express parallelism as `par_map`/`try_par_map`
//! over pure closures; only the `par` crate itself may touch the std
//! primitives.

use crate::diagnostics::Diagnostic;
use crate::rules::determinism::{in_scope, path_ending_at};
use crate::rules::{Rule, RuleInputs};

/// The one crate allowed to own raw threads.
const SANCTIONED: &[&str] = &["par"];

/// Call targets that create threads or channels.
const SPAWN_LIKE: &[&str] = &["spawn", "scope", "channel", "sync_channel"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct RawThread;

impl Rule for RawThread {
    fn name(&self) -> &'static str {
        "raw-thread"
    }

    fn description(&self) -> &'static str {
        "std::thread spawn/scope or mpsc channels outside cordoba-par — use par_map"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, SANCTIONED) {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let rel = &inputs.file.rel;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if inputs.file.in_test_code(i) {
                continue;
            }
            let callish = SPAWN_LIKE.contains(&t[i].text.as_str())
                && t[i].kind == crate::lexer::TokenKind::Ident
                && t.get(i + 1).is_some_and(|n| n.is_open('('));
            let builderish =
                t[i].is_ident("Builder") && t.get(i + 1).is_some_and(|n| n.is_punct("::"));
            if !callish && !builderish {
                continue;
            }
            // A method call (`pool.spawn(...)`) is someone else's API.
            if i > 0 && t[i - 1].is_punct(".") {
                continue;
            }
            let resolved = inputs.model.resolve_path(rel, &path_ending_at(t, i));
            let std_rooted = matches!(resolved.first().map(String::as_str), Some("std" | "core"));
            let threadish = resolved.iter().any(|s| s == "thread" || s == "mpsc");
            if std_rooted && threadish {
                diags.push(Diagnostic::new(
                    rel,
                    t[i].line,
                    self.name(),
                    format!(
                        "`{}` creates raw threads/channels whose scheduling order is \
                         nondeterministic; route parallelism through `cordoba_par::par_map` \
                         (only crates/par may use std::thread directly)",
                        resolved.join("::"),
                    ),
                ));
            }
        }
        diags
    }
}
