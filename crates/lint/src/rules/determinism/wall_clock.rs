//! `wall-clock`: forbids reading the system clock in result-producing code.
//!
//! A sweep result that depends on `Instant::now()` or `SystemTime::now()`
//! cannot be cached, replayed, or compared across runs — the exact
//! properties ROADMAP items 1 and 5 need. Timing belongs to the
//! observability layer (`obs` spans), the benches, and the CLI; library
//! kernels must take time as a typed input (`Seconds`) instead of sampling
//! it ambiently. Import aliases are seen through: `use std::time::Instant
//! as Clock; Clock::now()` still fires.

use crate::diagnostics::Diagnostic;
use crate::rules::determinism::{in_scope, path_ending_at};
use crate::rules::{Rule, RuleInputs};

/// Crates that own timing by design.
const SANCTIONED: &[&str] = &["obs", "bench", "cli"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn description(&self) -> &'static str {
        "SystemTime::now/Instant::now outside obs/bench/cli — take time as a typed input"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !in_scope(&inputs.file.kind, SANCTIONED) {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if !(t[i].is_ident("now") && t.get(i + 1).is_some_and(|n| n.is_open('(')))
                || inputs.file.in_test_code(i)
            {
                continue;
            }
            if !(i >= 2 && t[i - 1].is_punct("::")) {
                continue;
            }
            let path = path_ending_at(t, i);
            if path.len() < 2 {
                continue;
            }
            let ty = &path[..path.len() - 1];
            let resolved = inputs.model.resolve_path(&inputs.file.rel, ty);
            if is_clock_type(inputs, &resolved) {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    t[i].line,
                    self.name(),
                    format!(
                        "`{}::now()` reads the wall clock, making the result \
                         irreproducible; pass time in as a typed input (`Seconds`) or \
                         move the timing into obs/bench/cli",
                        resolved.join("::"),
                    ),
                ));
            }
        }
        diags
    }
}

/// `true` when the resolved type path denotes `std::time::Instant` or
/// `std::time::SystemTime` (and is not shadowed by a workspace type).
fn is_clock_type(inputs: &RuleInputs<'_>, resolved: &[String]) -> bool {
    let Some(last) = resolved.last() else {
        return false;
    };
    if last != "Instant" && last != "SystemTime" {
        return false;
    }
    if resolved.len() == 1 {
        // Bare name, no import: std's unless this crate defines its own.
        return inputs
            .model
            .struct_def(&inputs.file.rel, resolved)
            .is_none();
    }
    matches!(resolved[0].as_str(), "std" | "core") || resolved.iter().any(|s| s == "time")
}
