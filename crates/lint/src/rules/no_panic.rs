//! `no-panic`: forbids `unwrap()`, `expect(...)`, `panic!`, `unreachable!`,
//! `todo!`, and `unimplemented!` in non-test library code.
//!
//! CORDOBA is meant to run as a long-lived service; a panic in the carbon
//! kernels takes a whole shard down. Library code should surface errors as
//! `Result` (see `cordoba_carbon::error`). APIs with a documented "Panics
//! if" contract may keep an explicit `// cordoba-lint: allow(no-panic)`
//! marker next to the panic site.

use crate::context::FileKind;
use crate::diagnostics::Diagnostic;
use crate::rules::{Rule, RuleInputs};

/// Crates whose `src/` trees must stay panic-free (test modules excluded).
const PANIC_FREE_CRATES: &[&str] = &[
    "carbon",
    "tech",
    "workloads",
    "core",
    "cli",
    "lint",
    "robust",
    "par",
    "obs",
    "store",
];

/// Macros that abort the process when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct NoPanic;

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! in library code — return Result instead"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        match &inputs.file.kind {
            FileKind::CrateSrc(krate) if PANIC_FREE_CRATES.contains(&krate.as_str()) => {}
            FileKind::Unknown => {}
            _ => return Vec::new(),
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if inputs.file.in_test_code(i) {
                continue;
            }
            let found = if (t[i].is_ident("unwrap") || t[i].is_ident("expect"))
                && i > 0
                && t[i - 1].is_punct(".")
                && t.get(i + 1).is_some_and(|n| n.is_open('('))
            {
                Some(format!(
                    "`.{}(...)` can panic at runtime; propagate a Result (or document the \
                     invariant and add `// cordoba-lint: allow(no-panic)`)",
                    t[i].text
                ))
            } else if PANIC_MACROS.contains(&t[i].text.as_str())
                && t[i].kind == crate::lexer::TokenKind::Ident
                && t.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some(format!(
                    "`{}!` aborts the caller; return a typed error from library code",
                    t[i].text
                ))
            } else {
                None
            };
            if let Some(message) = found {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    t[i].line,
                    self.name(),
                    message,
                ));
            }
        }
        diags
    }
}
