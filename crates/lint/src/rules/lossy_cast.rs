//! `lossy-cast`: flags `as`-casts between numeric types in the carbon and
//! tech numeric kernels.
//!
//! `as` silently truncates, wraps, and loses precision (`u64 as f64` above
//! 2^53, `f64 as u32` of a negative). In the crates that own the ACT-style
//! carbon equations those bugs corrupt estimates without any runtime signal,
//! so conversions there must go through `From`/`TryFrom` or a documented
//! helper; sites where the cast is provably safe carry an explicit
//! `// cordoba-lint: allow(lossy-cast)` marker with the argument.

use crate::context::FileKind;
use crate::diagnostics::Diagnostic;
use crate::rules::{Rule, RuleInputs};

/// Crates whose numeric kernels must not use bare `as` casts.
const STRICT_CAST_CRATES: &[&str] = &["carbon", "tech"];

/// Numeric primitive type names that make an `as` cast suspicious.
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct LossyCast;

impl Rule for LossyCast {
    fn name(&self) -> &'static str {
        "lossy-cast"
    }

    fn description(&self) -> &'static str {
        "numeric `as` cast in carbon/tech kernels — use From/TryFrom or a documented helper"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        match &inputs.file.kind {
            FileKind::CrateSrc(krate) if STRICT_CAST_CRATES.contains(&krate.as_str()) => {}
            FileKind::Unknown => {}
            _ => return Vec::new(),
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if t[i].is_ident("as")
                && !inputs.file.in_test_code(i)
                && t.get(i + 1)
                    .is_some_and(|n| NUMERIC_TYPES.contains(&n.text.as_str()))
            {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    t[i].line,
                    self.name(),
                    format!(
                        "bare `as {}` cast in a numeric kernel; prefer `{}::from`/`try_from` \
                         (or justify with `// cordoba-lint: allow(lossy-cast)`)",
                        t[i + 1].text,
                        t[i + 1].text
                    ),
                ));
            }
        }
        diags
    }
}
