//! `float-eq`: flags `==` / `!=` comparisons against float literals.
//!
//! Exact float equality is almost never what a numeric model wants: after
//! any arithmetic, `x == 0.1` is false for values that print as `0.1`.
//! Compare with an epsilon (`(x - y).abs() < tol`), or — for genuine
//! sentinel checks such as division-by-zero guards against a value that was
//! *assigned* `0.0` — keep the comparison and add an explicit
//! `// cordoba-lint: allow(float-eq)` marker stating why exactness is
//! intended. The literal-pattern heuristic never sees types, so variable ==
//! variable float comparisons are out of scope (clippy::float_cmp covers
//! those).

use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{Rule, RuleInputs};

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct FloatEq;

impl Rule for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "==/!= against a float literal — compare with an epsilon or mark the sentinel"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if !(t[i].is_punct("==") || t[i].is_punct("!=")) || inputs.file.in_test_code(i) {
                continue;
            }
            let prev_is_float = i > 0 && t[i - 1].kind == TokenKind::Float;
            let next_is_float = match t.get(i + 1) {
                Some(n) if n.kind == TokenKind::Float => true,
                // `== -1.0`
                Some(n) if n.is_punct("-") => {
                    t.get(i + 2).is_some_and(|n2| n2.kind == TokenKind::Float)
                }
                _ => false,
            };
            if prev_is_float || next_is_float {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    t[i].line,
                    self.name(),
                    format!(
                        "exact `{}` against a float literal; compare with an epsilon or \
                         mark an intentional sentinel with `// cordoba-lint: allow(float-eq)`",
                        t[i].text
                    ),
                ));
            }
        }
        diags
    }
}
