//! `raw-constant`: flags bare float literals that equal known physical
//! constants, outside `units.rs`.
//!
//! `3.6e6` scattered through the code is a silent re-derivation of
//! `JOULES_PER_KILOWATT_HOUR`; if one site ever types `3.6e5` the carbon
//! estimate is off by 10× with no test of the constant itself failing. All
//! such conversions must reference the named constants in
//! `cordoba_carbon::units`.

use crate::diagnostics::Diagnostic;
use crate::lexer::{float_literal_value, TokenKind};
use crate::rules::{Rule, RuleInputs};

// This file necessarily spells out the constant values it hunts for.
// cordoba-lint: allow-file(raw-constant)

/// Known constants: value ↔ the name to use instead.
const KNOWN_CONSTANTS: &[(f64, &str)] = &[
    (3.6e6, "units::JOULES_PER_KILOWATT_HOUR"),
    (3_600.0, "units::SECONDS_PER_HOUR"),
    (86_400.0, "units::SECONDS_PER_DAY"),
    (31_536_000.0, "units::SECONDS_PER_YEAR"),
];

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct RawConstant;

impl Rule for RawConstant {
    fn name(&self) -> &'static str {
        "raw-constant"
    }

    fn description(&self) -> &'static str {
        "bare float equal to a known physical constant — use the named units:: const"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if inputs.file.file_name == "units.rs" {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for tok in t {
            if tok.kind != TokenKind::Float {
                continue;
            }
            let Some(value) = float_literal_value(&tok.text) else {
                continue;
            };
            if let Some((_, name)) = KNOWN_CONSTANTS.iter().find(|(v, _)| *v == value) {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    tok.line,
                    self.name(),
                    format!(
                        "bare `{}` duplicates a physical constant; use `{name}`",
                        tok.text
                    ),
                ));
            }
        }
        diags
    }
}
