//! `unit-laundering`: flags `Quantity::new(...)` calls whose argument
//! contains `.value()`, outside `units.rs` itself.
//!
//! `Watts::new(e.value() / t.value())` silently re-labels a raw `f64` with a
//! unit the type system never checked — the classic way carbon-accounting
//! math goes wrong (a `W*s` vs `kWh` slip changes results by 3.6e6×). The
//! fix is almost always a dimensional operator on the typed quantities
//! (`e / t`), adding the missing `dimensional!` impl in `units.rs` if the
//! combination does not exist yet.

use crate::diagnostics::Diagnostic;
use crate::rules::{Rule, RuleInputs};

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct UnitLaundering;

impl Rule for UnitLaundering {
    fn name(&self) -> &'static str {
        "unit-laundering"
    }

    fn description(&self) -> &'static str {
        "Quantity::new(..) fed from .value() — use dimensional operators on typed quantities"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        // units.rs is where the checked arithmetic itself lives.
        if inputs.file.file_name == "units.rs" {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        for i in 0..t.len() {
            if !inputs.units.contains(&t[i].text) {
                continue;
            }
            if !(t.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && t.get(i + 2).is_some_and(|n| n.is_ident("new"))
                && t.get(i + 3).is_some_and(|n| n.is_open('(')))
            {
                continue;
            }
            let open = i + 3;
            // Walk the balanced argument list looking for `.value()`.
            let mut depth = 0;
            let mut j = open;
            while j < t.len() {
                if t[j].is_open('(') {
                    depth += 1;
                } else if t[j].is_close(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t[j].is_punct(".")
                    && t.get(j + 1).is_some_and(|n| n.is_ident("value"))
                    && t.get(j + 2).is_some_and(|n| n.is_open('('))
                    && t.get(j + 3).is_some_and(|n| n.is_close(')'))
                {
                    diags.push(Diagnostic::new(
                        &inputs.file.rel,
                        t[i].line,
                        self.name(),
                        format!(
                            "`{}::new(...)` launders a raw f64 built from `.value()`; \
                             use dimensional operators on the typed quantities (add a \
                             `dimensional!` impl in units.rs if the combination is missing)",
                            t[i].text
                        ),
                    ));
                    break;
                }
                j += 1;
            }
        }
        diags
    }
}
