//! Rule trait and registry.
//!
//! Each rule is independently toggleable (CLI `--rules`/`--skip`) and
//! suppressible in source via `// cordoba-lint: allow(<rule>)` markers (see
//! [`crate::markers`]). Rules receive the shared [`FileContext`] plus the
//! workspace-wide unit-type set and return raw findings; the driver filters
//! suppressed ones.

use std::collections::BTreeSet;

use crate::context::FileContext;
use crate::diagnostics::{Diagnostic, Severity};
use crate::workspace::WorkspaceModel;

pub mod determinism;
mod float_eq;
mod lossy_cast;
mod must_use;
mod no_panic;
mod raw_constant;
mod unit_laundering;

pub use determinism::{
    AmbientInput, AtomicOrdering, GlobalState, NondetIteration, RawThread, WallClock,
};
pub use float_eq::FloatEq;
pub use lossy_cast::LossyCast;
pub use must_use::MissingMustUse;
pub use no_panic::NoPanic;
pub use raw_constant::RawConstant;
pub use unit_laundering::UnitLaundering;

/// Shared inputs available to every rule.
#[derive(Debug)]
pub struct RuleInputs<'a> {
    /// The file under analysis.
    pub file: &'a FileContext,
    /// Names of all typed physical quantities (seeded with the known set,
    /// augmented from `quantity!` declarations found while walking).
    pub units: &'a BTreeSet<String>,
    /// Cross-file workspace model built from every file in the run.
    pub model: &'a WorkspaceModel,
}

/// A single domain lint.
pub trait Rule {
    /// Stable kebab-case name used in diagnostics, CLI toggles, and
    /// suppression markers.
    fn name(&self) -> &'static str;

    /// One-line description shown by `cordoba-lint rules`.
    fn description(&self) -> &'static str;

    /// Default severity; the CLI can override per rule with `--deny`/
    /// `--warn`.
    fn severity(&self) -> Severity {
        Severity::Deny
    }

    /// Runs the rule over one file, returning unfiltered findings.
    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic>;
}

/// All rules, in the order they are listed in the documentation.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnitLaundering),
        Box::new(NoPanic),
        Box::new(FloatEq),
        Box::new(LossyCast),
        Box::new(RawConstant),
        Box::new(MissingMustUse),
        Box::new(NondetIteration),
        Box::new(WallClock),
        Box::new(RawThread),
        Box::new(AmbientInput),
        Box::new(AtomicOrdering),
        Box::new(GlobalState),
    ]
}

/// The names of all registered rules.
#[must_use]
pub fn rule_names() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.name()).collect()
}

/// Expands a rule-list entry: family names (`determinism`) become their
/// member rules, everything else stays as written.
#[must_use]
pub fn expand(name: &str) -> Vec<&str> {
    if name == "determinism" {
        determinism::FAMILY.to_vec()
    } else {
        vec![name]
    }
}

/// The unit-type names `cordoba-lint` knows about even before reading
/// `units.rs` (kept in sync by the workspace self-check, which also unions
/// in every `quantity!` declaration it finds while walking).
#[must_use]
pub fn default_units() -> BTreeSet<String> {
    [
        "Seconds",
        "Hertz",
        "Joules",
        "KilowattHours",
        "Watts",
        "GramsCo2e",
        "SquareCentimeters",
        "SquareMillimeters",
        "CarbonIntensity",
        "EnergyPerArea",
        "CarbonPerArea",
        "JouleSeconds",
        "GramSecondsCo2e",
        "DefectDensity",
        "Millimeters",
        "Bytes",
        "BytesPerSecond",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}
