//! `missing-must-use`: public functions returning a bare unit quantity must
//! be `#[must_use]`.
//!
//! Dropping a computed `GramsCo2e` or `Joules` on the floor is always a bug
//! in an accounting library — the caller either wanted the number or should
//! not have paid for the computation. `#[must_use]` makes the compiler say
//! so. Functions returning `Result<Quantity, _>` are already covered by
//! `Result`'s own `#[must_use]` and are not flagged.

use crate::context::FileKind;
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Rule, RuleInputs};

/// See module docs.
#[derive(Debug, Clone, Copy)]
pub struct MissingMustUse;

impl Rule for MissingMustUse {
    fn name(&self) -> &'static str {
        "missing-must-use"
    }

    fn description(&self) -> &'static str {
        "public fn returning a unit quantity without #[must_use]"
    }

    fn check(&self, inputs: &RuleInputs<'_>) -> Vec<Diagnostic> {
        if !matches!(inputs.file.kind, FileKind::CrateSrc(_) | FileKind::Unknown) {
            return Vec::new();
        }
        let t = &inputs.file.tokens;
        let mut diags = Vec::new();
        let mut i = 0;
        while i < t.len() {
            if !t[i].is_ident("pub") || inputs.file.in_test_code(i) {
                i += 1;
                continue;
            }
            let pub_at = i;
            i += 1;
            // Restricted visibility (`pub(crate)`, `pub(super)`) is not
            // public API.
            if t.get(i).is_some_and(|n| n.is_open('(')) {
                continue;
            }
            // Allow fn qualifiers, but bail if this `pub` introduces some
            // other item (struct, use, const item, ...).
            while t
                .get(i)
                .is_some_and(|n| n.is_ident("const") || n.is_ident("async") || n.is_ident("unsafe"))
            {
                i += 1;
            }
            if !t.get(i).is_some_and(|n| n.is_ident("fn")) {
                continue;
            }
            let Some(fn_name) = t.get(i + 1).map(|n| n.text.clone()) else {
                continue;
            };
            i += 2;
            // Skip generics (angle depth; `>>` closes two levels).
            let mut angle: i32 = 0;
            while i < t.len() {
                match t[i].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                if angle == 0 && t[i].is_open('(') {
                    break;
                }
                i += 1;
            }
            // Skip the parameter list.
            let mut depth = 0;
            while i < t.len() {
                if t[i].is_open('(') {
                    depth += 1;
                } else if t[i].is_close(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            i += 1;
            if !t.get(i).is_some_and(|n| n.is_punct("->")) {
                continue;
            }
            // Collect the return type up to the body / where-clause / `;`.
            let mut ret: Vec<&Token> = Vec::new();
            let mut j = i + 1;
            while j < t.len() {
                if t[j].is_open('{') || t[j].is_punct(";") || t[j].is_ident("where") {
                    break;
                }
                ret.push(&t[j]);
                j += 1;
            }
            if returns_bare_unit(&ret, inputs) && !has_must_use_attr(t, pub_at) {
                diags.push(Diagnostic::new(
                    &inputs.file.rel,
                    t[pub_at].line,
                    self.name(),
                    format!(
                        "public fn `{fn_name}` returns `{}` without `#[must_use]`; \
                         dropping a computed quantity is always a bug",
                        ret.last().map_or("?", |tok| tok.text.as_str())
                    ),
                ));
            }
            i = j;
        }
        diags
    }
}

/// `true` when the return tokens are exactly a (possibly path-qualified)
/// unit type: `Seconds`, `units::Seconds`, `cordoba_carbon::units::Seconds`.
fn returns_bare_unit(ret: &[&Token], inputs: &RuleInputs<'_>) -> bool {
    if ret.is_empty() {
        return false;
    }
    let last = ret[ret.len() - 1];
    if last.kind != TokenKind::Ident || !inputs.units.contains(&last.text) {
        return false;
    }
    // Every preceding token must be part of a plain path (`seg ::`).
    ret[..ret.len() - 1].chunks(2).all(|pair| match pair {
        [seg, sep] => seg.kind == TokenKind::Ident && sep.is_punct("::"),
        _ => false,
    })
}

/// Walks attribute groups immediately above `pub` looking for `must_use`.
fn has_must_use_attr(t: &[Token], pub_at: usize) -> bool {
    let mut j = pub_at;
    while j >= 2 && t[j - 1].is_close(']') {
        // Find the matching `[`.
        let mut depth = 0;
        let mut open = j - 1;
        loop {
            if t[open].is_close(']') {
                depth += 1;
            } else if t[open].is_open('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if open == 0 {
                return false;
            }
            open -= 1;
        }
        if open == 0 || !t[open - 1].is_punct("#") {
            return false;
        }
        if t[open..j].iter().any(|tok| tok.is_ident("must_use")) {
            return true;
        }
        j = open - 1;
    }
    false
}
